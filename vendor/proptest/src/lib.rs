//! Offline vendored shim for the subset of the `proptest` API used by the
//! OneQ property tests: the `proptest!` macro, `prop_assert!`/
//! `prop_assert_eq!`, range and tuple strategies, `prop_map`/`prop_flat_map`,
//! `collection::vec`, `any::<bool>()`, and `ProptestConfig::with_cases`.
//!
//! The build environment has no crates.io access. This shim keeps the
//! property-based *style* (random structured inputs, many cases per test,
//! assertion failures reported with the case number and seed) but drops
//! shrinking: a failing case reports its deterministic seed instead of a
//! minimized input. Inputs are generated from a fixed per-case seed, so runs
//! are fully reproducible.

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Source of randomness handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for one test case.
    pub fn from_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index, so every
        // test explores a different but reproducible input sequence.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }

    /// Samples from a range (integer or float).
    pub fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.0.gen_bool(0.5)
    }
}

/// Error carried out of a failing property body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the suite fast while
        // still exercising a spread of structures per property.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for an arbitrary `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.flip()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Lengths acceptable to [`vec()`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.sample(self.clone())
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy `element` and length `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The glob import the tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), l, r
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($config) $($rest)*);
    };
    (@block ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::from_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(error) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{}: {error}",
                        stringify!($name),
                        config.cases
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 2usize..10, x in -3.0..3.0) {
            prop_assert!((2..10).contains(&n));
            prop_assert!((-3.0..3.0).contains(&x));
        }

        #[test]
        fn vec_respects_length_range(v in crate::collection::vec(any::<bool>(), 0..5usize)) {
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn flat_map_threads_values(pair in (2usize..6).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_is_respected(_x in 0usize..2) {
            // Runs exactly 3 cases; nothing to assert beyond not panicking.
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "property `always_fails` failed")]
        fn always_fails(x in 0usize..4) {
            prop_assert!(x > 100, "x was {x}");
        }
    }
}
