//! Offline vendored shim for the subset of the `rand` 0.8 API used by this
//! workspace: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`
//! over integer/float ranges, and `Rng::gen_bool`.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the few entry points it needs. `StdRng` here is
//! xoshiro256** seeded through SplitMix64 — deterministic per seed, which is
//! all the compiler pipeline relies on (reproducible benchmark instances and
//! tie-breaking), and statistically solid for test-input generation.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0usize..1000) == c.gen_range(0usize..1000))
            .count();
        assert!(same < 50, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&f));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
