//! Offline vendored shim for the subset of the `criterion` 0.5 API used by
//! the OneQ benches: `criterion_group!`/`criterion_main!`, benchmark groups
//! with `sample_size`, `bench_function`/`bench_with_input`, `BenchmarkId`,
//! and `Bencher::iter`.
//!
//! The build environment has no crates.io access, so instead of the real
//! statistics engine this shim runs each benchmark `sample_size` times after
//! a short warmup and prints min/mean/max wall-clock per iteration. That
//! keeps `cargo bench` meaningful (relative comparisons, regression
//! eyeballing, and a CI-runnable smoke) without any external dependency.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (shim for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark that borrows a prepared input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (reporting is already done per benchmark).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id such as `oneq/QFT-16`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// Renders the label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording `sample_size` samples after one warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warmup, also defeats DCE
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }
}

/// Prevents the optimizer from discarding a value (re-export convenience).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        recorded: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    if bencher.recorded.is_empty() {
        println!("{label:<40} (no samples recorded)");
        return;
    }
    let min = bencher.recorded.iter().min().unwrap();
    let max = bencher.recorded.iter().max().unwrap();
    let total: Duration = bencher.recorded.iter().sum();
    let mean = total / bencher.recorded.len() as u32;
    println!(
        "{label:<40} min {:>12?}  mean {:>12?}  max {:>12?}  ({} samples)",
        min,
        mean,
        max,
        bencher.recorded.len()
    );
}

/// Declares a benchmark group function (shim for `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point (shim for `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_with_input(BenchmarkId::new("f", 1), &41, |b, &x| {
                b.iter(|| {
                    runs += 1;
                    x + 1
                })
            });
            group.finish();
        }
        // 1 warmup + 2 samples.
        assert_eq!(runs, 3);
    }
}
