//! Per-connection state for the readiness-driven server core.
//!
//! A [`Conn`] owns one nonblocking accepted socket plus everything the
//! event loop needs to run it without ever blocking: a resumable
//! [`RequestParser`] fed by incremental
//! reads, a buffer of pipelined bytes that arrived past a request's
//! end, a response write buffer flushed as the socket accepts bytes,
//! and a per-state deadline. The state machine is:
//!
//! ```text
//!  Idle ──first byte──▶ Reading ──complete request──▶ Dispatched
//!   ▲                      │                              │
//!   │                      │ (parse error)                │ worker done
//!   │                      ▼                              ▼
//!   └──keep-alive────── Writing ◀─────────────────────────┘
//!                          │
//!                          └──413──▶ Draining ──budget/EOF──▶ close
//! ```
//!
//! The loop in `server.rs` drives the transitions; this module supplies
//! the nonblocking I/O steps ([`Conn::fill`], [`Conn::flush`],
//! [`Conn::drain_step`]) and holds the bookkeeping. Deadlines are the
//! slow-loris defense: a request gets one fixed budget from its first
//! byte to its last, so a client trickling one byte per second costs a
//! file descriptor for that budget — never a thread, and never longer.

use crate::http::{Parse, Request, RequestError, RequestParser};
use crate::telemetry::PendingTrace;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Bytes read from the socket per `read` call while filling.
const READ_CHUNK: usize = 16 * 1024;
/// Cap on bytes consumed from one socket per [`Conn::fill`] call, so a
/// firehose client cannot starve the rest of the poll set.
const FILL_CAP: usize = 256 * 1024;

/// Where a connection is in its request/response cycle. The stats
/// endpoint exposes a gauge per state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Between requests on a keep-alive session (or freshly accepted):
    /// no byte of the next request has arrived.
    Idle,
    /// Mid-request: some bytes consumed, message not yet complete.
    Reading,
    /// A complete request is with the worker pool; the loop is waiting
    /// for its completion to come back over the channel.
    Dispatched,
    /// A response is buffered and being flushed as the socket drains.
    Writing,
    /// Response sent for an oversized request; discarding the remainder
    /// of the client's body (bounded) before closing, so the close does
    /// not race the client's own write and clobber the response.
    Draining,
}

/// What a [`Conn::fill`] call produced.
#[derive(Debug)]
pub enum FillOutcome {
    /// One complete request was assembled; leftover bytes (the next
    /// pipelined request, if any) stay buffered on the connection.
    Request(Request),
    /// The socket is drained for now and the request is still
    /// incomplete; poll for more.
    NeedMore,
    /// The peer closed its end. Whether that is a clean session end or
    /// a mid-request abort is [`Conn::mid_request`]'s call.
    Closed,
}

/// One accepted connection owned by the event loop.
pub struct Conn {
    stream: TcpStream,
    id: u64,
    state: ConnState,
    deadline: Option<Instant>,
    parser: RequestParser,
    /// Bytes received past the end of the last parsed request.
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    outpos: usize,
    served: usize,
    close_after_write: bool,
    drain_budget: usize,
    /// When the first byte of the in-flight request arrived — the origin
    /// of the request's trace timeline. Cleared when the request parses.
    read_started: Option<Instant>,
    /// The request's trace, carried across the response flush so the
    /// loop can close it (append the `write` span) on the last byte.
    trace: Option<PendingTrace>,
}

impl Conn {
    /// Takes ownership of an accepted stream, switching it to
    /// nonblocking mode with `TCP_NODELAY` (responses leave in full
    /// writes; never trade a round trip for Nagle coalescing).
    pub fn new(stream: TcpStream, id: u64, max_body: usize) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            id,
            state: ConnState::Idle,
            deadline: None,
            parser: RequestParser::new(max_body),
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            served: 0,
            close_after_write: false,
            drain_budget: 0,
            read_started: None,
            trace: None,
        })
    }

    /// The loop-assigned connection id; completions coming back from
    /// workers are matched against it so a recycled slot cannot receive
    /// a stale response.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Moves the connection to `state`.
    pub fn set_state(&mut self, state: ConnState) {
        self.state = state;
    }

    /// The instant after which the current state has taken too long.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Arms (or clears) the state deadline.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Raw fd for the poll set.
    #[cfg(unix)]
    pub fn fd(&self) -> i32 {
        std::os::fd::AsRawFd::as_raw_fd(&self.stream)
    }

    /// Requests served on this connection so far (the keep-alive cap
    /// compares against this).
    pub fn served(&self) -> usize {
        self.served
    }

    /// Records one served request.
    pub fn mark_served(&mut self) {
        self.served += 1;
    }

    /// Whether some bytes of the *next* request already arrived (either
    /// buffered past the last request's end, or consumed by the
    /// parser). The loop re-runs [`Conn::fill`] without waiting for
    /// readiness when this is true.
    pub fn has_buffered_input(&self) -> bool {
        !self.inbuf.is_empty()
    }

    /// Whether the parser holds a partially assembled request —
    /// distinguishes an idle keep-alive close (normal) from a peer that
    /// died mid-message.
    pub fn mid_request(&self) -> bool {
        self.parser.mid_request() || !self.inbuf.is_empty()
    }

    /// Whether the connection must close once the buffered response has
    /// been flushed.
    pub fn close_after_write(&self) -> bool {
        self.close_after_write
    }

    /// Takes the in-flight request's first-byte instant (stamped by
    /// [`Conn::fill`]), resetting it for the next request. Called once
    /// per parsed request to anchor its trace timeline.
    pub fn take_read_start(&mut self) -> Option<Instant> {
        self.read_started.take()
    }

    /// Attaches the request's trace to ride along until the response
    /// flush completes.
    pub fn set_trace(&mut self, trace: PendingTrace) {
        self.trace = Some(trace);
    }

    /// Detaches the trace (at flush completion, or on close so an
    /// aborted connection does not leak a half-open trace).
    pub fn take_trace(&mut self) -> Option<PendingTrace> {
        self.trace.take()
    }

    /// Reads whatever the socket has (bounded per call for fairness
    /// across connections) and advances the parser. Buffered pipelined
    /// bytes are consumed before the socket is touched, so a call with
    /// leftovers makes progress even if the socket is quiet.
    pub fn fill(&mut self) -> Result<FillOutcome, RequestError> {
        // First finish any bytes already in hand.
        if !self.inbuf.is_empty() {
            if self.read_started.is_none() {
                self.read_started = Some(Instant::now());
            }
            let buffered = std::mem::take(&mut self.inbuf);
            let (consumed, parse) = self.parser.feed(&buffered);
            self.inbuf = buffered[consumed..].to_vec();
            match parse? {
                Parse::Request(request) => return Ok(FillOutcome::Request(request)),
                Parse::NeedMore => debug_assert!(self.inbuf.is_empty()),
            }
        }
        let mut chunk = [0u8; READ_CHUNK];
        let mut taken = 0;
        while taken < FILL_CAP {
            let n = match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(FillOutcome::Closed),
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(FillOutcome::NeedMore);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(RequestError::Io(e)),
            };
            taken += n;
            if self.read_started.is_none() {
                self.read_started = Some(Instant::now());
            }
            let (consumed, parse) = self.parser.feed(&chunk[..n]);
            if consumed < n {
                self.inbuf.extend_from_slice(&chunk[consumed..n]);
            }
            match parse? {
                Parse::Request(request) => return Ok(FillOutcome::Request(request)),
                Parse::NeedMore => {}
            }
        }
        Ok(FillOutcome::NeedMore)
    }

    /// Queues a fully rendered response for nonblocking write-out and
    /// records whether the connection closes after it.
    pub fn queue_response(&mut self, bytes: Vec<u8>, close_after: bool) {
        debug_assert!(
            self.outpos == self.outbuf.len(),
            "previous response flushed"
        );
        self.outbuf = bytes;
        self.outpos = 0;
        self.close_after_write = close_after;
    }

    /// Writes as much of the buffered response as the socket accepts.
    /// `Ok(true)` once the buffer is fully flushed.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => self.outpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.outbuf = Vec::new();
        self.outpos = 0;
        Ok(true)
    }

    /// Enters the lingering-close drain: up to `budget` bytes of the
    /// peer's in-flight body will be read and discarded before the
    /// socket closes. Bytes already buffered count against the budget
    /// immediately.
    pub fn begin_drain(&mut self, budget: usize) {
        let buffered = self.inbuf.len().min(budget);
        self.drain_budget = budget - buffered;
        self.inbuf = Vec::new();
        self.state = ConnState::Draining;
    }

    /// One nonblocking drain step: discards available bytes against the
    /// budget. `Ok(true)` when the drain is finished (budget spent or
    /// peer closed) and the connection should be dropped.
    pub fn drain_step(&mut self) -> io::Result<bool> {
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            if self.drain_budget == 0 {
                return Ok(true);
            }
            let want = scratch.len().min(self.drain_budget);
            match self.stream.read(&mut scratch[..want]) {
                Ok(0) => return Ok(true),
                Ok(n) => self.drain_budget -= n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // The peer reset mid-drain: the lingering close was for
                // its benefit, so its departure simply ends the drain.
                Err(_) => return Ok(true),
            }
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// A connected (client, server-side Conn) pair over loopback.
    fn pair(max_body: usize) -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        (client, Conn::new(accepted, 7, max_body).unwrap())
    }

    /// Polls `fill` until the bytes written by the test have certainly
    /// arrived (loopback delivery is fast but not synchronous).
    fn fill_until_progress(conn: &mut Conn) -> FillOutcome {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match conn.fill().expect("fill") {
                FillOutcome::NeedMore if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                outcome => return outcome,
            }
        }
    }

    #[test]
    fn fill_assembles_a_request_delivered_in_pieces() {
        let (mut client, mut conn) = pair(1024);
        client
            .write_all(b"POST /v1/compile HTTP/1.1\r\nConte")
            .unwrap();
        // Nothing complete yet; fill must report NeedMore, not block.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(conn.fill().unwrap(), FillOutcome::NeedMore));
        assert!(conn.mid_request());
        client.write_all(b"nt-Length: 4\r\n\r\nwxyz").unwrap();
        match fill_until_progress(&mut conn) {
            FillOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.body, b"wxyz");
            }
            other => panic!("expected a request, got {other:?}"),
        }
        assert!(!conn.mid_request());
    }

    #[test]
    fn pipelined_requests_come_out_one_per_fill() {
        let (mut client, mut conn) = pair(1024);
        client
            .write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\nGET /v1/stats HTTP/1.1\r\n\r\n")
            .unwrap();
        let first = match fill_until_progress(&mut conn) {
            FillOutcome::Request(req) => req,
            other => panic!("expected first request, got {other:?}"),
        };
        assert_eq!(first.path, "/v1/healthz");
        assert!(conn.has_buffered_input(), "second request is buffered");
        // The second request parses from the buffer alone — no socket
        // readiness involved.
        let second = match conn.fill().expect("fill from buffer") {
            FillOutcome::Request(req) => req,
            other => panic!("expected second request, got {other:?}"),
        };
        assert_eq!(second.path, "/v1/stats");
    }

    #[test]
    fn peer_close_is_reported_not_an_error() {
        let (client, mut conn) = pair(1024);
        drop(client);
        match fill_until_progress(&mut conn) {
            FillOutcome::Closed => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        assert!(!conn.mid_request(), "clean close between requests");
    }

    #[test]
    fn flush_rides_out_a_full_socket_buffer() {
        let (mut client, mut conn) = pair(1024);
        // Far larger than loopback's send+receive buffering, so the
        // first flush attempts must hit WouldBlock while the client is
        // not reading.
        let response = vec![0x5A_u8; 16 * 1024 * 1024];
        conn.queue_response(response.clone(), true);
        assert!(conn.close_after_write());
        let mut saw_partial = false;
        let mut received = Vec::new();
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match conn.flush().expect("flush") {
                true => break,
                false => saw_partial = true,
            }
            // Let the client drain so the flush can continue.
            let n = client.read(&mut chunk).unwrap();
            received.extend_from_slice(&chunk[..n]);
        }
        assert!(saw_partial, "a 16MiB response cannot flush in one write");
        // Collect the remainder after the final flush.
        conn_drop_and_read_rest(conn, &mut client, &mut received);
        assert_eq!(received.len(), response.len());
        assert!(received == response, "bytes arrive intact and in order");
    }

    fn conn_drop_and_read_rest(conn: Conn, client: &mut TcpStream, out: &mut Vec<u8>) {
        drop(conn);
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match client.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("read remainder: {e}"),
            }
        }
    }

    #[test]
    fn drain_discards_a_bounded_remainder() {
        let (mut client, mut conn) = pair(16);
        // An oversized declaration followed by a body the server will
        // never parse.
        client
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 64\r\n\r\n")
            .unwrap();
        let err = loop {
            match conn.fill() {
                Err(e) => break e,
                Ok(FillOutcome::NeedMore) => {
                    std::thread::sleep(std::time::Duration::from_millis(1))
                }
                Ok(other) => panic!("expected BodyTooLarge, got {other:?}"),
            }
        };
        assert!(matches!(err, RequestError::BodyTooLarge(64)));
        conn.begin_drain(64);
        assert_eq!(conn.state(), ConnState::Draining);
        client.write_all(&[0u8; 64]).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if conn.drain_step().expect("drain step") {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "drain never finished");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}
