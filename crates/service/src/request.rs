//! The one request model behind every compile entrypoint.
//!
//! PR 4 left three hand-rolled parsers producing a [`CompileConfig`]:
//! `oneqc`'s flag loop, `oneqd`'s query-parameter loop, and whatever a
//! future batch line would have grown. They agreed by review, not by
//! construction. [`CompileRequest`] replaces all of them: one knob table
//! (the private `Knobs::apply`) is fed by three thin front-ends —
//!
//! * [`CompileRequest::from_args`] — CLI flags (`oneqc`, `loadgen`,
//!   `sweep`); unrecognized flags pass through to the caller,
//! * [`CompileRequest::from_query`] — `/v1/compile` query parameters,
//! * [`CompileRequest::from_jsonl_line`] — one `/v1/compile-batch` line,
//!
//! so a knob added to the table exists everywhere at once, with the same
//! validation message. The cache key is likewise produced by exactly one
//! method, [`CompileRequest::fingerprint`]: entrypoints cannot drift into
//! keying the same compile differently.

use crate::cache::canonicalize_source;
use crate::compile::{self, compile_record, CompileConfig, GeometryChoice};
use crate::http::percent_encode;
use crate::json;
use oneq_hardware::ResourceKind;

/// Everything that determines one compile response: the source text, the
/// label embedded in the record bytes, the compile configuration, and
/// whether the cache is bypassed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileRequest {
    /// The label that appears as `"file"` in the record bytes.
    pub label: String,
    /// OpenQASM 2.0 source text.
    pub source: String,
    /// The compile configuration.
    pub config: CompileConfig,
    /// Skip the cache (never read, never written) even without timings.
    pub bypass: bool,
}

/// The default record label when a request does not name its circuit.
pub const DEFAULT_LABEL: &str = "request.qasm";

/// Accumulator for the shared compile knobs. One `apply` call per
/// `(name, value)` pair, whatever the transport spelled them as; `finish`
/// resolves the geometry triplet and yields the request.
#[derive(Debug, Default)]
struct Knobs {
    side: Option<usize>,
    rows: Option<usize>,
    cols: Option<usize>,
    extension: Option<usize>,
    resource: Option<ResourceKind>,
    timings: Option<bool>,
    bypass: Option<bool>,
    label: Option<String>,
}

impl Knobs {
    /// Applies one knob. `name` is the bare knob name (`side`, `file`,
    /// …); returns `Ok(false)` when the name is not a compile knob so
    /// front-ends can route their own parameters.
    fn apply(&mut self, name: &str, value: &str) -> Result<bool, String> {
        match name {
            "side" => self.side = Some(parse_dim(value, "side")?),
            "rows" => self.rows = Some(parse_dim(value, "rows")?),
            "cols" => self.cols = Some(parse_dim(value, "cols")?),
            "extension" => self.extension = Some(parse_dim(value, "extension")?),
            "resource" => {
                self.resource = Some(
                    compile::parse_resource(value)
                        .ok_or_else(|| format!("unknown resource kind `{value}`"))?,
                );
            }
            "timings" => self.timings = Some(parse_bool(value, "timings")?),
            "bypass" => self.bypass = Some(parse_bool(value, "bypass")?),
            "file" => self.label = Some(value.to_string()),
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn finish(self, source: String) -> Result<CompileRequest, String> {
        let geometry = match (self.side, self.rows, self.cols) {
            (None, None, None) => GeometryChoice::Auto,
            (Some(s), None, None) => GeometryChoice::Square(s),
            (None, Some(r), Some(c)) => GeometryChoice::Rect(r, c),
            _ => return Err("use either side or both rows and cols".to_string()),
        };
        let mut config = CompileConfig {
            geometry,
            ..CompileConfig::default()
        };
        if let Some(extension) = self.extension {
            config.extension = extension;
        }
        if let Some(resource) = self.resource {
            config.resource = resource;
        }
        config.timings = self.timings.unwrap_or(false);
        Ok(CompileRequest {
            label: self.label.unwrap_or_else(|| DEFAULT_LABEL.to_string()),
            source,
            config,
            bypass: self.bypass.unwrap_or(false),
        })
    }
}

fn parse_dim(value: &str, name: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .ok()
        .filter(|&v| v >= 1)
        .ok_or_else(|| format!("{name} must be a positive number, got `{value}`"))
}

fn parse_bool(value: &str, name: &str) -> Result<bool, String> {
    match value {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        other => Err(format!("{name} must be 0|1|true|false, got `{other}`")),
    }
}

impl CompileRequest {
    /// A request with the default configuration.
    pub fn new(label: impl Into<String>, source: impl Into<String>) -> CompileRequest {
        CompileRequest {
            label: label.into(),
            source: source.into(),
            config: CompileConfig::default(),
            bypass: false,
        }
    }

    /// Parses the shared compile flags (`--side`, `--rows`, `--cols`,
    /// `--extension`, `--resource`, `--timings`, `--bypass`) out of a
    /// CLI argument list. Returns a template request plus every argument
    /// the parser did not consume, in their original order, for the
    /// caller's own flag loop. There is deliberately no `--file` here:
    /// the batch drivers label each record by its path via
    /// [`CompileRequest::with_source`], so a label flag would be
    /// accepted-but-dead — callers that don't define their own `--file`
    /// reject it as unknown instead.
    pub fn from_args(args: &[String]) -> Result<(CompileRequest, Vec<String>), String> {
        let mut knobs = Knobs::default();
        let mut rest = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            match arg.strip_prefix("--") {
                // Value-less boolean spelling: `--timings` == `--timings 1`.
                Some(name @ ("timings" | "bypass")) => {
                    knobs.apply(name, "1")?;
                }
                Some(name) if is_valued_knob(name) => {
                    i += 1;
                    let value = args
                        .get(i)
                        .ok_or_else(|| format!("--{name} needs a value"))?;
                    knobs.apply(name, value)?;
                }
                _ => rest.push(arg.clone()),
            }
            i += 1;
        }
        Ok((knobs.finish(String::new())?, rest))
    }

    /// Builds a request from `/v1/compile` query parameters plus the
    /// request body. Rejects unknown parameters — a typoed knob must not
    /// silently compile under defaults.
    pub fn from_query(query: &[(String, String)], body: &str) -> Result<CompileRequest, String> {
        let mut knobs = Knobs::default();
        for (name, value) in query {
            if !knobs.apply(name, value)? {
                return Err(format!("unknown query parameter `{name}`"));
            }
        }
        knobs.finish(body.to_string())
    }

    /// Builds a request from one `/v1/compile-batch` JSONL line: a flat
    /// JSON object with a required `source` member and the same optional
    /// knob members the query string accepts (`file`, `side`, `rows`,
    /// `cols`, `extension`, `resource`, `timings`, `bypass`).
    pub fn from_jsonl_line(line: &str) -> Result<CompileRequest, String> {
        let mut knobs = Knobs::default();
        let mut source = None;
        for (name, value) in json::parse_flat_object(line)? {
            if name == "source" {
                source = Some(value);
            } else if !knobs.apply(&name, &value)? {
                return Err(format!("unknown member `{name}`"));
            }
        }
        let source = source.ok_or_else(|| "missing `source` member".to_string())?;
        knobs.finish(source)
    }

    /// A clone of this request's configuration carrying a new label and
    /// source (the batch drivers parse flags once and stamp per-file
    /// requests from the template).
    pub fn with_source(
        &self,
        label: impl Into<String>,
        source: impl Into<String>,
    ) -> CompileRequest {
        CompileRequest {
            label: label.into(),
            source: source.into(),
            config: self.config.clone(),
            bypass: self.bypass,
        }
    }

    /// The canonical cache key: config fingerprint × length-prefixed
    /// label (it appears in the response bytes; the prefix keeps the
    /// concatenation injective) × canonicalized source. Every entrypoint
    /// keys the cache through this one method.
    pub fn fingerprint(&self) -> String {
        format!(
            "{}\n{}:{}\n{}",
            self.config.fingerprint(),
            self.label.len(),
            self.label,
            canonicalize_source(&self.source)
        )
    }

    /// Whether this request may be served from (and populate) the cache.
    /// Timed compiles are non-deterministic, so `timings` implies bypass.
    pub fn cacheable(&self) -> bool {
        !self.bypass && !self.config.timings
    }

    /// Compiles the request into its `oneqc/v1` record: `(record, ok)`.
    pub fn record(&self) -> (String, bool) {
        compile_record(&self.label, &self.source, &self.config)
    }

    /// [`CompileRequest::record`] plus the out-of-band wall-clock breakdown
    /// (`None` on parse failure). Record bytes are identical to `record`'s.
    pub fn record_timed(&self) -> (String, bool, Option<compile::RecordTimings>) {
        compile::compile_record_timed(&self.label, &self.source, &self.config)
    }

    /// Renders the request as an HTTP request target (`path` plus the
    /// non-default knobs as a query string) — the client-side counterpart
    /// of [`CompileRequest::from_query`], used by `loadgen`.
    pub fn query_target(&self, path: &str) -> String {
        let mut target = format!("{path}?file={}", percent_encode(&self.label));
        match self.config.geometry {
            GeometryChoice::Auto => {}
            GeometryChoice::Square(s) => {
                target.push_str(&format!("&side={s}"));
            }
            GeometryChoice::Rect(r, c) => {
                target.push_str(&format!("&rows={r}&cols={c}"));
            }
        }
        if self.config.extension != 1 {
            target.push_str(&format!("&extension={}", self.config.extension));
        }
        let resource = compile::resource_label(self.config.resource);
        if resource != "line3" {
            target.push_str(&format!("&resource={resource}"));
        }
        if self.config.timings {
            target.push_str("&timings=1");
        }
        if self.bypass {
            target.push_str("&bypass=1");
        }
        target
    }
}

fn is_valued_knob(name: &str) -> bool {
    matches!(name, "side" | "rows" | "cols" | "extension" | "resource")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::parse_query;
    use oneq_hardware::ResourceKind;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn from_args_parses_knobs_and_passes_the_rest_through() {
        let (req, rest) = CompileRequest::from_args(&argv(&[
            "--jobs",
            "4",
            "--side",
            "12",
            "--resource",
            "star4",
            "--extension",
            "2",
            "--timings",
            "a.qasm",
        ]))
        .unwrap();
        assert_eq!(req.config.geometry, GeometryChoice::Square(12));
        assert_eq!(req.config.resource, ResourceKind::STAR4);
        assert_eq!(req.config.extension, 2);
        assert!(req.config.timings);
        assert_eq!(rest, argv(&["--jobs", "4", "a.qasm"]));
    }

    #[test]
    fn from_args_rejects_bad_knobs() {
        assert!(CompileRequest::from_args(&argv(&["--side", "0"])).is_err());
        assert!(CompileRequest::from_args(&argv(&["--side"])).is_err());
        assert!(CompileRequest::from_args(&argv(&["--rows", "4"])).is_err());
        assert!(CompileRequest::from_args(&argv(&["--resource", "line9"])).is_err());
        assert!(
            CompileRequest::from_args(&argv(&["--side", "2", "--rows", "2", "--cols", "2"]))
                .is_err()
        );
    }

    #[test]
    fn from_query_matches_from_args_for_the_same_knobs() {
        let query = parse_query("file=x.qasm&rows=4&cols=6&extension=3&resource=line4");
        let from_query = CompileRequest::from_query(&query, "src").unwrap();
        let (template, _) = CompileRequest::from_args(&argv(&[
            "--rows",
            "4",
            "--cols",
            "6",
            "--extension",
            "3",
            "--resource",
            "line4",
        ]))
        .unwrap();
        let from_args = template.with_source("x.qasm", "src");
        assert_eq!(from_query, from_args);
        assert_eq!(from_query.fingerprint(), from_args.fingerprint());
    }

    #[test]
    fn from_args_passes_file_through_as_unconsumed() {
        // `--file` is a query/batch knob only: the CLI drivers label
        // records by path, so swallowing the flag would make it
        // accepted-but-dead.
        let (req, rest) = CompileRequest::from_args(&argv(&["--file", "x.qasm"])).unwrap();
        assert_eq!(req.label, DEFAULT_LABEL);
        assert_eq!(rest, argv(&["--file", "x.qasm"]));
    }

    #[test]
    fn from_query_rejects_unknown_parameters() {
        let query = parse_query("what=1");
        assert!(CompileRequest::from_query(&query, "").is_err());
    }

    #[test]
    fn from_jsonl_line_matches_the_other_constructors() {
        let line = r#"{"file": "x.qasm", "source": "OPENQASM 2.0;", "side": 9, "bypass": true}"#;
        let req = CompileRequest::from_jsonl_line(line).unwrap();
        assert_eq!(req.label, "x.qasm");
        assert_eq!(req.source, "OPENQASM 2.0;");
        assert_eq!(req.config.geometry, GeometryChoice::Square(9));
        assert!(req.bypass);
        assert!(!req.cacheable());

        let query = parse_query("file=x.qasm&side=9&bypass=1");
        let via_query = CompileRequest::from_query(&query, "OPENQASM 2.0;").unwrap();
        assert_eq!(req, via_query);
        assert_eq!(req.fingerprint(), via_query.fingerprint());
    }

    #[test]
    fn from_jsonl_line_requires_source_and_rejects_unknowns() {
        assert!(CompileRequest::from_jsonl_line(r#"{"file": "x.qasm"}"#).is_err());
        assert!(CompileRequest::from_jsonl_line(r#"{"source": "s", "what": 1}"#).is_err());
        assert!(CompileRequest::from_jsonl_line("not json").is_err());
        // Numbers arrive as literals; a fractional side must not pass.
        assert!(CompileRequest::from_jsonl_line(r#"{"source": "s", "side": 1.5}"#).is_err());
    }

    #[test]
    fn fingerprints_separate_label_config_and_source() {
        let base = CompileRequest::new("a.qasm", "h q[0];\n");
        let mut other_label = base.clone();
        other_label.label = "b.qasm".to_string();
        let mut other_config = base.clone();
        other_config.config.extension = 2;
        let mut other_source = base.clone();
        other_source.source = "x q[0];\n".to_string();
        let prints = [
            base.fingerprint(),
            other_label.fingerprint(),
            other_config.fingerprint(),
            other_source.fingerprint(),
        ];
        for (i, a) in prints.iter().enumerate() {
            for b in prints.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        // Whitespace-only differences canonicalize to the same key.
        let padded = CompileRequest::new("a.qasm", "h q[0]; \r\n");
        assert_eq!(base.fingerprint(), padded.fingerprint());
    }

    #[test]
    fn timings_implies_bypass() {
        let query = parse_query("timings=1");
        let req = CompileRequest::from_query(&query, "").unwrap();
        assert!(!req.cacheable());
    }

    #[test]
    fn query_target_round_trips_through_from_query() {
        let (template, _) = CompileRequest::from_args(&argv(&[
            "--rows",
            "4",
            "--cols",
            "6",
            "--extension",
            "2",
            "--resource",
            "ring4",
            "--bypass",
        ]))
        .unwrap();
        let req = template.with_source("dir/a b.qasm", "src");
        let target = req.query_target("/v1/compile");
        let (path, query) = target.split_once('?').unwrap();
        assert_eq!(path, "/v1/compile");
        let parsed = CompileRequest::from_query(&parse_query(query), "src").unwrap();
        assert_eq!(parsed, req);

        // Defaults produce the minimal target.
        let plain = CompileRequest::new("a.qasm", "src");
        assert_eq!(plain.query_target("/v1/compile"), "/v1/compile?file=a.qasm");
    }
}
