//! The daemon's telemetry spine: one [`Registry`] feeding both `/v1/stats`
//! and `/v1/metrics`, per-request span traces, and the `--trace-log` sink.
//!
//! Everything latency-shaped lands in a log-linear [`Histogram`] (see
//! `oneq-obs`): the event loop records read/write/iteration times, workers
//! record queue wait and per-stage compile times, the spill writer records
//! its write-behind lag. Recording is a relaxed atomic op, so none of this
//! adds a lock to the serving path; the registry lock is only taken at
//! registration (startup) and snapshot (a `/v1/stats` or `/v1/metrics`
//! request).
//!
//! Tracing follows the same request across threads: the event loop opens
//! the trace when the request finishes parsing, the worker appends its
//! spans (queue wait, cache lookup, compile stages) and hands the
//! [`TraceSeed`] back inside the completion, and the loop closes it when
//! the last response byte is flushed. Closed traces go to a bounded
//! in-memory ring (always) and to the `--trace-log` JSONL file (when
//! configured), gated by `--slow-ms`.

use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::compile::RecordTimings;
use oneq_obs::{
    duration_ns, Counter, Gauge, Histogram, Registry, RequestIds, Span, TraceBuffer, TraceRecord,
};

/// How many closed traces the in-memory ring keeps.
const TRACE_RING_CAPACITY: usize = 256;

/// Request-class label values for `oneqd_request_seconds{route=...}`.
/// A fixed set, so client-controlled paths can never mint new series.
pub const ROUTE_COMPILE: &str = "compile";
/// See [`ROUTE_COMPILE`].
pub const ROUTE_BATCH: &str = "batch";
/// Inline (event-loop-served) routes: healthz, stats, metrics, errors.
pub const ROUTE_INLINE: &str = "inline";

/// Stage labels for `oneqd_compile_stage_seconds{stage=...}`: QASM parse,
/// the five pipeline stages in order, and end-to-end wall time.
pub const STAGES: [&str; 7] = [
    "parse",
    "translate",
    "partition",
    "fusion_graph",
    "mapping",
    "shuffle",
    "wall",
];

/// Tier labels for cache outcome counters and lookup histograms — exactly
/// the values the `X-Oneqd-Cache` response header can carry.
pub const TIERS: [&str; 5] = ["memory", "disk", "miss", "coalesced", "bypass"];

/// The half of a request trace assembled before the response is written:
/// identity, outcome, and every span except `write`.
///
/// Built by whichever thread produced the response (the event loop for
/// inline routes, a worker for compiles), then carried on the connection
/// until the flush completes.
#[derive(Debug)]
pub struct TraceSeed {
    /// Request id (inbound `X-Oneqd-Request-Id` or minted).
    pub id: String,
    /// The request path, for the trace record.
    pub route: String,
    /// Bounded route class for histogram labels ([`ROUTE_COMPILE`] /
    /// [`ROUTE_BATCH`] / [`ROUTE_INLINE`]).
    pub route_class: &'static str,
    /// HTTP status of the response.
    pub status: u16,
    /// Cache outcome for compile routes, `"inline"` otherwise.
    pub outcome: String,
    /// Spans recorded so far, offset from request start.
    pub spans: Vec<Span>,
    /// Nanoseconds from request start to response-queue time (the `write`
    /// span starts here).
    pub total_ns: u64,
}

/// A [`TraceSeed`] waiting on its response flush.
#[derive(Debug)]
pub struct PendingTrace {
    /// The assembled pre-write trace.
    pub seed: TraceSeed,
    /// When the response was queued on the connection.
    pub write_started: Instant,
}

impl PendingTrace {
    /// Starts the write clock on a seed.
    pub fn begin_write(seed: TraceSeed) -> PendingTrace {
        PendingTrace {
            seed,
            write_started: Instant::now(),
        }
    }
}

/// Everything the daemon records about itself. One per [`ServiceState`];
/// see the module docs for the flow.
///
/// [`ServiceState`]: crate::server::ServiceState
#[derive(Debug)]
pub struct Telemetry {
    /// The metric registry both `/v1/stats` and `/v1/metrics` snapshot.
    pub registry: Registry,
    /// Ring of recently closed traces.
    pub traces: TraceBuffer,
    ids: RequestIds,
    sink: Option<Mutex<File>>,
    slow_ns: u64,
    read_hist: Histogram,
    queue_hist: Histogram,
    write_hist: Histogram,
    iteration_hist: Histogram,
    spill_lag_hist: Histogram,
    ready_fds: Gauge,
    queue_depth: Gauge,
    request_hists: [(&'static str, Histogram); 3],
    stage_hists: Vec<(&'static str, Histogram)>,
    tier_counters: Vec<(&'static str, Counter)>,
    tier_hists: Vec<(&'static str, Histogram)>,
    trace_log_records: Counter,
    compile_partitions: Counter,
    compile_bfs_searches: Counter,
    compile_bfs_expansions: Counter,
    compile_scratch_grows: Counter,
    compile_scratch_reuses: Counter,
    compile_seed_scans: Counter,
    compile_routing_cells: Counter,
    compile_occupancy_peak: Gauge,
    compile_seed_scan_radius_max: Gauge,
}

impl Telemetry {
    /// Builds the registry, pre-registers every latency family, and opens
    /// the `--trace-log` sink (append mode) when one is configured.
    ///
    /// `slow_ms` gates the sink: 0 logs every request, N logs only
    /// requests whose end-to-end time reached N milliseconds. The
    /// in-memory ring ignores the gate.
    pub fn new(trace_log: Option<&Path>, slow_ms: u64) -> io::Result<Telemetry> {
        let registry = Registry::new();
        let read_hist = registry.histogram(
            "oneqd_request_read_seconds",
            "Time from first request byte to a fully parsed request.",
            &[],
        );
        let queue_hist = registry.histogram(
            "oneqd_queue_wait_seconds",
            "Time a compile job waited for a worker thread.",
            &[],
        );
        let write_hist = registry.histogram(
            "oneqd_response_write_seconds",
            "Time from response queue to the last byte flushed.",
            &[],
        );
        let iteration_hist = registry.histogram(
            "oneqd_loop_iteration_seconds",
            "Event-loop iteration processing time (poll wait excluded).",
            &[],
        );
        let spill_lag_hist = registry.histogram(
            "oneqd_spill_lag_seconds",
            "Write-behind lag: spill append enqueue to writer pickup.",
            &[],
        );
        let ready_fds = registry.gauge(
            "oneqd_loop_ready_fds",
            "Descriptors reported ready by the last poll(2) return.",
            &[],
        );
        let queue_depth = registry.gauge(
            "oneqd_queue_depth",
            "Compile jobs waiting for a worker (pool queue + loop retry list).",
            &[],
        );
        let request_hist = |route: &str| {
            registry.histogram(
                "oneqd_request_seconds",
                "End-to-end request time, first request byte to last response byte.",
                &[("route", route)],
            )
        };
        let request_hists = [
            (ROUTE_COMPILE, request_hist(ROUTE_COMPILE)),
            (ROUTE_BATCH, request_hist(ROUTE_BATCH)),
            (ROUTE_INLINE, request_hist(ROUTE_INLINE)),
        ];
        let stage_hists = STAGES
            .iter()
            .map(|stage| {
                (
                    *stage,
                    registry.histogram(
                        "oneqd_compile_stage_seconds",
                        "Compile time per pipeline stage (executed compiles only).",
                        &[("stage", stage)],
                    ),
                )
            })
            .collect();
        let tier_counters = TIERS
            .iter()
            .map(|tier| {
                (
                    *tier,
                    registry.counter(
                        "oneqd_cache_outcomes_total",
                        "Compile requests by cache outcome tier.",
                        &[("tier", tier)],
                    ),
                )
            })
            .collect();
        let tier_hists = TIERS
            .iter()
            .map(|tier| {
                (
                    *tier,
                    registry.histogram(
                        "oneqd_cache_lookup_seconds",
                        "Cache lookup-to-result time by outcome tier.",
                        &[("tier", tier)],
                    ),
                )
            })
            .collect();
        let trace_log_records = registry.counter(
            "oneqd_trace_log_records_total",
            "Trace records written to the --trace-log sink.",
            &[],
        );
        let compile_partitions = registry.counter(
            "oneqd_compile_partitions_total",
            "Partitions compiled (executed compiles only).",
            &[],
        );
        let compile_bfs_searches = registry.counter(
            "oneqd_compile_bfs_searches_total",
            "Mapper BFS searches launched across executed compiles.",
            &[],
        );
        let compile_bfs_expansions = registry.counter(
            "oneqd_compile_bfs_expansions_total",
            "Cells expanded by the mapper's BFS across executed compiles.",
            &[],
        );
        let compile_scratch_grows = registry.counter(
            "oneqd_compile_scratch_grows_total",
            "BFS scratch reallocations (grid grew past the scratch arena).",
            &[],
        );
        let compile_scratch_reuses = registry.counter(
            "oneqd_compile_scratch_reuses_total",
            "BFS scratch arenas reused without reallocation.",
            &[],
        );
        let compile_seed_scans = registry.counter(
            "oneqd_compile_seed_scans_total",
            "Ring scans for a free seed cell during fusion mapping.",
            &[],
        );
        let compile_routing_cells = registry.counter(
            "oneqd_compile_routing_cells_total",
            "Grid cells consumed as routing auxiliaries.",
            &[],
        );
        let compile_occupancy_peak = registry.gauge(
            "oneqd_compile_occupancy_peak_cells",
            "High-water mark of occupied grid cells in any compiled layer.",
            &[],
        );
        let compile_seed_scan_radius_max = registry.gauge(
            "oneqd_compile_seed_scan_radius_max",
            "High-water Manhattan radius of any seed-cell ring scan.",
            &[],
        );
        let build_info = registry.gauge(
            "oneqd_build_info",
            "Build metadata; the value is always 1.",
            &[("version", env!("CARGO_PKG_VERSION"))],
        );
        build_info.set(1);
        let start_time = registry.gauge(
            "oneqd_start_time_seconds",
            "Unix time at which this daemon's telemetry came up.",
            &[],
        );
        start_time.set(
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        );
        let sink = match trace_log {
            Some(path) => Some(Mutex::new(
                OpenOptions::new().create(true).append(true).open(path)?,
            )),
            None => None,
        };
        Ok(Telemetry {
            registry,
            traces: TraceBuffer::new(TRACE_RING_CAPACITY),
            ids: RequestIds::new(),
            sink,
            slow_ns: slow_ms.saturating_mul(1_000_000),
            read_hist,
            queue_hist,
            write_hist,
            iteration_hist,
            spill_lag_hist,
            ready_fds,
            queue_depth,
            request_hists,
            stage_hists,
            tier_counters,
            tier_hists,
            trace_log_records,
            compile_partitions,
            compile_bfs_searches,
            compile_bfs_expansions,
            compile_scratch_grows,
            compile_scratch_reuses,
            compile_seed_scans,
            compile_routing_cells,
            compile_occupancy_peak,
            compile_seed_scan_radius_max,
        })
    }

    /// Adopts a well-formed inbound `X-Oneqd-Request-Id`, otherwise mints
    /// a fresh one. The returned id is always header- and JSON-safe.
    pub fn request_id(&self, inbound: Option<&str>) -> String {
        match inbound {
            Some(id) if oneq_obs::valid_request_id(id) => id.to_string(),
            _ => self.ids.next(),
        }
    }

    /// Records a parsed request's read time.
    pub fn observe_read(&self, ns: u64) {
        self.read_hist.record(ns);
    }

    /// Records a compile job's time on the queue.
    pub fn observe_queue_wait(&self, ns: u64) {
        self.queue_hist.record(ns);
    }

    /// Records one event-loop iteration's processing time.
    pub fn observe_iteration(&self, ns: u64) {
        self.iteration_hist.record(ns);
    }

    /// Publishes the loop gauges for this iteration.
    pub fn set_loop_gauges(&self, ready_fds: u64, queue_depth: u64) {
        self.ready_fds.set(ready_fds);
        self.queue_depth.set(queue_depth);
    }

    /// The histogram the spill tier's writer feeds (handed over at open).
    pub fn spill_lag_histogram(&self) -> Histogram {
        self.spill_lag_hist.clone()
    }

    /// Records one compile-cache resolution: the outcome tier, the
    /// lookup-to-result time, and — when this request actually executed
    /// the compiler — the per-stage breakdown plus the compiler-internals
    /// profile counters. `request_id` becomes the exemplar on every
    /// histogram bucket this observation lands in.
    pub fn observe_cache_outcome(
        &self,
        tier: &str,
        lookup_ns: u64,
        request_id: &str,
        timings: Option<&RecordTimings>,
    ) {
        if let Some((_, counter)) = self.tier_counters.iter().find(|(t, _)| *t == tier) {
            counter.inc();
        }
        if let Some((_, hist)) = self.tier_hists.iter().find(|(t, _)| *t == tier) {
            hist.record_with_exemplar(lookup_ns, request_id);
        }
        if let Some(timings) = timings {
            self.observe_stage("parse", timings.parse_ns, request_id);
            for (stage, ns) in timings.stages.stages() {
                self.observe_stage(stage, ns, request_id);
            }
            self.observe_stage("wall", timings.wall_ns, request_id);
            let totals = timings.profile.totals();
            self.compile_partitions
                .add(timings.profile.partitions.len() as u64);
            self.compile_bfs_searches.add(totals.bfs_searches);
            self.compile_bfs_expansions.add(totals.bfs_expansions);
            self.compile_scratch_grows.add(totals.scratch_grows);
            self.compile_scratch_reuses.add(totals.scratch_reuses);
            self.compile_seed_scans.add(totals.seed_scans);
            self.compile_routing_cells.add(totals.routing_cells);
            self.compile_occupancy_peak.set_max(totals.occupancy_peak);
            self.compile_seed_scan_radius_max
                .set_max(totals.seed_scan_radius_max);
        }
    }

    fn observe_stage(&self, stage: &str, ns: u128, request_id: &str) {
        if let Some((_, hist)) = self.stage_hists.iter().find(|(s, _)| *s == stage) {
            hist.record_with_exemplar(u64::try_from(ns).unwrap_or(u64::MAX), request_id);
        }
    }

    /// Closes a trace once its response flush completed: appends the
    /// `write` span, records the write and end-to-end histograms, pushes
    /// the record to the ring, and writes the JSONL sink when the request
    /// clears the `--slow-ms` gate.
    pub fn finish_request(&self, pending: PendingTrace, conn: u64) {
        let write_ns = duration_ns(pending.write_started.elapsed());
        let seed = pending.seed;
        let total_ns = seed.total_ns.saturating_add(write_ns);
        self.write_hist.record(write_ns);
        if let Some((_, hist)) = self
            .request_hists
            .iter()
            .find(|(route, _)| *route == seed.route_class)
        {
            hist.record_with_exemplar(total_ns, &seed.id);
        }
        let mut spans = seed.spans;
        spans.push(Span::new("write", seed.total_ns, write_ns));
        let record = TraceRecord {
            id: seed.id,
            conn,
            route: seed.route,
            status: seed.status,
            outcome: seed.outcome,
            total_ns,
            spans,
        };
        if let Some(sink) = &self.sink {
            if total_ns >= self.slow_ns {
                let mut line = record.to_json();
                line.push('\n');
                let mut file = sink.lock().expect("trace sink poisoned");
                if file.write_all(line.as_bytes()).is_ok() {
                    let _ = file.flush();
                    self.trace_log_records.inc();
                }
            }
        }
        self.traces.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed(id: &str, total_ns: u64) -> TraceSeed {
        TraceSeed {
            id: id.to_string(),
            route: "/v1/compile".to_string(),
            route_class: ROUTE_COMPILE,
            status: 200,
            outcome: "miss".to_string(),
            spans: vec![Span::new("read", 0, total_ns)],
            total_ns,
        }
    }

    #[test]
    fn request_ids_adopt_valid_and_replace_hostile_input() {
        let telemetry = Telemetry::new(None, 0).unwrap();
        assert_eq!(telemetry.request_id(Some("client-42")), "client-42");
        let minted = telemetry.request_id(Some("bad id\n"));
        assert_ne!(minted, "bad id\n");
        assert!(oneq_obs::valid_request_id(&minted));
        assert_ne!(telemetry.request_id(None), telemetry.request_id(None));
    }

    #[test]
    fn finished_requests_land_in_ring_and_histograms() {
        let telemetry = Telemetry::new(None, 0).unwrap();
        telemetry.finish_request(PendingTrace::begin_write(seed("r1", 1_000)), 7);
        assert_eq!(telemetry.traces.len(), 1);
        let record = &telemetry.traces.recent(1)[0];
        assert_eq!(record.id, "r1");
        assert_eq!(record.conn, 7);
        assert_eq!(
            record.spans.last().map(|s| s.name),
            Some("write"),
            "write span is appended at close"
        );
        assert!(record.total_ns >= 1_000);
        let snap = telemetry.registry.snapshot();
        let hist = snap
            .histogram("oneqd_request_seconds", &[("route", ROUTE_COMPILE)])
            .expect("request histogram");
        assert_eq!(hist.count, 1);
    }

    #[test]
    fn slow_ms_gates_the_sink_but_not_the_ring() {
        let dir = std::env::temp_dir().join(format!(
            "oneq-telemetry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let telemetry = Telemetry::new(Some(&path), 10).unwrap();
        // 1 µs total: below the 10 ms gate, ring only.
        telemetry.finish_request(PendingTrace::begin_write(seed("fast", 1_000)), 1);
        // 20 ms total (pre-write): clears the gate.
        telemetry.finish_request(PendingTrace::begin_write(seed("slow", 20_000_000)), 2);
        assert_eq!(telemetry.traces.len(), 2, "ring ignores the gate");
        let log = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 1, "only the slow request is logged: {log}");
        assert!(lines[0].contains("\"request_id\": \"slow\""));
        let snap = telemetry.registry.snapshot();
        assert_eq!(snap.counter("oneqd_trace_log_records_total", &[]), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_outcomes_feed_tier_and_stage_series() {
        let telemetry = Telemetry::new(None, 0).unwrap();
        let timings = RecordTimings::default();
        telemetry.observe_cache_outcome("miss", 5_000, "req-miss", Some(&timings));
        telemetry.observe_cache_outcome("memory", 800, "req-mem", None);
        telemetry.observe_cache_outcome("not-a-tier", 1, "req-x", None); // ignored
        let snap = telemetry.registry.snapshot();
        assert_eq!(
            snap.counter("oneqd_cache_outcomes_total", &[("tier", "miss")]),
            1
        );
        assert_eq!(
            snap.counter("oneqd_cache_outcomes_total", &[("tier", "memory")]),
            1
        );
        let lookup = snap
            .histogram("oneqd_cache_lookup_seconds", &[("tier", "miss")])
            .unwrap();
        assert_eq!(lookup.count, 1);
        for stage in STAGES {
            let hist = snap
                .histogram("oneqd_compile_stage_seconds", &[("stage", stage)])
                .unwrap_or_else(|| panic!("stage {stage} registered"));
            assert_eq!(hist.count, 1, "one executed compile observed for {stage}");
            assert!(
                hist.exemplars
                    .iter()
                    .any(|(_, e)| e.request_id == "req-miss"),
                "executed compile leaves its request id as a {stage} exemplar"
            );
        }
    }

    #[test]
    fn build_info_and_start_time_gauges_come_up_with_the_registry() {
        let telemetry = Telemetry::new(None, 0).unwrap();
        let snap = telemetry.registry.snapshot();
        assert_eq!(
            snap.gauge(
                "oneqd_build_info",
                &[("version", env!("CARGO_PKG_VERSION"))]
            ),
            1
        );
        // Any plausible wall clock is after 2020; a zeroed gauge would mean
        // the constructor never stamped it.
        assert!(snap.gauge("oneqd_start_time_seconds", &[]) > 1_577_836_800);
    }

    #[test]
    fn request_exemplars_survive_to_the_rendered_exposition() {
        let telemetry = Telemetry::new(None, 0).unwrap();
        telemetry.finish_request(PendingTrace::begin_write(seed("slow-one", 5_000_000)), 3);
        let text = telemetry.registry.snapshot().render_prometheus();
        assert!(
            text.contains("# {request_id=\"slow-one\"}"),
            "request histogram carries the exemplar: {text}"
        );
    }
}
