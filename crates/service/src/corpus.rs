//! `.qasm` corpus discovery shared by `loadgen` and the integration
//! tests (one implementation of "which files are the corpus", so replay
//! and verification can never disagree). `oneqc`'s recursive CLI walker
//! stays in the binary: its contract — multiple roots, recursion,
//! per-path exit codes — is a command-line interface, not a library one.

use std::path::{Path, PathBuf};

/// The sorted `.qasm` files directly inside `dir` (non-recursive: the
/// fixture corpus is flat). Errors only on an unreadable directory; a
/// readable directory with no matches returns an empty vec.
pub fn qasm_files_flat(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .flatten()
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|e| e == "qasm") && path.is_file())
        .collect();
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_only_qasm_files_sorted() {
        let dir = std::env::temp_dir().join(format!("oneq-corpus-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.qasm"), "x").unwrap();
        std::fs::write(dir.join("a.qasm"), "x").unwrap();
        std::fs::write(dir.join("notes.txt"), "x").unwrap();
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        std::fs::write(dir.join("sub").join("c.qasm"), "x").unwrap();
        let files = qasm_files_flat(&dir).unwrap();
        let names: Vec<_> = files
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["a.qasm", "b.qasm"], "sorted, flat, .qasm only");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_an_error() {
        assert!(qasm_files_flat(Path::new("/no/such/corpus")).is_err());
    }
}
