//! SIGTERM/SIGINT → shutdown flag, for graceful daemon exit.
//!
//! This is the single module in the workspace that contains `unsafe`
//! (see the crate manifest): std offers no way to register a signal
//! handler, so [`install`] calls libc's `signal(2)` — already linked by
//! std on every Unix target — twice. The handler body does the only
//! thing that is async-signal-safe here: a relaxed store to a static
//! atomic, which the accept loop polls between `accept` attempts.
//!
//! On non-Unix targets [`install`] is a no-op and the daemon stops only
//! when the process is killed.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// `true` once SIGTERM or SIGINT (ctrl-c) has been delivered (or
/// [`request_shutdown`] was called).
pub fn shutdown_requested() -> bool {
    // ORDERING: Relaxed — a lone flag with no dependent data; the poll
    // loop only needs eventual visibility of the store.
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Raises the shutdown flag from ordinary (non-signal) code — used by
/// tests and available to any future admin endpoint.
pub fn request_shutdown() {
    // ORDERING: Relaxed — flag store publishes no other memory.
    SHUTDOWN.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `sighandler_t signal(int signum, sighandler_t handler)` from
        /// libc, with the handler type spelled as a concrete fn pointer.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: allocation, locking, and I/O are all
        // forbidden in a signal handler.
        // ORDERING: Relaxed — async-signal-safe flag store; no other
        // memory is published from the handler.
        super::SHUTDOWN.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: `signal` is the documented libc entry point; the
        // handler is an `extern "C" fn(i32)` performing a single
        // async-signal-safe atomic store. Errors (SIG_ERR) are ignored —
        // the fallback is the default disposition, i.e. a non-graceful
        // but still correct exit.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Registers SIGTERM and SIGINT handlers that raise the shutdown flag.
/// Idempotent; call once at daemon startup.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_shutdown_raises_the_flag() {
        // Note: the flag is process-global, so this test would interfere
        // with a daemon running in the same test process; the daemon
        // integration tests spawn a separate process instead.
        install();
        request_shutdown();
        assert!(shutdown_requested());
    }
}
