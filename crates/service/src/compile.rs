//! Source → JSON metrics record: the one compile path behind `oneqc`
//! batch records and `oneqd` responses.
//!
//! Both front doors promise the same `oneqc/v1` record schema for the
//! same (source, config) pair, bit for bit. Keeping the record emission
//! here — one format string, one escaping helper — is what makes that
//! promise checkable instead of aspirational (`tests/service.rs` diffs
//! the daemon's bytes against the batch driver's).

use crate::json;
use oneq::{CompileProfile, Compiler, CompilerOptions, StageTimings};
use oneq_hardware::{LayerGeometry, ResourceKind};
use std::fmt::Write as _;
use std::time::Instant;

/// How the physical layer is sized for a compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryChoice {
    /// Square layer sized per circuit by the baseline's physical-area
    /// protocol (the Table 2 / determinism-gate geometry).
    Auto,
    /// Explicit square side.
    Square(usize),
    /// Explicit rows × cols rectangle.
    Rect(usize, usize),
}

/// One compile configuration (everything that affects the record besides
/// the source itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileConfig {
    /// Layer sizing.
    pub geometry: GeometryChoice,
    /// Extended-layer factor (≥ 1).
    pub extension: usize,
    /// Resource-state kind.
    pub resource: ResourceKind,
    /// Include per-stage wall-clock timings in the record (breaks
    /// byte determinism and therefore cacheability).
    pub timings: bool,
}

impl Default for CompileConfig {
    fn default() -> Self {
        CompileConfig {
            geometry: GeometryChoice::Auto,
            extension: 1,
            resource: ResourceKind::LINE3,
            timings: false,
        }
    }
}

impl CompileConfig {
    /// A short, injective fingerprint of the config — one component of
    /// the compile cache key.
    pub fn fingerprint(&self) -> String {
        let geometry = match self.geometry {
            GeometryChoice::Auto => "auto".to_string(),
            GeometryChoice::Square(s) => format!("side{s}"),
            GeometryChoice::Rect(r, c) => format!("rect{r}x{c}"),
        };
        format!(
            "geom={geometry};ext={};res={}",
            self.extension,
            resource_label(self.resource)
        )
    }
}

/// The CLI/query label for a resource kind.
pub fn resource_label(kind: ResourceKind) -> &'static str {
    match kind {
        k if k == ResourceKind::LINE3 => "line3",
        k if k == ResourceKind::LINE4 => "line4",
        k if k == ResourceKind::STAR4 => "star4",
        k if k == ResourceKind::RING4 => "ring4",
        _ => "custom",
    }
}

/// Parses a resource label (`line3|line4|star4|ring4`).
pub fn parse_resource(label: &str) -> Option<ResourceKind> {
    match label {
        "line3" => Some(ResourceKind::LINE3),
        "line4" => Some(ResourceKind::LINE4),
        "star4" => Some(ResourceKind::STAR4),
        "ring4" => Some(ResourceKind::RING4),
        _ => None,
    }
}

/// Renders an `oneqc/v1` error record.
pub fn error_record(file_label: &str, message: &str) -> String {
    format!(
        "{{\"file\": \"{}\", \"status\": \"error\", \"error\": \"{}\"}}",
        json::escape(file_label),
        json::escape(message)
    )
}

/// Out-of-band wall-clock breakdown of one compile, for telemetry.
///
/// The record string carries timings only when `config.timings` asks for
/// them (at the cost of cacheability); this struct carries the same numbers
/// to the caller regardless, so the daemon can feed per-stage latency
/// histograms without perturbing a single record byte.
#[derive(Debug, Clone, Default)]
pub struct RecordTimings {
    /// QASM parse time in nanoseconds.
    pub parse_ns: u128,
    /// End-to-end compile wall time (parse included) in nanoseconds.
    pub wall_ns: u128,
    /// Per-stage pipeline timings.
    pub stages: StageTimings,
    /// Per-partition compiler-internals profile (BFS effort, congestion,
    /// scratch reuse) — same out-of-band contract as the timings.
    pub profile: CompileProfile,
}

/// Compiles `source` under `config` and renders the `oneqc/v1` record
/// labelled `file_label`. Returns `(record, ok)`; parse failures become
/// `"status": "error"` records with `ok = false`, never a panic.
pub fn compile_record(file_label: &str, source: &str, config: &CompileConfig) -> (String, bool) {
    let (record, ok, _) = compile_record_timed(file_label, source, config);
    (record, ok)
}

/// [`compile_record`] plus the wall-clock breakdown of the compile.
///
/// The returned record is byte-identical to `compile_record`'s for the same
/// inputs (it *is* the same code path); timings ride alongside, `None` when
/// the source failed to parse.
pub fn compile_record_timed(
    file_label: &str,
    source: &str,
    config: &CompileConfig,
) -> (String, bool, Option<RecordTimings>) {
    let t0 = Instant::now();
    let circuit = match oneq_frontend::parse_circuit(source) {
        Ok(c) => c,
        Err(e) => {
            let e = e.with_file(file_label);
            return (error_record(file_label, &e.to_line()), false, None);
        }
    };
    let parse_ns = t0.elapsed().as_nanos();

    let geometry = match config.geometry {
        GeometryChoice::Auto => LayerGeometry::square(oneq_baseline::physical_side(
            circuit.n_qubits(),
            config.resource,
        )),
        GeometryChoice::Square(s) => LayerGeometry::square(s),
        GeometryChoice::Rect(r, c) => LayerGeometry::new(r, c),
    };
    let options = CompilerOptions::new(geometry)
        .with_resource_kind(config.resource)
        .with_extension(config.extension);
    let t1 = Instant::now();
    let program = Compiler::new(options).compile(&circuit);
    let wall_ns = parse_ns + t1.elapsed().as_nanos();

    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"file\": \"{}\", \"status\": \"ok\", \"qubits\": {}, \"gates\": {}, \
         \"two_qubit_gates\": {}, \"rows\": {}, \"cols\": {}, \"extension_factor\": {}, \
         \"resource\": \"{}\", \"depth\": {}, \"fusions\": {}, \"partitions\": {}, \
         \"fusion_graph_nodes\": {}, \"graph_state_nodes\": {}",
        json::escape(file_label),
        circuit.n_qubits(),
        circuit.gate_count(),
        circuit.two_qubit_count(),
        geometry.rows(),
        geometry.cols(),
        config.extension,
        resource_label(config.resource),
        program.depth,
        program.fusions,
        program.stats.partitions,
        program.stats.fusion_graph_nodes,
        program.stats.graph_state_nodes,
    );
    if config.timings {
        let t = &program.timings;
        let _ = write!(
            line,
            ", \"timings_ns\": {{\"parse\": {parse_ns}, \"translate\": {}, \
             \"partition\": {}, \"fusion_graph\": {}, \"mapping\": {}, \"shuffle\": {}, \
             \"wall\": {wall_ns}}}",
            t.translate_ns, t.partition_ns, t.fusion_graph_ns, t.mapping_ns, t.shuffle_ns,
        );
    }
    line.push('}');
    let timings = RecordTimings {
        parse_ns,
        wall_ns,
        stages: program.timings,
        profile: program.profile,
    };
    (line, true, Some(timings))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BELL: &str =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n";

    #[test]
    fn ok_record_has_the_v1_shape() {
        let (record, ok) = compile_record("bell.qasm", BELL, &CompileConfig::default());
        assert!(ok);
        assert!(record.starts_with("{\"file\": \"bell.qasm\", \"status\": \"ok\""));
        assert!(record.contains("\"qubits\": 2"));
        assert!(record.contains("\"resource\": \"line3\""));
        assert!(record.ends_with('}'));
        assert!(!record.contains("timings_ns"));
    }

    #[test]
    fn records_are_deterministic_without_timings() {
        let config = CompileConfig::default();
        let (a, _) = compile_record("bell.qasm", BELL, &config);
        let (b, _) = compile_record("bell.qasm", BELL, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn timings_appear_on_request() {
        let config = CompileConfig {
            timings: true,
            ..CompileConfig::default()
        };
        let (record, ok) = compile_record("bell.qasm", BELL, &config);
        assert!(ok);
        assert!(record.contains("\"timings_ns\": {\"parse\": "));
    }

    #[test]
    fn timed_variant_returns_identical_bytes_plus_timings() {
        let config = CompileConfig::default();
        let (plain, ok_a) = compile_record("bell.qasm", BELL, &config);
        let (timed, ok_b, timings) = compile_record_timed("bell.qasm", BELL, &config);
        assert_eq!(plain, timed, "timed variant must not perturb record bytes");
        assert_eq!(ok_a, ok_b);
        let timings = timings.expect("timings for a successful compile");
        assert!(timings.wall_ns >= timings.parse_ns);
        assert!(timings.wall_ns >= timings.stages.total_ns());
        assert!(
            !timings.profile.partitions.is_empty(),
            "profile carries one entry per partition"
        );
        assert!(timings.profile.totals().occupancy_peak > 0);
        let (_, ok, timings) =
            compile_record_timed("bad.qasm", "OPENQASM 2.0;\nnonsense;\n", &config);
        assert!(!ok);
        assert!(timings.is_none(), "no timings for parse failures");
    }

    #[test]
    fn parse_failures_become_error_records() {
        let (record, ok) = compile_record(
            "bad.qasm",
            "OPENQASM 2.0;\nnonsense;\n",
            &CompileConfig::default(),
        );
        assert!(!ok);
        assert!(record
            .starts_with("{\"file\": \"bad.qasm\", \"status\": \"error\", \"error\": \"bad.qasm:"));
    }

    #[test]
    fn explicit_geometries_land_in_the_record() {
        let config = CompileConfig {
            geometry: GeometryChoice::Rect(6, 9),
            ..CompileConfig::default()
        };
        let (record, ok) = compile_record("bell.qasm", BELL, &config);
        assert!(ok);
        assert!(record.contains("\"rows\": 6, \"cols\": 9"));
    }

    #[test]
    fn resource_labels_round_trip() {
        for label in ["line3", "line4", "star4", "ring4"] {
            let kind = parse_resource(label).unwrap();
            assert_eq!(resource_label(kind), label);
        }
        assert!(parse_resource("line5").is_none());
    }

    #[test]
    fn fingerprints_distinguish_configs() {
        let a = CompileConfig::default().fingerprint();
        let b = CompileConfig {
            extension: 2,
            ..CompileConfig::default()
        }
        .fingerprint();
        let c = CompileConfig {
            geometry: GeometryChoice::Square(12),
            ..CompileConfig::default()
        }
        .fingerprint();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
