//! The disk spill tier: a persistent, crash-tolerant second cache level
//! behind the in-memory LRU.
//!
//! A [`SpillTier`] owns one directory of append-only [`segment`] files
//! plus an in-memory index mapping fingerprint digests to record
//! positions. Fills are **write-behind**: [`SpillTier::append`] enqueues
//! the record to a background writer thread and returns immediately, so
//! the compile path never waits on disk. Lookups ([`SpillTier::get`])
//! read through per-segment handles and re-verify the CRC and digest on
//! every read — a record that fails verification is dropped from the
//! index, never served.
//!
//! Startup ([`SpillTier::open`]) takes an exclusive `flock(2)` on the
//! directory's `LOCK` file (so two daemons cannot interleave appends into
//! one segment set), scans every segment tolerating torn tails, rebuilds
//! the index last-wins, and — when the dead-byte ratio exceeds the
//! configured threshold — compacts the live records into fresh segments.
//! Capacity is enforced in whole segments: when the directory exceeds its
//! byte budget, the oldest sealed segment is deleted outright (its
//! entries were the least recently written, and re-filling a dropped
//! entry costs one compile).
//!
//! The byte-level file format is specified in `docs/CACHE_FORMAT.md`;
//! [`segment`] is its reference implementation.
//!
//! [`segment`]: crate::segment
//!
//! # Example
//!
//! ```
//! use oneq_service::cache::sha256;
//! use oneq_service::spill::{SpillConfig, SpillTier};
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join(format!("oneq-spill-doc-{}", std::process::id()));
//! let digest = sha256(b"some fingerprint");
//! {
//!     let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
//!     tier.append(digest, Arc::from("{\"status\": \"ok\"}\n"));
//!     tier.flush(); // write-behind: force the record out for the assert
//!     assert_eq!(tier.get(&digest).as_deref(), Some("{\"status\": \"ok\"}\n"));
//! } // drop releases the directory lock
//! // A new tier over the same directory recovers the record from disk.
//! let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
//! assert_eq!(tier.get(&digest).as_deref(), Some("{\"status\": \"ok\"}\n"));
//! drop(tier);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::segment::{self, ScannedRecord, SegmentWriter, SUPERBLOCK_LEN};
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use oneq_obs::Histogram;

/// Advisory whole-file locking via `flock(2)`. This is the crate's
/// second `unsafe` carve-out (alongside `signal.rs` — see the manifest):
/// std exposes no file-locking API, and a `create_new` lockfile would go
/// stale after SIGKILL, exactly the crash the spill tier must restart
/// from. A kernel flock is released automatically when the process dies,
/// whatever way it dies.
mod flock {
    #![allow(unsafe_code)]

    use std::fs::File;
    use std::io;

    #[cfg(unix)]
    pub fn try_lock_exclusive(file: &File) -> io::Result<()> {
        use std::os::unix::io::AsRawFd as _;

        const LOCK_EX: i32 = 2;
        const LOCK_NB: i32 = 4;

        extern "C" {
            /// `int flock(int fd, int operation)` from libc (already
            /// linked by std on every Unix target).
            fn flock(fd: i32, operation: i32) -> i32;
        }

        // SAFETY: `flock` is the documented libc entry point; the fd is
        // live for the duration of the call (we hold `&File`), and the
        // operation flags are the portable LOCK_EX|LOCK_NB pair.
        let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    #[cfg(not(unix))]
    pub fn try_lock_exclusive(_file: &File) -> io::Result<()> {
        // No advisory locking off Unix; single-process operation is the
        // caller's responsibility there.
        Ok(())
    }
}

/// Tunables for a [`SpillTier`].
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory holding the segment files and the `LOCK` file; created
    /// if missing.
    pub dir: PathBuf,
    /// Byte budget for the whole directory; enforced in whole segments
    /// (the oldest sealed segment is deleted when the budget is
    /// exceeded).
    pub max_bytes: u64,
    /// Target size of one segment file; the active segment rotates when
    /// the next record would push it past this.
    pub segment_bytes: u64,
    /// Startup compaction threshold: when
    /// `dead_bytes / (live_bytes + dead_bytes)` exceeds this, the live
    /// records are rewritten into fresh segments.
    pub compact_ratio: f64,
}

impl SpillConfig {
    /// Defaults: 256 MiB budget, 4 MiB segments, compaction past 50 %
    /// garbage.
    pub fn new(dir: impl Into<PathBuf>) -> SpillConfig {
        SpillConfig {
            dir: dir.into(),
            max_bytes: 256 * 1024 * 1024,
            segment_bytes: 4 * 1024 * 1024,
            compact_ratio: 0.5,
        }
    }
}

/// A point-in-time snapshot of the spill tier's counters (for
/// `/v1/stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillStats {
    /// Lookups served from disk (verified reads).
    pub hits: u64,
    /// Records handed to the background writer and written out.
    pub appends: u64,
    /// Records currently indexed (addressable digests).
    pub entries: usize,
    /// Segment files on disk.
    pub segments: usize,
    /// Bytes of indexed (servable) records.
    pub live_bytes: u64,
    /// Bytes of superseded, dropped, or torn data awaiting compaction or
    /// eviction.
    pub dead_bytes: u64,
    /// The configured directory byte budget.
    pub capacity_bytes: u64,
    /// Whole segments deleted under capacity pressure.
    pub evicted_segments: u64,
    /// Startup compactions performed over the tier's lifetime (this
    /// process).
    pub compactions: u64,
    /// Index entries dropped because their bytes failed verification at
    /// read time.
    pub crc_dropped: u64,
    /// Intact records recovered by the startup scan.
    pub recovered_records: u64,
    /// Segments whose scan found a torn or corrupt tail.
    pub truncated_tails: u64,
}

/// Where one record lives: segment id + header offset + body length.
#[derive(Debug, Clone, Copy)]
struct Slot {
    seg: u64,
    offset: u64,
    body_len: u32,
}

/// One segment's read handle and byte accounting.
struct SegmentInfo {
    path: PathBuf,
    file: Arc<Mutex<File>>,
    /// Bytes of records the index currently points into this segment.
    live: u64,
    /// File length on disk (superblock + records + any torn tail).
    total: u64,
}

#[derive(Default)]
struct State {
    index: HashMap<[u8; 32], Slot>,
    segments: BTreeMap<u64, SegmentInfo>,
}

struct Inner {
    config: SpillConfig,
    state: Mutex<State>,
    hits: AtomicU64,
    appends: AtomicU64,
    evicted_segments: AtomicU64,
    compactions: AtomicU64,
    crc_dropped: AtomicU64,
    recovered_records: AtomicU64,
    truncated_tails: AtomicU64,
    /// Write-behind lag observer: records enqueue → write delay per append.
    /// Set once by the daemon after open; absent in library/test use.
    lag: OnceLock<Histogram>,
}

enum Msg {
    /// A record to persist, stamped with its enqueue time so the writer
    /// can measure how far behind the serving path it is running.
    Append([u8; 32], Arc<str>, Instant),
    Flush(Sender<()>),
}

/// The writer thread's mutable half: the segment currently accepting
/// appends.
struct ActiveSeg {
    id: u64,
    writer: SegmentWriter,
}

/// The persistent disk tier. See the [module docs](self) for the design;
/// the on-disk format is specified in `docs/CACHE_FORMAT.md`.
pub struct SpillTier {
    inner: Arc<Inner>,
    tx: Option<Sender<Msg>>,
    writer: Option<std::thread::JoinHandle<()>>,
    /// Held (flocked) for the tier's lifetime; the kernel releases it
    /// when the process exits, however it exits.
    _lock: File,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.log"))
}

fn segment_id(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

impl SpillTier {
    /// Opens (or creates) the spill directory: locks it, scans and
    /// recovers every segment, compacts if past the garbage threshold,
    /// and starts the background writer.
    ///
    /// Fails if the directory cannot be created or read, or if another
    /// live process holds its `LOCK`.
    pub fn open(config: SpillConfig) -> io::Result<SpillTier> {
        std::fs::create_dir_all(&config.dir)?;
        let lock = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(config.dir.join("LOCK"))?;
        flock::try_lock_exclusive(&lock).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!(
                    "spill directory {} is locked by another process: {e}",
                    config.dir.display()
                ),
            )
        })?;

        let inner = Arc::new(Inner {
            config,
            state: Mutex::new(State::default()),
            hits: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            evicted_segments: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            crc_dropped: AtomicU64::new(0),
            recovered_records: AtomicU64::new(0),
            truncated_tails: AtomicU64::new(0),
            lag: OnceLock::new(),
        });
        let active = recover(&inner)?;

        let (tx, rx) = std::sync::mpsc::channel::<Msg>();
        let writer_inner = Arc::clone(&inner);
        let writer = std::thread::Builder::new()
            .name("oneqd-spill-writer".to_string())
            .spawn(move || writer_loop(&writer_inner, &rx, active))?;

        Ok(SpillTier {
            inner,
            tx: Some(tx),
            writer: Some(writer),
            _lock: lock,
        })
    }

    /// Looks up `digest` on disk. A hit re-verifies the record's CRC and
    /// digest before returning the body; an entry that fails
    /// verification is dropped from the index and reported as a miss.
    pub fn get(&self, digest: &[u8; 32]) -> Option<Arc<str>> {
        let (slot, file) = {
            let state = self.inner.state.lock().expect("spill state poisoned");
            let slot = *state.index.get(digest)?;
            let file = Arc::clone(&state.segments.get(&slot.seg)?.file);
            (slot, file)
        };
        let body = segment::read_record(&file, slot.offset, slot.body_len, digest)
            .ok()
            .and_then(|bytes| String::from_utf8(bytes).ok());
        match body {
            Some(body) => {
                // ORDERING: Relaxed — hit statistic; record bytes were read
                // under the state Mutex's index snapshot.
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::from(body.as_str()))
            }
            None => {
                // The bytes rotted under the index: drop the entry so the
                // next lookup falls through to a fresh compile.
                let mut state = self.inner.state.lock().expect("spill state poisoned");
                if state.index.remove(digest).is_some() {
                    if let Some(seg) = state.segments.get_mut(&slot.seg) {
                        seg.live = seg
                            .live
                            .saturating_sub(segment::record_size(slot.body_len as usize));
                    }
                    // ORDERING: Relaxed — corruption-drop statistic; the
                    // index removal happened under the state Mutex.
                    self.inner.crc_dropped.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
        }
    }

    /// `true` when `digest` is currently indexed (no hit accounting, no
    /// read).
    pub fn contains(&self, digest: &[u8; 32]) -> bool {
        self.inner
            .state
            .lock()
            .expect("spill state poisoned")
            .index
            .contains_key(digest)
    }

    /// Enqueues `digest → body` for the background writer (write-behind:
    /// returns immediately). Digests already on disk are skipped, so
    /// re-fills after a memory-tier eviction do not grow the log.
    pub fn append(&self, digest: [u8; 32], body: Arc<str>) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(Msg::Append(digest, body, Instant::now()));
        }
    }

    /// Installs the histogram that receives one observation per append:
    /// the nanoseconds between [`SpillTier::append`] and the moment the
    /// writer thread picks the record up. A second call is ignored.
    pub fn set_lag_observer(&self, histogram: Histogram) {
        let _ = self.inner.lag.set(histogram);
    }

    /// Blocks until every append enqueued before this call has been
    /// written out. Tests and shutdown use this; the serving path never
    /// does.
    pub fn flush(&self) {
        if let Some(tx) = &self.tx {
            let (ack_tx, ack_rx) = std::sync::mpsc::channel();
            if tx.send(Msg::Flush(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
    }

    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> SpillStats {
        let state = self.inner.state.lock().expect("spill state poisoned");
        let live_bytes: u64 = state.segments.values().map(|s| s.live).sum();
        let total_bytes: u64 = state
            .segments
            .values()
            .map(|s| s.total.saturating_sub(SUPERBLOCK_LEN))
            .sum();
        // ORDERING: Relaxed — point-in-time statistics snapshot; loads may
        // skew slightly against each other, which readers accept.
        SpillStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            appends: self.inner.appends.load(Ordering::Relaxed),
            entries: state.index.len(),
            segments: state.segments.len(),
            live_bytes,
            dead_bytes: total_bytes.saturating_sub(live_bytes),
            capacity_bytes: self.inner.config.max_bytes,
            evicted_segments: self.inner.evicted_segments.load(Ordering::Relaxed),
            compactions: self.inner.compactions.load(Ordering::Relaxed),
            crc_dropped: self.inner.crc_dropped.load(Ordering::Relaxed),
            recovered_records: self.inner.recovered_records.load(Ordering::Relaxed),
            truncated_tails: self.inner.truncated_tails.load(Ordering::Relaxed),
        }
    }
}

impl Drop for SpillTier {
    fn drop(&mut self) {
        // Closing the channel ends the writer loop after it drains every
        // queued append; joining makes drop a durability barrier.
        drop(self.tx.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// The background writer: drains the append queue one record at a time.
/// Each record reaches the file in a single `write(2)` (see
/// [`SegmentWriter::append`]), so there is never a buffered record a
/// crash could halve — only a torn tail the next startup drops.
fn writer_loop(inner: &Inner, rx: &Receiver<Msg>, mut active: ActiveSeg) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Append(digest, body, enqueued) => {
                if let Some(lag) = inner.lag.get() {
                    lag.record_duration(enqueued.elapsed());
                }
                // An append that fails (disk full, dir deleted) loses one
                // cache record, not the daemon: the entry simply stays
                // memory-only.
                let _ = append_one(inner, &mut active, &digest, body.as_bytes());
            }
            Msg::Flush(ack) => {
                // Every Append sent before this Flush has already been
                // handled (the channel is FIFO); the ack is the barrier.
                let _ = ack.send(());
            }
        }
    }
}

fn append_one(
    inner: &Inner,
    active: &mut ActiveSeg,
    digest: &[u8; 32],
    body: &[u8],
) -> io::Result<()> {
    let size = segment::record_size(body.len());
    {
        let state = inner.state.lock().expect("spill state poisoned");
        if state.index.contains_key(digest) {
            return Ok(()); // already on disk; don't grow the log
        }
    }
    if !active.writer.is_empty() && active.writer.len() + size > inner.config.segment_bytes {
        rotate(inner, active)?;
    }
    let offset = active.writer.append(digest, body)?;
    let mut state = inner.state.lock().expect("spill state poisoned");
    if let Some(seg) = state.segments.get_mut(&active.id) {
        seg.live += size;
        seg.total = active.writer.len();
    }
    if let Some(old) = state.index.insert(
        *digest,
        Slot {
            seg: active.id,
            offset,
            body_len: body.len() as u32,
        },
    ) {
        // Possible only if a reader raced a crc-drop of the same digest;
        // the superseded record becomes dead bytes.
        if let Some(seg) = state.segments.get_mut(&old.seg) {
            seg.live = seg
                .live
                .saturating_sub(segment::record_size(old.body_len as usize));
        }
    }
    // ORDERING: Relaxed — append statistic; the record itself was published
    // under the state Mutex above.
    inner.appends.fetch_add(1, Ordering::Relaxed);
    evict_over_budget(&mut state, inner, active.id);
    Ok(())
}

/// Seals the active segment and opens the next one.
fn rotate(inner: &Inner, active: &mut ActiveSeg) -> io::Result<()> {
    let next = active.id + 1;
    let path = segment_path(&inner.config.dir, next);
    let writer = SegmentWriter::create(&path)?;
    let file = Arc::new(Mutex::new(File::open(&path)?));
    let mut state = inner.state.lock().expect("spill state poisoned");
    state.segments.insert(
        next,
        SegmentInfo {
            path,
            file,
            live: 0,
            total: SUPERBLOCK_LEN,
        },
    );
    active.id = next;
    active.writer = writer;
    Ok(())
}

/// Deletes oldest sealed segments until the directory fits its budget.
/// The active segment is never evicted, so a budget smaller than one
/// segment degrades to "one segment" rather than thrashing.
fn evict_over_budget(state: &mut State, inner: &Inner, active_id: u64) {
    loop {
        let total: u64 = state.segments.values().map(|s| s.total).sum();
        if total <= inner.config.max_bytes {
            return;
        }
        let Some((&oldest, _)) = state.segments.iter().next() else {
            return;
        };
        if oldest == active_id {
            return;
        }
        if let Some(seg) = state.segments.remove(&oldest) {
            let _ = std::fs::remove_file(&seg.path);
        }
        state.index.retain(|_, slot| slot.seg != oldest);
        // ORDERING: Relaxed — eviction statistic; the structural change is
        // ordered by the state Mutex the caller holds.
        inner.evicted_segments.fetch_add(1, Ordering::Relaxed);
    }
}

/// One scanned-but-not-yet-indexed segment during recovery.
struct LoadedSegment {
    id: u64,
    path: PathBuf,
    records: Vec<ScannedRecord>,
    valid_len: u64,
    file_len: u64,
}

/// Startup: scan, index (last-wins), maybe compact, pick or create the
/// active segment, enforce the byte budget. Returns the writer's half.
fn recover(inner: &Inner) -> io::Result<ActiveSeg> {
    let config = &inner.config;
    let mut ids: Vec<u64> = std::fs::read_dir(&config.dir)?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| segment_id(&entry.file_name().to_string_lossy()))
        .collect();
    ids.sort_unstable();

    let mut loaded = Vec::with_capacity(ids.len());
    for id in ids {
        let path = segment_path(&config.dir, id);
        match segment::scan(&path) {
            Ok(outcome) => {
                // ORDERING: Relaxed — recovery statistics, written before
                // any reader thread exists (single-threaded startup).
                if outcome.truncated {
                    inner.truncated_tails.fetch_add(1, Ordering::Relaxed);
                }
                inner
                    .recovered_records
                    .fetch_add(outcome.records.len() as u64, Ordering::Relaxed);
                loaded.push(LoadedSegment {
                    id,
                    path,
                    records: outcome.records,
                    valid_len: outcome.valid_len,
                    file_len: outcome.file_len,
                });
            }
            Err(_) => {
                // Not a (readable) segment of this version: it can never
                // be served from, so reclaim the space. The cache can
                // always re-fill.
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    // Last-wins index build with per-segment live-byte accounting.
    let mut index: HashMap<[u8; 32], Slot> = HashMap::new();
    let mut live: HashMap<u64, u64> = HashMap::new();
    for seg in &loaded {
        for record in &seg.records {
            let size = segment::record_size(record.body_len as usize);
            if let Some(old) = index.insert(
                record.digest,
                Slot {
                    seg: seg.id,
                    offset: record.offset,
                    body_len: record.body_len,
                },
            ) {
                if let Some(old_live) = live.get_mut(&old.seg) {
                    *old_live =
                        old_live.saturating_sub(segment::record_size(old.body_len as usize));
                }
            }
            *live.entry(seg.id).or_insert(0) += size;
        }
    }

    let live_total: u64 = live.values().sum();
    let dead_total: u64 = loaded
        .iter()
        .map(|seg| {
            (seg.file_len - SUPERBLOCK_LEN).saturating_sub(live.get(&seg.id).copied().unwrap_or(0))
        })
        .sum();
    let garbage = live_total + dead_total;
    if dead_total > 0 && (dead_total as f64) > config.compact_ratio * garbage as f64 {
        let (new_loaded, new_index, new_live) = compact(config, &loaded, &index)?;
        // ORDERING: Relaxed — recovery-time statistic; still single-threaded.
        inner.compactions.fetch_add(1, Ordering::Relaxed);
        loaded = new_loaded;
        index = new_index;
        live = new_live;
    }

    // Materialize read handles and accounting.
    let mut segments = BTreeMap::new();
    for seg in &loaded {
        segments.insert(
            seg.id,
            SegmentInfo {
                path: seg.path.clone(),
                file: Arc::new(Mutex::new(File::open(&seg.path)?)),
                live: live.get(&seg.id).copied().unwrap_or(0),
                total: seg.file_len,
            },
        );
    }

    // The active segment: reuse the newest one if it still has room —
    // `open_for_append` physically drops any torn tail first — else (or
    // when the directory is empty) start a fresh one.
    let active = match loaded.last() {
        Some(seg) if seg.valid_len < config.segment_bytes => {
            let writer = SegmentWriter::open_for_append(&seg.path, seg.valid_len)?;
            if let Some(info) = segments.get_mut(&seg.id) {
                info.total = seg.valid_len;
            }
            ActiveSeg { id: seg.id, writer }
        }
        other => {
            let id = other.map_or(0, |seg| seg.id + 1);
            let path = segment_path(&config.dir, id);
            let writer = SegmentWriter::create(&path)?;
            segments.insert(
                id,
                SegmentInfo {
                    path: path.clone(),
                    file: Arc::new(Mutex::new(File::open(&path)?)),
                    live: 0,
                    total: SUPERBLOCK_LEN,
                },
            );
            ActiveSeg { id, writer }
        }
    };

    let mut state = inner.state.lock().expect("spill state poisoned");
    state.index = index;
    state.segments = segments;
    // A budget lowered across a restart is enforced immediately.
    evict_over_budget(&mut state, inner, active.id);
    Ok(active)
}

/// Rewrites every live record into fresh segments (ids continuing past
/// the old set) and deletes the old files. Crash-safe by construction:
/// if the process dies mid-compaction, both copies of a record exist and
/// the next startup's last-wins scan prefers the new one (higher segment
/// id), counting the old as dead again.
#[allow(clippy::type_complexity)]
fn compact(
    config: &SpillConfig,
    loaded: &[LoadedSegment],
    index: &HashMap<[u8; 32], Slot>,
) -> io::Result<(
    Vec<LoadedSegment>,
    HashMap<[u8; 32], Slot>,
    HashMap<u64, u64>,
)> {
    // Copy in log order so relative write order (and thus eviction
    // order) is preserved.
    let mut slots: Vec<([u8; 32], Slot)> = index.iter().map(|(d, s)| (*d, *s)).collect();
    slots.sort_unstable_by_key(|(_, slot)| (slot.seg, slot.offset));

    let mut readers: HashMap<u64, Mutex<File>> = HashMap::new();
    for seg in loaded {
        readers.insert(seg.id, Mutex::new(File::open(&seg.path)?));
    }

    let mut next_id = loaded.last().map_or(0, |seg| seg.id + 1);
    let mut new_loaded: Vec<LoadedSegment> = Vec::new();
    let mut new_index: HashMap<[u8; 32], Slot> = HashMap::new();
    let mut new_live: HashMap<u64, u64> = HashMap::new();
    let mut writer: Option<(u64, SegmentWriter)> = None;

    for (digest, slot) in slots {
        let Some(reader) = readers.get(&slot.seg) else {
            continue;
        };
        // A record that fails verification now is simply not carried
        // over — same policy as a read-time drop.
        let Ok(body) = segment::read_record(reader, slot.offset, slot.body_len, &digest) else {
            continue;
        };
        let size = segment::record_size(body.len());
        let needs_new = match &writer {
            None => true,
            Some((_, w)) => !w.is_empty() && w.len() + size > config.segment_bytes,
        };
        if needs_new {
            if let Some((id, w)) = writer.take() {
                new_loaded.push(LoadedSegment {
                    id,
                    path: segment_path(&config.dir, id),
                    records: Vec::new(),
                    valid_len: w.len(),
                    file_len: w.len(),
                });
            }
            let id = next_id;
            next_id += 1;
            writer = Some((id, SegmentWriter::create(&segment_path(&config.dir, id))?));
        }
        let (id, w) = writer.as_mut().expect("writer was just ensured");
        let offset = w.append(&digest, &body)?;
        new_index.insert(
            digest,
            Slot {
                seg: *id,
                offset,
                body_len: body.len() as u32,
            },
        );
        *new_live.entry(*id).or_insert(0) += size;
    }
    if let Some((id, w)) = writer.take() {
        new_loaded.push(LoadedSegment {
            id,
            path: segment_path(&config.dir, id),
            records: Vec::new(),
            valid_len: w.len(),
            file_len: w.len(),
        });
    }

    for seg in loaded {
        let _ = std::fs::remove_file(&seg.path);
    }
    Ok((new_loaded, new_index, new_live))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::sha256;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oneq-spill-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        // A fresh dir per test: remove leftovers from a previous run.
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn body(i: usize) -> Arc<str> {
        Arc::from(format!("{{\"record\": {i}, \"pad\": \"{:064}\"}}\n", i).as_str())
    }

    #[test]
    fn append_flush_get_round_trips() {
        let dir = tempdir("roundtrip");
        let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
        let digest = sha256(b"k1");
        assert!(tier.get(&digest).is_none());
        tier.append(digest, body(1));
        tier.flush();
        assert!(tier.contains(&digest));
        assert_eq!(tier.get(&digest), Some(body(1)));
        let stats = tier.stats();
        assert_eq!((stats.hits, stats.appends, stats.entries), (1, 1, 1));
        assert_eq!(stats.dead_bytes, 0);
        drop(tier);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_recovers_every_record() {
        let dir = tempdir("restart");
        let digests: Vec<[u8; 32]> = (0..10)
            .map(|i| sha256(format!("k{i}").as_bytes()))
            .collect();
        {
            let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
            for (i, d) in digests.iter().enumerate() {
                tier.append(*d, body(i));
            }
        } // drop drains the queue and releases the lock
        let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
        for (i, d) in digests.iter().enumerate() {
            assert_eq!(tier.get(d), Some(body(i)), "record {i} survives restart");
        }
        let stats = tier.stats();
        assert_eq!(stats.recovered_records, 10);
        assert_eq!(stats.entries, 10);
        assert_eq!(stats.truncated_tails, 0);
        drop(tier);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_appends_do_not_grow_the_log() {
        let dir = tempdir("dedup");
        let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
        let digest = sha256(b"k");
        tier.append(digest, body(1));
        tier.flush();
        let before = tier.stats().live_bytes;
        for _ in 0..5 {
            tier.append(digest, body(1));
        }
        tier.flush();
        let stats = tier.stats();
        assert_eq!(stats.live_bytes, before);
        assert_eq!(stats.appends, 1, "duplicates are skipped, not written");
        drop(tier);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_and_whole_segment_eviction_bound_the_directory() {
        let dir = tempdir("evict");
        let mut config = SpillConfig::new(&dir);
        // Tiny geometry: a couple of records per segment, ~4 segments.
        config.segment_bytes = 400;
        config.max_bytes = 1600;
        let tier = SpillTier::open(config.clone()).unwrap();
        let digests: Vec<[u8; 32]> = (0..40)
            .map(|i| sha256(format!("k{i}").as_bytes()))
            .collect();
        for (i, d) in digests.iter().enumerate() {
            tier.append(*d, body(i));
        }
        tier.flush();
        let stats = tier.stats();
        assert!(stats.evicted_segments > 0, "budget pressure evicted");
        assert!(
            stats.live_bytes + stats.dead_bytes <= config.max_bytes,
            "directory stays within budget"
        );
        assert!(stats.entries < digests.len(), "old entries were dropped");
        // The newest record always survives (it is in the active segment).
        assert_eq!(tier.get(digests.last().unwrap()), Some(body(39)));
        // Evicted digests read as clean misses.
        assert!(tier.get(&digests[0]).is_none());
        drop(tier);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn startup_compacts_past_the_garbage_threshold() {
        let dir = tempdir("compact");
        std::fs::create_dir_all(&dir).unwrap();
        // Hand-write a segment full of superseded duplicates: 9 dead
        // versions of one digest, then the live one, plus one distinct
        // record. (The running tier dedups appends, so this much garbage
        // only arises from crash patterns — construct it directly.)
        let digest = sha256(b"dup");
        let other = sha256(b"other");
        let path = segment_path(&dir, 0);
        let mut writer = SegmentWriter::create(&path).unwrap();
        for i in 0..10 {
            writer.append(&digest, body(i).as_bytes()).unwrap();
        }
        writer.append(&other, body(99).as_bytes()).unwrap();
        drop(writer);

        let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
        let stats = tier.stats();
        assert_eq!(stats.compactions, 1, "dead ratio exceeded the threshold");
        assert_eq!(stats.dead_bytes, 0, "compaction reclaimed the garbage");
        assert_eq!(stats.entries, 2);
        assert_eq!(tier.get(&digest), Some(body(9)), "last write wins");
        assert_eq!(tier.get(&other), Some(body(99)));
        assert!(!path.exists(), "the garbage segment was deleted");
        drop(tier);

        // And the compacted directory recovers cleanly.
        let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
        assert_eq!(tier.get(&digest), Some(body(9)));
        assert_eq!(tier.stats().compactions, 0, "nothing left to compact");
        drop(tier);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_appends_resume() {
        let dir = tempdir("torn");
        let digest = sha256(b"intact");
        {
            let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
            tier.append(digest, body(1));
        }
        // Simulate a crash mid-write: half a record at the tail.
        let path = segment_path(&dir, 0);
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            let torn = segment::encode_record(&sha256(b"torn"), body(2).as_bytes());
            file.write_all(&torn[..torn.len() / 2]).unwrap();
        }
        let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
        let stats = tier.stats();
        assert_eq!(stats.truncated_tails, 1);
        assert_eq!(stats.recovered_records, 1);
        assert_eq!(tier.get(&digest), Some(body(1)), "intact record survives");
        assert!(tier.get(&sha256(b"torn")).is_none());
        // The tail was physically truncated; new appends land cleanly.
        let digest2 = sha256(b"after");
        tier.append(digest2, body(3));
        tier.flush();
        drop(tier);
        let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
        assert_eq!(tier.get(&digest), Some(body(1)));
        assert_eq!(tier.get(&digest2), Some(body(3)));
        assert_eq!(tier.stats().truncated_tails, 0, "the tear healed");
        drop(tier);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_open_on_a_locked_directory_fails() {
        let dir = tempdir("lock");
        let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
        let err = SpillTier::open(SpillConfig::new(&dir));
        if cfg!(unix) {
            let err = err.err().expect("double-open must fail on unix");
            assert!(
                err.to_string().contains("locked by another process"),
                "got: {err}"
            );
        }
        drop(tier);
        // Released on drop: the directory can be reopened.
        let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
        drop(tier);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_segment_files_are_ignored_or_reclaimed() {
        let dir = tempdir("stray");
        std::fs::create_dir_all(&dir).unwrap();
        // A stray file that parses as a segment name but is not one gets
        // reclaimed; unrelated names are left alone.
        std::fs::write(segment_path(&dir, 3), b"not a segment at all").unwrap();
        std::fs::write(dir.join("README.txt"), b"hands off").unwrap();
        let tier = SpillTier::open(SpillConfig::new(&dir)).unwrap();
        assert!(!segment_path(&dir, 3).exists(), "garbage was reclaimed");
        assert!(dir.join("README.txt").exists(), "unrelated files untouched");
        assert_eq!(tier.stats().entries, 0);
        drop(tier);
        std::fs::remove_dir_all(&dir).ok();
    }
}
