//! The `oneqd` server: the versioned `/v1` API, the readiness-driven
//! connection core, and the worker dispatch behind it.
//!
//! Routes (all JSON):
//!
//! | Route | Purpose |
//! |---|---|
//! | `POST /v1/compile` | compile an OpenQASM 2.0 body; knobs as query params |
//! | `POST /v1/compile-batch` | JSONL in, JSONL out; `oneqc`'s record path per line |
//! | `GET /v1/healthz`  | liveness probe |
//! | `GET /v1/stats`    | request + connection + cache + coalescing counters |
//! | `GET /v1/metrics`  | Prometheus text exposition (same registry as stats) |
//! | `GET /v1/traces`   | recent request traces; `route=`/`status=`/`min_ms=`/`limit=` filters |
//! | `GET /v1/traces/{id}` | one trace by request id |
//!
//! (The unversioned PR-4 shims — `/compile`, `/healthz`, `/stats` —
//! served their one promised migration release and are gone; they now
//! answer 404 like any other unknown path.)
//!
//! # The event loop
//!
//! One thread owns every socket. It runs `poll(2)` ([`crate::poll`])
//! over the listener, a wake pipe, and all open connections
//! ([`crate::conn::Conn`]), so an open connection costs a file
//! descriptor — never a thread. Reads are nonblocking and feed the
//! resumable [`crate::http::RequestParser`]; only once a request is
//! *complete* is it dispatched to the bounded [`WorkerPool`], whose
//! completion comes back over a channel (plus a waker nudge) as fully
//! rendered response bytes the loop writes out as the socket accepts
//! them. Trivial routes (`healthz`, `stats`, 404/405) are answered on
//! the loop itself.
//!
//! Connections are *sessions*: requests are read off one socket until
//! the client sends `Connection: close`, the per-connection request cap
//! is reached, or the idle timeout expires between requests. Each state
//! carries a deadline — `idle_timeout` between requests, `io_timeout`
//! from a request's first byte to its last and for writing a response —
//! so a slow-loris client trickling one byte per second is evicted when
//! its whole-request budget runs out (the per-read timeouts of the old
//! thread-per-connection core never fired for such a client; it pinned
//! a worker forever). Evictions and connection-state gauges are
//! surfaced in `GET /v1/stats` (`oneqd-stats/v6`).
//!
//! # Telemetry
//!
//! Every counter either lives in, or is mirrored into, the
//! [`crate::telemetry::Telemetry`] registry, and both `GET /v1/stats`
//! and `GET /v1/metrics` render from *one* registry snapshot — the two
//! surfaces cannot disagree. Every parsed request carries an
//! `X-Oneqd-Request-Id` (inbound value adopted when well-formed,
//! otherwise minted) echoed on the response, and a span trace — read,
//! queue wait, handler, per-tier cache lookup, per-stage compile times,
//! response write — closed when the last response byte flushes, pushed
//! to an in-memory ring and (under `--trace-log`, gated by `--slow-ms`)
//! to a JSONL sink. See `docs/OBSERVABILITY.md` for names and schemas.
//!
//! `/v1/compile` responses are byte-identical to `oneqc`'s JSONL
//! records (one record + `\n`) for the same source and config, and —
//! unless the request bypasses — are served through the tiered
//! content-addressed cache ([`TieredCache`]: in-memory LRU, then the
//! optional disk spill tier) behind a [`SingleFlight`] coalescing
//! layer, with the outcome exposed in an
//! `X-Oneqd-Cache: memory|disk|miss|coalesced|bypass` header.
//!
//! Shutdown: once the stop flag fires the loop stops accepting, closes
//! idle sessions, lets in-flight requests finish writing, and joins the
//! worker pool — bounded by the slowest in-flight exchange, not by an
//! accept call blocked forever.

use crate::cache::{sha256, FlightRole, SingleFlight, Tier, TieredCache};
use crate::compile::RecordTimings;
use crate::http::{write_response, Connection, Request};
use crate::json::{self, ObjWriter};
use crate::pool::{run_indexed, WorkerPool};
use crate::request::CompileRequest;
use crate::spill::{SpillConfig, SpillTier};
use crate::telemetry::{
    PendingTrace, Telemetry, TraceSeed, ROUTE_BATCH, ROUTE_COMPILE, ROUTE_INLINE,
};
use oneq_obs::{duration_ns, Snapshot, Span};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tunables for a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads compiling dispatched requests.
    pub workers: usize,
    /// Bounded backlog of dispatched-but-unstarted requests in the
    /// worker pool; when full, further dispatches wait on the event
    /// loop's retry queue (the loop itself never blocks).
    pub backlog: usize,
    /// Total cached compile responses.
    pub cache_capacity: usize,
    /// Mutex stripes in the cache.
    pub cache_shards: usize,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Whole-exchange deadline: a request gets this long from its first
    /// byte to its last, and a response gets this long to flush. The
    /// slow-loris budget.
    pub io_timeout: Duration,
    /// Requests served on one connection before the server closes it
    /// (`Connection: close` on the final response). Bounds how long one
    /// client can monopolize a connection slot.
    pub keep_alive_requests: usize,
    /// How long a kept-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Upper bound on concurrent batch-line compiles — per request *and*
    /// globally (a shared semaphore budget, so N simultaneous
    /// `/v1/compile-batch` requests still run at most this many compiles
    /// at once). Batches use scoped threads, not pool workers, so a
    /// batch cannot deadlock the connection pool.
    pub batch_jobs: usize,
    /// Directory for the persistent disk spill tier (`oneqd
    /// --cache-dir`). `None` (the default) runs memory-only, exactly the
    /// pre-spill behavior.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for the spill directory (`oneqd --cache-disk-bytes`);
    /// ignored without `cache_dir`.
    pub cache_disk_bytes: u64,
    /// Cap on concurrently open connections; the listener is simply not
    /// polled while at the cap, so excess clients wait in the kernel
    /// accept backlog instead of being dropped.
    pub max_connections: usize,
    /// JSONL sink for closed request traces (`oneqd --trace-log`).
    /// `None` keeps traces in the in-memory ring only.
    pub trace_log: Option<PathBuf>,
    /// Threshold for the trace-log sink (`oneqd --slow-ms`): 0 logs
    /// every request, N logs only requests that took ≥ N ms end to end.
    /// The in-memory ring is not gated.
    pub slow_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let parallelism =
            std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        ServerConfig {
            workers: parallelism,
            backlog: 64,
            cache_capacity: 256,
            cache_shards: 8,
            max_body: 4 * 1024 * 1024,
            io_timeout: Duration::from_secs(10),
            keep_alive_requests: 256,
            idle_timeout: Duration::from_secs(5),
            batch_jobs: parallelism,
            cache_dir: None,
            cache_disk_bytes: 256 * 1024 * 1024,
            max_connections: 4096,
            trace_log: None,
            slow_ms: 0,
        }
    }
}

/// A minimal counting semaphore (std has none): the global budget of
/// concurrent batch-compile slots. Each `/v1/compile-batch` request
/// spawns its own scoped threads, so without a *shared* budget N
/// concurrent batches would run `N × batch_jobs` compiles at once and
/// oversubscribe every core; with it, total batch compile concurrency is
/// `batch_jobs` regardless of how many batches are in flight.
struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(permits.max(1)),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) -> SemaphoreGuard<'_> {
        let mut permits = self.permits.lock().expect("semaphore poisoned");
        while *permits == 0 {
            permits = self.cv.wait(permits).expect("semaphore poisoned");
        }
        *permits -= 1;
        SemaphoreGuard(self)
    }
}

struct SemaphoreGuard<'a>(&'a Semaphore);

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        *self.0.permits.lock().expect("semaphore poisoned") += 1;
        self.0.cv.notify_one();
    }
}

/// Shared request/connection/cache accounting, surfaced through
/// `GET /v1/stats`.
pub struct ServiceState {
    started: Instant,
    /// The tiered compile cache (memory LRU + optional disk spill).
    pub cache: TieredCache,
    /// The coalescing layer in front of the cache.
    pub flights: SingleFlight,
    /// The metrics registry, trace ring, and request-id mint.
    pub telemetry: Telemetry,
    batch_slots: Semaphore,
    connections: AtomicU64,
    requests: AtomicU64,
    healthz_requests: AtomicU64,
    stats_requests: AtomicU64,
    metrics_requests: AtomicU64,
    traces_requests: AtomicU64,
    compile_requests: AtomicU64,
    batch_requests: AtomicU64,
    batch_records: AtomicU64,
    compile_ok: AtomicU64,
    compile_errors: AtomicU64,
    compile_executions: AtomicU64,
    http_errors: AtomicU64,
    workers: usize,
    max_connections: usize,
    // Connection-state gauges, refreshed by the event loop every
    // iteration (so an externally rendered stats body is at most one
    // poll cadence stale).
    conns_open: AtomicU64,
    conns_reading: AtomicU64,
    conns_dispatched: AtomicU64,
    conns_writing: AtomicU64,
    conns_draining: AtomicU64,
    conns_idle: AtomicU64,
    evicted_slow_read: AtomicU64,
    evicted_slow_write: AtomicU64,
    idle_closed: AtomicU64,
}

impl ServiceState {
    /// Fallible because opening the spill tier can fail: the directory
    /// may be unwritable or flocked by another daemon.
    fn new(config: &ServerConfig) -> io::Result<ServiceState> {
        let telemetry = Telemetry::new(config.trace_log.as_deref(), config.slow_ms)?;
        let disk = match &config.cache_dir {
            Some(dir) => {
                let mut spill = SpillConfig::new(dir);
                spill.max_bytes = config.cache_disk_bytes;
                let tier = SpillTier::open(spill)?;
                tier.set_lag_observer(telemetry.spill_lag_histogram());
                Some(tier)
            }
            None => None,
        };
        Ok(ServiceState {
            started: Instant::now(),
            cache: TieredCache::new(config.cache_capacity, config.cache_shards, disk),
            flights: SingleFlight::new(),
            telemetry,
            batch_slots: Semaphore::new(config.batch_jobs),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            healthz_requests: AtomicU64::new(0),
            stats_requests: AtomicU64::new(0),
            metrics_requests: AtomicU64::new(0),
            traces_requests: AtomicU64::new(0),
            compile_requests: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            batch_records: AtomicU64::new(0),
            compile_ok: AtomicU64::new(0),
            compile_errors: AtomicU64::new(0),
            compile_executions: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            workers: config.workers.max(1),
            max_connections: config.max_connections.max(1),
            conns_open: AtomicU64::new(0),
            conns_reading: AtomicU64::new(0),
            conns_dispatched: AtomicU64::new(0),
            conns_writing: AtomicU64::new(0),
            conns_draining: AtomicU64::new(0),
            conns_idle: AtomicU64::new(0),
            evicted_slow_read: AtomicU64::new(0),
            evicted_slow_write: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
        })
    }

    /// Compiles actually executed (cache misses + bypasses); the
    /// difference against `compile_requests + batch_records` is the work
    /// the cache and the single-flight layer saved.
    pub fn compile_executions(&self) -> u64 {
        // ORDERING: Relaxed — statistics read with no dependent data.
        self.compile_executions.load(Ordering::Relaxed)
    }

    /// Slow-client evictions so far (read-side: slow-loris uploads and
    /// stalled drains). Tests and `loadgen`'s adversarial gate read this
    /// without parsing the stats body.
    pub fn evicted_slow_read(&self) -> u64 {
        // ORDERING: Relaxed — statistics read with no dependent data.
        self.evicted_slow_read.load(Ordering::Relaxed)
    }

    /// Mirrors every externally maintained counter and gauge — the
    /// request atomics, cache shard counters, spill stats, coalescing
    /// count, trace-ring total — into the telemetry registry. Called
    /// immediately before each snapshot so both rendered surfaces see
    /// one consistent capture; live instrumentation (histograms, cache
    /// outcomes) records into the registry directly and needs no mirror.
    fn refresh_registry(&self) {
        let reg = &self.telemetry.registry;
        let counter = |name: &str, help: &str, value: u64| {
            reg.counter(name, help, &[]).set(value);
        };
        let gauge = |name: &str, help: &str, value: u64| {
            reg.gauge(name, help, &[]).set(value);
        };
        // ORDERING: Relaxed — mirroring statistics into the registry is a
        // point-in-time capture; counters are independent of each other.
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);

        gauge(
            "oneqd_uptime_milliseconds",
            "Milliseconds since the daemon started.",
            self.started.elapsed().as_millis() as u64,
        );
        gauge(
            "oneqd_workers",
            "Worker threads serving compile requests.",
            self.workers as u64,
        );
        gauge(
            "oneqd_max_connections",
            "Configured cap on concurrently open connections.",
            self.max_connections as u64,
        );
        counter(
            "oneqd_connections_total",
            "Connections accepted.",
            load(&self.connections),
        );
        counter(
            "oneqd_requests_total",
            "HTTP requests received (including malformed ones).",
            load(&self.requests),
        );
        let route_help = "Requests by route.";
        for (route, atomic) in [
            ("healthz", &self.healthz_requests),
            ("stats", &self.stats_requests),
            ("metrics", &self.metrics_requests),
            ("traces", &self.traces_requests),
            ("compile", &self.compile_requests),
            ("batch", &self.batch_requests),
        ] {
            reg.counter(
                "oneqd_route_requests_total",
                route_help,
                &[("route", route)],
            )
            .set(load(atomic));
        }
        counter(
            "oneqd_batch_records_total",
            "Individual records served across batch requests.",
            load(&self.batch_records),
        );
        counter(
            "oneqd_compile_ok_total",
            "Compile records answered with status ok.",
            load(&self.compile_ok),
        );
        counter(
            "oneqd_compile_errors_total",
            "Compile records answered with status error.",
            load(&self.compile_errors),
        );
        counter(
            "oneqd_compile_executions_total",
            "Compiles actually executed (misses + bypasses).",
            load(&self.compile_executions),
        );
        counter(
            "oneqd_coalesced_total",
            "Requests served from a concurrent leader's in-flight compile.",
            self.flights.coalesced(),
        );
        counter(
            "oneqd_http_errors_total",
            "Requests answered with a 4xx/5xx error envelope.",
            load(&self.http_errors),
        );
        let conn_help = "Open connections by state.";
        for (state, atomic) in [
            ("reading", &self.conns_reading),
            ("dispatched", &self.conns_dispatched),
            ("writing", &self.conns_writing),
            ("draining", &self.conns_draining),
            ("idle_keep_alive", &self.conns_idle),
        ] {
            reg.gauge("oneqd_conn_states", conn_help, &[("state", state)])
                .set(load(atomic));
        }
        gauge(
            "oneqd_conns_open",
            "Connections currently open (all states).",
            load(&self.conns_open),
        );
        let evict_help = "Connections closed by the server, by reason.";
        for (reason, atomic) in [
            ("slow_read", &self.evicted_slow_read),
            ("slow_write", &self.evicted_slow_write),
            ("idle", &self.idle_closed),
        ] {
            reg.counter("oneqd_evictions_total", evict_help, &[("reason", reason)])
                .set(load(atomic));
        }

        counter(
            "oneqd_cache_fills_total",
            "Compile results inserted into the cache.",
            self.cache.fills(),
        );
        let memory = self.cache.memory_stats();
        counter(
            "oneqd_cache_memory_hits_total",
            "Memory-tier cache hits.",
            memory.hits,
        );
        counter(
            "oneqd_cache_memory_misses_total",
            "Memory-tier cache misses.",
            memory.misses,
        );
        counter(
            "oneqd_cache_memory_evictions_total",
            "Memory-tier LRU evictions.",
            memory.evictions,
        );
        gauge(
            "oneqd_cache_memory_entries",
            "Entries resident in the memory tier.",
            memory.entries as u64,
        );
        gauge(
            "oneqd_cache_memory_capacity",
            "Configured memory-tier capacity.",
            memory.capacity as u64,
        );
        gauge(
            "oneqd_cache_memory_shards",
            "Mutex stripes in the memory tier.",
            memory.shards as u64,
        );
        match self.cache.disk_stats() {
            Some(spill) => {
                gauge(
                    "oneqd_spill_enabled",
                    "1 when a disk spill tier is attached.",
                    1,
                );
                counter(
                    "oneqd_spill_hits_total",
                    "Disk-tier cache hits.",
                    spill.hits,
                );
                counter(
                    "oneqd_spill_appends_total",
                    "Records appended to the spill log.",
                    spill.appends,
                );
                gauge(
                    "oneqd_spill_entries",
                    "Records indexed in the spill tier.",
                    spill.entries as u64,
                );
                gauge(
                    "oneqd_spill_segments",
                    "Segment files in the spill directory.",
                    spill.segments as u64,
                );
                gauge(
                    "oneqd_spill_live_bytes",
                    "Bytes of live records on disk.",
                    spill.live_bytes,
                );
                gauge(
                    "oneqd_spill_dead_bytes",
                    "Bytes of superseded records awaiting compaction.",
                    spill.dead_bytes,
                );
                gauge(
                    "oneqd_spill_capacity_bytes",
                    "Configured spill byte budget.",
                    spill.capacity_bytes,
                );
                counter(
                    "oneqd_spill_evicted_segments_total",
                    "Whole segments dropped to stay under budget.",
                    spill.evicted_segments,
                );
                counter(
                    "oneqd_spill_compactions_total",
                    "Compaction passes over the spill log.",
                    spill.compactions,
                );
                counter(
                    "oneqd_spill_crc_dropped_total",
                    "Records dropped for CRC mismatch at recovery.",
                    spill.crc_dropped,
                );
                counter(
                    "oneqd_spill_recovered_records_total",
                    "Records recovered from disk at startup.",
                    spill.recovered_records,
                );
                counter(
                    "oneqd_spill_truncated_tails_total",
                    "Torn segment tails truncated at recovery.",
                    spill.truncated_tails,
                );
            }
            None => {
                gauge(
                    "oneqd_spill_enabled",
                    "1 when a disk spill tier is attached.",
                    0,
                );
            }
        }
        counter(
            "oneqd_traces_total",
            "Request traces closed (ring evictions included).",
            self.telemetry.traces.pushed(),
        );
    }

    /// One consistent capture of every metric: the registry snapshot
    /// both `/v1/metrics` (exposition format) and `/v1/stats` (JSON)
    /// render from. Mirrored counters are refreshed first.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.refresh_registry();
        self.telemetry.registry.snapshot()
    }

    /// Renders the `/v1/stats` body (`oneqd-stats/v6`): flat request
    /// counters, then a nested `conns` object with connection-state
    /// gauges and eviction counters, then a nested `cache` object with
    /// per-tier blocks — `memory` always, `disk` carrying its counters
    /// when a spill tier is attached (`"enabled": false` otherwise) —
    /// then a `telemetry` object (new in v5), then a `slowest` array of
    /// the ring's worst end-to-end requests (new in v6). Every value is
    /// read from the same registry snapshot `/v1/metrics` renders, via
    /// [`ServiceState::metrics_snapshot`].
    pub fn stats_json(&self) -> String {
        self.stats_json_from(&self.metrics_snapshot())
    }

    fn stats_json_from(&self, snap: &Snapshot) -> String {
        let c = |name: &str| snap.counter(name, &[]);
        let g = |name: &str| snap.gauge(name, &[]);
        let route = |r: &str| snap.counter("oneqd_route_requests_total", &[("route", r)]);
        let conn_state = |s: &str| snap.gauge("oneqd_conn_states", &[("state", s)]);
        let evicted = |r: &str| snap.counter("oneqd_evictions_total", &[("reason", r)]);

        let mut mem = ObjWriter::new();
        mem.field_u64("hits", c("oneqd_cache_memory_hits_total"))
            .field_u64("misses", c("oneqd_cache_memory_misses_total"))
            .field_u64("evictions", c("oneqd_cache_memory_evictions_total"))
            .field_u64("entries", g("oneqd_cache_memory_entries"))
            .field_u64("capacity", g("oneqd_cache_memory_capacity"))
            .field_u64("shards", g("oneqd_cache_memory_shards"));

        let mut disk = ObjWriter::new();
        if g("oneqd_spill_enabled") == 1 {
            disk.field_bool("enabled", true)
                .field_u64("hits", c("oneqd_spill_hits_total"))
                .field_u64("appends", c("oneqd_spill_appends_total"))
                .field_u64("entries", g("oneqd_spill_entries"))
                .field_u64("segments", g("oneqd_spill_segments"))
                .field_u64("live_bytes", g("oneqd_spill_live_bytes"))
                .field_u64("dead_bytes", g("oneqd_spill_dead_bytes"))
                .field_u64("capacity_bytes", g("oneqd_spill_capacity_bytes"))
                .field_u64("evicted_segments", c("oneqd_spill_evicted_segments_total"))
                .field_u64("compactions", c("oneqd_spill_compactions_total"))
                .field_u64("crc_dropped", c("oneqd_spill_crc_dropped_total"))
                .field_u64(
                    "recovered_records",
                    c("oneqd_spill_recovered_records_total"),
                )
                .field_u64("truncated_tails", c("oneqd_spill_truncated_tails_total"));
        } else {
            disk.field_bool("enabled", false);
        }

        let mut cache = ObjWriter::new();
        cache
            .field_u64("fills", c("oneqd_cache_fills_total"))
            .field_raw("memory", &mem.finish())
            .field_raw("disk", &disk.finish());

        let mut conns = ObjWriter::new();
        conns
            .field_u64("open", g("oneqd_conns_open"))
            .field_u64("reading", conn_state("reading"))
            .field_u64("dispatched", conn_state("dispatched"))
            .field_u64("writing", conn_state("writing"))
            .field_u64("draining", conn_state("draining"))
            .field_u64("idle_keep_alive", conn_state("idle_keep_alive"))
            .field_u64("max_connections", g("oneqd_max_connections"))
            .field_u64("evicted_slow_read", evicted("slow_read"))
            .field_u64("evicted_slow_write", evicted("slow_write"))
            .field_u64("idle_closed", evicted("idle"));

        // New in v5, appended after every v4 key (the bench scrapers
        // match the first occurrence of a key, so existing keys must
        // keep their positions).
        let loop_iterations = snap
            .histogram("oneqd_loop_iteration_seconds", &[])
            .map_or(0, |h| h.count);
        let mut telemetry = ObjWriter::new();
        telemetry
            .field_u64("metrics_requests", route("metrics"))
            .field_u64("queue_depth", g("oneqd_queue_depth"))
            .field_u64("ready_fds", g("oneqd_loop_ready_fds"))
            .field_u64("loop_iterations", loop_iterations)
            .field_u64("traces_recorded", c("oneqd_traces_total"))
            .field_u64("traces_buffered", self.telemetry.traces.len() as u64)
            .field_u64("trace_log_records", c("oneqd_trace_log_records_total"))
            // New in v6, appended after every v5 key.
            .field_u64("traces_requests", route("traces"));

        // New in v6: the ring's current worst offenders by end-to-end
        // time, newest first among ties — the `oneq-top` slowest table.
        let mut slowest = String::from("[");
        for (i, record) in self.telemetry.traces.slowest(5).iter().enumerate() {
            if i > 0 {
                slowest.push_str(", ");
            }
            let mut entry = ObjWriter::new();
            entry
                .field_str("request_id", &record.id)
                .field_str("route", &record.route)
                .field_u64("status", u64::from(record.status))
                .field_str("outcome", &record.outcome)
                .field_u64("total_ns", record.total_ns);
            slowest.push_str(&entry.finish());
        }
        slowest.push(']');

        let mut out = ObjWriter::new();
        out.field_str("schema", "oneqd-stats/v6")
            .field_u64("uptime_ms", g("oneqd_uptime_milliseconds"))
            .field_u64("workers", g("oneqd_workers"))
            .field_u64("connections", c("oneqd_connections_total"))
            .field_u64("requests", c("oneqd_requests_total"))
            .field_u64("healthz_requests", route("healthz"))
            .field_u64("stats_requests", route("stats"))
            .field_u64("compile_requests", route("compile"))
            .field_u64("batch_requests", route("batch"))
            .field_u64("batch_records", c("oneqd_batch_records_total"))
            .field_u64("compile_ok", c("oneqd_compile_ok_total"))
            .field_u64("compile_errors", c("oneqd_compile_errors_total"))
            .field_u64("compile_executions", c("oneqd_compile_executions_total"))
            .field_u64("coalesced", c("oneqd_coalesced_total"))
            .field_u64("http_errors", c("oneqd_http_errors_total"))
            .field_raw("conns", &conns.finish())
            .field_raw("cache", &cache.finish())
            .field_raw("telemetry", &telemetry.finish())
            .field_raw("slowest", &slowest);
        let mut body = out.finish();
        body.push('\n');
        body
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    config: ServerConfig,
}

/// Handle to a server running on a background thread (test/loadgen use).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared counters (same data `/v1/stats` reports).
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Requests shutdown and joins the server thread.
    pub fn shutdown(mut self) -> io::Result<()> {
        // ORDERING: Relaxed — lone stop flag polled by the event loop; the
        // join below is the real synchronization point.
        self.stop.store(true, Ordering::Relaxed);
        match self.thread.take() {
            Some(t) => t
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("server thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // ORDERING: Relaxed — same stop flag as `shutdown`; join follows.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, or port 0 for an ephemeral
    /// port) and — when `config.cache_dir` is set — opens (locking,
    /// scanning, recovering) the disk spill tier.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServiceState::new(&config)?);
        Ok(Server {
            listener,
            state,
            config,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared counters.
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Runs the event loop until `stop()` returns `true`, then drains:
    /// accepting stops, idle sessions close, in-flight requests finish
    /// writing, and the worker pool joins. The stop closure is checked
    /// at least every poll cadence (~25 ms), so shutdown latency is
    /// bounded by the slowest in-flight exchange, never by a blocked
    /// accept.
    pub fn run_until(self, stop: impl Fn() -> bool) -> io::Result<()> {
        #[cfg(unix)]
        {
            event_loop::run(self, &stop)
        }
        #[cfg(not(unix))]
        {
            let _ = stop;
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the oneqd event loop requires a Unix target (poll(2))",
            ))
        }
    }

    /// Spawns the event loop on a background thread and returns a
    /// handle exposing the bound address and a shutdown switch.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("oneqd-loop".to_string())
            // ORDERING: Relaxed — stop-flag poll between loop iterations;
            // eventual visibility is all shutdown needs.
            .spawn(move || self.run_until(|| stop_flag.load(Ordering::Relaxed)))?;
        Ok(ServerHandle {
            addr,
            state,
            stop,
            thread: Some(thread),
        })
    }
}

#[cfg(unix)]
mod event_loop {
    use super::*;
    use crate::conn::{Conn, ConnState, FillOutcome};
    use crate::http::RequestError;
    use crate::poll::{poll, PollFd, Waker, POLLIN, POLLOUT};
    use crate::pool::Job;
    use std::collections::VecDeque;
    use std::os::fd::AsRawFd as _;
    use std::sync::mpsc::{channel, Receiver, Sender};

    /// Upper bound on one poll wait: the stop closure (a signal flag, or
    /// a test's shutdown switch) is re-checked at least this often.
    const CADENCE: Duration = Duration::from_millis(25);
    /// How long the listener sits out of the poll set after a
    /// non-transient accept failure (fd exhaustion under a spike).
    const ACCEPT_BACKOFF: Duration = Duration::from_millis(100);

    /// A worker's finished response, keyed back to its connection. The
    /// `id` guards against slot recycling: if the connection was evicted
    /// and its slot reused while the worker ran, the ids disagree and
    /// the stale bytes are dropped.
    struct Completion {
        slot: usize,
        id: u64,
        bytes: Vec<u8>,
        close: bool,
        trace: TraceSeed,
    }

    /// What a poll-set entry maps back to.
    enum Owner {
        Waker,
        Listener,
        Slot(usize),
    }

    pub(super) fn run(server: super::Server, stop: &dyn Fn() -> bool) -> io::Result<()> {
        server.listener.set_nonblocking(true)?;
        let pool = WorkerPool::new("oneqd-worker", server.config.workers, server.config.backlog);
        let (done_tx, done_rx) = channel();
        let mut lp = Loop {
            listener: server.listener,
            state: server.state,
            config: Arc::new(server.config),
            pool,
            conns: Vec::new(),
            free: Vec::new(),
            open_count: 0,
            next_id: 1,
            pending_jobs: VecDeque::new(),
            done_tx,
            done_rx,
            waker: Arc::new(Waker::new()?),
            draining: false,
            accept_backoff_until: None,
        };
        lp.run(stop)
    }

    struct Loop {
        listener: TcpListener,
        state: Arc<ServiceState>,
        config: Arc<ServerConfig>,
        pool: WorkerPool,
        /// Slab of connections; `None` slots are free (tracked in
        /// `free`) so fds keep stable slots across iterations.
        conns: Vec<Option<Conn>>,
        free: Vec<usize>,
        open_count: usize,
        next_id: u64,
        /// Jobs that bounced off a full worker queue, retried each
        /// iteration — the loop never blocks on dispatch.
        pending_jobs: VecDeque<Job>,
        done_tx: Sender<Completion>,
        done_rx: Receiver<Completion>,
        waker: Arc<Waker>,
        draining: bool,
        accept_backoff_until: Option<Instant>,
    }

    impl Loop {
        fn run(&mut self, stop: &dyn Fn() -> bool) -> io::Result<()> {
            loop {
                if !self.draining && stop() {
                    self.draining = true;
                    // Nothing is owed on a between-requests session.
                    for slot in 0..self.conns.len() {
                        if self.conns[slot]
                            .as_ref()
                            .is_some_and(|c| c.state() == ConnState::Idle)
                        {
                            self.close(slot);
                        }
                    }
                }
                if self.draining && self.open_count == 0 {
                    break;
                }
                self.sweep_deadlines();
                self.refresh_gauges();
                self.retry_pending_jobs();

                let now = Instant::now();
                let mut fds = Vec::with_capacity(self.conns.len() + 2);
                let mut owners = Vec::with_capacity(self.conns.len() + 2);
                fds.push(PollFd::new(self.waker.fd(), POLLIN));
                owners.push(Owner::Waker);
                let backing_off = self.accept_backoff_until.is_some_and(|t| t > now);
                if !self.draining && !backing_off && self.open_count < self.config.max_connections {
                    fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
                    owners.push(Owner::Listener);
                }
                let mut timeout = CADENCE;
                for (slot, conn) in self.conns.iter().enumerate() {
                    let Some(conn) = conn else { continue };
                    if let Some(deadline) = conn.deadline() {
                        timeout = timeout.min(deadline.saturating_duration_since(now));
                    }
                    let events = match conn.state() {
                        ConnState::Idle | ConnState::Reading | ConnState::Draining => POLLIN,
                        ConnState::Writing => POLLOUT,
                        // A worker owns the request; nothing to poll
                        // until its completion comes back.
                        ConnState::Dispatched => continue,
                    };
                    fds.push(PollFd::new(conn.fd(), events));
                    owners.push(Owner::Slot(slot));
                }
                poll(&mut fds, Some(timeout))?;
                // Time the work burst (not the poll wait): how long one
                // iteration spends off the kernel before polling again.
                let work_started = Instant::now();

                let mut accept_ready = false;
                let mut ready = Vec::new();
                let mut ready_fds = 0u64;
                for (fd, owner) in fds.iter().zip(&owners) {
                    if fd.revents == 0 {
                        continue;
                    }
                    ready_fds += 1;
                    match owner {
                        Owner::Waker => self.waker.drain(),
                        Owner::Listener => accept_ready = true,
                        Owner::Slot(slot) => ready.push(*slot),
                    }
                }
                // Completions first: they free Dispatched connections
                // (and pool slots) before new work is pumped in.
                self.collect_completions();
                if accept_ready {
                    self.accept_ready();
                }
                for slot in ready {
                    self.pump(slot);
                }
                self.state
                    .telemetry
                    .observe_iteration(duration_ns(work_started.elapsed()));
                self.state.telemetry.set_loop_gauges(
                    ready_fds,
                    (self.pool.depth() + self.pending_jobs.len()) as u64,
                );
            }
            Ok(())
        }

        /// Closes `slot` and recycles it.
        fn close(&mut self, slot: usize) {
            if self.conns[slot].take().is_some() {
                self.open_count -= 1;
                self.free.push(slot);
            }
        }

        /// Evicts connections whose state deadline has passed, counting
        /// each by state.
        fn sweep_deadlines(&mut self) {
            let now = Instant::now();
            for slot in 0..self.conns.len() {
                let Some(conn) = self.conns[slot].as_ref() else {
                    continue;
                };
                let Some(deadline) = conn.deadline() else {
                    continue;
                };
                if deadline > now {
                    continue;
                }
                // ORDERING: Relaxed — eviction statistics; the connection
                // teardown itself happens on this (the only) loop thread.
                match conn.state() {
                    ConnState::Idle => {
                        self.state.idle_closed.fetch_add(1, Ordering::Relaxed);
                    }
                    ConnState::Reading | ConnState::Draining => {
                        self.state.evicted_slow_read.fetch_add(1, Ordering::Relaxed);
                    }
                    ConnState::Writing => {
                        self.state
                            .evicted_slow_write
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    ConnState::Dispatched => continue,
                }
                self.close(slot);
            }
        }

        /// Recounts the connection-state gauges into the shared state.
        fn refresh_gauges(&self) {
            let (mut reading, mut dispatched, mut writing, mut draining, mut idle) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            for conn in self.conns.iter().flatten() {
                match conn.state() {
                    ConnState::Idle => idle += 1,
                    ConnState::Reading => reading += 1,
                    ConnState::Dispatched => dispatched += 1,
                    ConnState::Writing => writing += 1,
                    ConnState::Draining => draining += 1,
                }
            }
            let s = &self.state;
            // ORDERING: Relaxed — connection-state gauges are point-in-time
            // readings published for /v1/stats; no reader orders on them.
            s.conns_open
                .store(self.open_count as u64, Ordering::Relaxed);
            s.conns_reading.store(reading, Ordering::Relaxed);
            s.conns_dispatched.store(dispatched, Ordering::Relaxed);
            s.conns_writing.store(writing, Ordering::Relaxed);
            s.conns_draining.store(draining, Ordering::Relaxed);
            s.conns_idle.store(idle, Ordering::Relaxed);
        }

        /// Re-offers bounced jobs to the pool, preserving order.
        fn retry_pending_jobs(&mut self) {
            while let Some(job) = self.pending_jobs.pop_front() {
                if let Err(job) = self.pool.try_execute_boxed(job) {
                    self.pending_jobs.push_front(job);
                    return;
                }
            }
        }

        /// Drains the completion channel, attaching each finished
        /// response to its (still-matching) connection and flushing
        /// optimistically.
        fn collect_completions(&mut self) {
            while let Ok(done) = self.done_rx.try_recv() {
                let matches = self
                    .conns
                    .get(done.slot)
                    .and_then(|c| c.as_ref())
                    .is_some_and(|c| c.id() == done.id && c.state() == ConnState::Dispatched);
                if !matches {
                    continue; // the connection died while the worker ran
                }
                let io_timeout = self.config.io_timeout;
                let conn = self.conns[done.slot].as_mut().expect("matched above");
                conn.queue_response(done.bytes, done.close);
                conn.set_state(ConnState::Writing);
                conn.set_deadline(Some(Instant::now() + io_timeout));
                conn.set_trace(PendingTrace::begin_write(done.trace));
                self.pump(done.slot);
            }
        }

        /// Accepts everything the listener has, up to the connection
        /// cap; excess waits in the kernel backlog.
        fn accept_ready(&mut self) {
            while self.open_count < self.config.max_connections {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let Ok(mut conn) = Conn::new(stream, self.next_id, self.config.max_body)
                        else {
                            continue; // fcntl failed; drop the socket
                        };
                        self.next_id += 1;
                        // A fresh connection's first clock is the idle
                        // timeout; the whole-request io_timeout arms
                        // once its first byte arrives.
                        conn.set_deadline(Some(Instant::now() + self.config.idle_timeout));
                        // ORDERING: Relaxed — accepted-connections statistic.
                        self.state.connections.fetch_add(1, Ordering::Relaxed);
                        let slot = match self.free.pop() {
                            Some(slot) => {
                                self.conns[slot] = Some(conn);
                                slot
                            }
                            None => {
                                self.conns.push(Some(conn));
                                self.conns.len() - 1
                            }
                        };
                        self.open_count += 1;
                        // Its request bytes may already be in flight.
                        self.pump(slot);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        // Transient accept failures — a peer that RSTs
                        // before we accept (ECONNABORTED), fd exhaustion
                        // under a spike (EMFILE) — must not kill the
                        // daemon: log and sit the listener out briefly.
                        eprintln!("oneqd: accept failed (backing off): {e}");
                        self.accept_backoff_until = Some(Instant::now() + ACCEPT_BACKOFF);
                        return;
                    }
                }
            }
        }

        /// Advances one connection as far as it can go without blocking:
        /// read → parse → (dispatch | inline response) → write → next
        /// pipelined request, stopping at the first `WouldBlock` (or
        /// when a worker takes over).
        fn pump(&mut self, slot: usize) {
            loop {
                let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                    return;
                };
                match conn.state() {
                    ConnState::Idle | ConnState::Reading => match conn.fill() {
                        Ok(FillOutcome::Request(request)) => {
                            if !self.on_request(slot, request) {
                                return; // dispatched: a worker owns it now
                            }
                        }
                        Ok(FillOutcome::NeedMore) => {
                            if conn.state() == ConnState::Idle && conn.mid_request() {
                                // First byte of a request: start the
                                // whole-request clock. A trickler gets
                                // exactly this budget, total.
                                conn.set_state(ConnState::Reading);
                                conn.set_deadline(Some(Instant::now() + self.config.io_timeout));
                            }
                            return;
                        }
                        Ok(FillOutcome::Closed) => {
                            self.close(slot);
                            return;
                        }
                        Err(RequestError::Io(_)) => {
                            self.close(slot);
                            return;
                        }
                        Err(RequestError::Malformed(msg)) => {
                            // Parse failures still count as requests, so
                            // `requests` is reconcilable with
                            // `http_errors` + the per-route counters.
                            // The stream position is unknown → the
                            // session must end after the 400.
                            // ORDERING: Relaxed — request/error statistics;
                            // independent counters reconciled offline.
                            self.state.requests.fetch_add(1, Ordering::Relaxed);
                            self.state.http_errors.fetch_add(1, Ordering::Relaxed);
                            let io_timeout = self.config.io_timeout;
                            let conn = self.conns[slot].as_mut().expect("conn is live");
                            conn.queue_response(
                                render_error(400, &msg, &[], Connection::Close),
                                true,
                            );
                            conn.set_state(ConnState::Writing);
                            conn.set_deadline(Some(Instant::now() + io_timeout));
                        }
                        Err(RequestError::BodyTooLarge(n)) => {
                            // ORDERING: Relaxed — request/error statistics.
                            self.state.requests.fetch_add(1, Ordering::Relaxed);
                            self.state.http_errors.fetch_add(1, Ordering::Relaxed);
                            // The oversized body was never buffered (the
                            // limit is checked against Content-Length).
                            // Drain a bounded amount before writing so
                            // the 413 survives the close — closing with
                            // unread bytes queued in the receive buffer
                            // triggers a TCP reset that would discard
                            // the response.
                            let io_timeout = self.config.io_timeout;
                            let conn = self.conns[slot].as_mut().expect("conn is live");
                            conn.queue_response(
                                render_error(
                                    413,
                                    &format!("body of {n} bytes exceeds limit"),
                                    &[],
                                    Connection::Close,
                                ),
                                true,
                            );
                            conn.begin_drain(n.min(DRAIN_CAP));
                            conn.set_deadline(Some(Instant::now() + io_timeout));
                        }
                    },
                    ConnState::Writing => match conn.flush() {
                        Ok(true) => {
                            // Last response byte flushed: close the trace
                            // (the write span measures queue → flush).
                            let conn_id = conn.id();
                            if let Some(trace) = conn.take_trace() {
                                self.state.telemetry.finish_request(trace, conn_id);
                            }
                            let conn = self.conns[slot].as_mut().expect("conn is live");
                            if conn.close_after_write() || self.draining {
                                self.close(slot);
                                return;
                            }
                            conn.set_state(ConnState::Idle);
                            conn.set_deadline(Some(Instant::now() + self.config.idle_timeout));
                            // Loop on: pipelined bytes may already hold
                            // the next request.
                        }
                        Ok(false) => return, // wait for POLLOUT
                        Err(_) => {
                            self.close(slot);
                            return;
                        }
                    },
                    ConnState::Draining => match conn.drain_step() {
                        Ok(true) => {
                            // Remainder discarded (or peer gone): now
                            // the buffered error response can go out.
                            conn.set_state(ConnState::Writing);
                            conn.set_deadline(Some(Instant::now() + self.config.io_timeout));
                        }
                        Ok(false) => return,
                        Err(_) => {
                            self.close(slot);
                            return;
                        }
                    },
                    ConnState::Dispatched => return,
                }
            }
        }

        /// Handles one complete request: answers trivial routes on the
        /// loop, dispatches compile work to the pool. Returns `false`
        /// when the connection is now owned by a worker (stop pumping).
        fn on_request(&mut self, slot: usize, request: Request) -> bool {
            // ORDERING: Relaxed — total-requests statistic.
            self.state.requests.fetch_add(1, Ordering::Relaxed);
            let conn = self.conns[slot].as_mut().expect("conn is live");
            conn.mark_served();
            // The read span covers first request byte → parse complete.
            let read_ns = conn
                .take_read_start()
                .map_or(0, |t| duration_ns(t.elapsed()));
            self.state.telemetry.observe_read(read_ns);
            let req_id = self
                .state
                .telemetry
                .request_id(request.header("x-oneqd-request-id"));
            let keep = request.wants_keep_alive()
                && conn.served() < self.config.keep_alive_requests.max(1)
                && !self.draining;
            let disposition = if keep {
                Connection::KeepAlive
            } else {
                Connection::Close
            };
            if request.method == "POST"
                && (request.path == "/v1/compile" || request.path == "/v1/compile-batch")
            {
                conn.set_state(ConnState::Dispatched);
                conn.set_deadline(None);
                let id = conn.id();
                let state = Arc::clone(&self.state);
                let config = Arc::clone(&self.config);
                let done = self.done_tx.clone();
                let waker = Arc::clone(&self.waker);
                let enqueued = Instant::now();
                let job: Job = Box::new(move || {
                    let queue_ns = duration_ns(enqueued.elapsed());
                    state.telemetry.observe_queue_wait(queue_ns);
                    let handler_started = Instant::now();
                    let (bytes, handler) = if request.path == "/v1/compile" {
                        handle_compile(&state, &request, disposition, &req_id)
                    } else {
                        handle_batch(&state, &config, &request, disposition, &req_id)
                    };
                    let handler_ns = duration_ns(handler_started.elapsed());
                    let base = read_ns.saturating_add(queue_ns);
                    let mut spans = vec![
                        Span::new("read", 0, read_ns),
                        Span::new("queue", read_ns, queue_ns),
                        Span::new("handle", base, handler_ns),
                    ];
                    spans.extend(handler.spans.into_iter().map(|s| s.shifted(base)));
                    let route_class = if request.path == "/v1/compile" {
                        ROUTE_COMPILE
                    } else {
                        ROUTE_BATCH
                    };
                    let trace = TraceSeed {
                        id: req_id,
                        route: request.path.clone(),
                        route_class,
                        status: handler.status,
                        outcome: handler.outcome,
                        spans,
                        total_ns: base.saturating_add(handler_ns),
                    };
                    // The loop may have dropped the receiver during
                    // shutdown; a dead letter is fine.
                    let _ = done.send(Completion {
                        slot,
                        id,
                        bytes,
                        close: !keep,
                        trace,
                    });
                    waker.wake();
                });
                if let Err(job) = self.pool.try_execute_boxed(job) {
                    self.pending_jobs.push_back(job);
                }
                return false;
            }
            let handler_started = Instant::now();
            let (bytes, status) = route_inline(&self.state, &request, disposition, &req_id);
            let handler_ns = duration_ns(handler_started.elapsed());
            let trace = TraceSeed {
                id: req_id,
                route: request.path.clone(),
                route_class: ROUTE_INLINE,
                status,
                outcome: "inline".to_string(),
                spans: vec![
                    Span::new("read", 0, read_ns),
                    Span::new("handle", read_ns, handler_ns),
                ],
                total_ns: read_ns.saturating_add(handler_ns),
            };
            let io_timeout = self.config.io_timeout;
            let conn = self.conns[slot].as_mut().expect("conn is live");
            conn.queue_response(bytes, !keep);
            conn.set_state(ConnState::Writing);
            conn.set_deadline(Some(Instant::now() + io_timeout));
            conn.set_trace(PendingTrace::begin_write(trace));
            true
        }
    }

    /// Routes the requests the loop answers itself — everything except
    /// the two POST compile routes, which go to the pool. Returns the
    /// rendered bytes and the status code (for the request trace).
    fn route_inline(
        state: &ServiceState,
        request: &Request,
        conn: Connection,
        req_id: &str,
    ) -> (Vec<u8>, u16) {
        let rid = || ("X-Oneqd-Request-Id", req_id.to_string());
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/v1/healthz") => {
                // ORDERING: Relaxed — per-route request statistics, here
                // and in every arm below; all are independent counters.
                state.healthz_requests.fetch_add(1, Ordering::Relaxed);
                let bytes = render(
                    200,
                    &[rid()],
                    "{\"status\": \"ok\", \"service\": \"oneqd\", \"api\": \"v1\"}\n",
                    conn,
                );
                (bytes, 200)
            }
            ("GET", "/v1/stats") => {
                state.stats_requests.fetch_add(1, Ordering::Relaxed);
                (render(200, &[rid()], &state.stats_json(), conn), 200)
            }
            ("GET", "/v1/metrics") => {
                state.metrics_requests.fetch_add(1, Ordering::Relaxed);
                let body = state.metrics_snapshot().render_prometheus();
                let bytes = render_with(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    &[rid()],
                    &body,
                    conn,
                );
                (bytes, 200)
            }
            ("GET", "/v1/traces") => {
                // ORDERING: Relaxed — per-route request/error statistics.
                state.traces_requests.fetch_add(1, Ordering::Relaxed);
                match traces_body(state, request) {
                    Ok(body) => (render(200, &[rid()], &body, conn), 200),
                    Err(msg) => {
                        state.http_errors.fetch_add(1, Ordering::Relaxed);
                        (render_error(400, &msg, &[rid()], conn), 400)
                    }
                }
            }
            ("GET", path) if path.starts_with("/v1/traces/") => {
                state.traces_requests.fetch_add(1, Ordering::Relaxed);
                let id = &path["/v1/traces/".len()..];
                match state.telemetry.traces.get(id) {
                    Some(record) => {
                        let mut body = record.to_json();
                        body.push('\n');
                        (render(200, &[rid()], &body, conn), 200)
                    }
                    None => {
                        state.http_errors.fetch_add(1, Ordering::Relaxed);
                        let bytes = render_error(
                            404,
                            "no trace for that request id (the ring holds the most recent 256)",
                            &[rid()],
                            conn,
                        );
                        (bytes, 404)
                    }
                }
            }
            (_, "/v1/healthz" | "/v1/stats" | "/v1/metrics" | "/v1/traces") => {
                // ORDERING: Relaxed — error statistics for rejected methods.
                state.http_errors.fetch_add(1, Ordering::Relaxed);
                let bytes = render_error(
                    405,
                    "method not allowed",
                    &[("Allow", "GET".to_string()), rid()],
                    conn,
                );
                (bytes, 405)
            }
            (_, path) if path.starts_with("/v1/traces/") => {
                state.http_errors.fetch_add(1, Ordering::Relaxed);
                let bytes = render_error(
                    405,
                    "method not allowed",
                    &[("Allow", "GET".to_string()), rid()],
                    conn,
                );
                (bytes, 405)
            }
            (_, "/v1/compile" | "/v1/compile-batch") => {
                // ORDERING: Relaxed — error statistics, as above.
                state.http_errors.fetch_add(1, Ordering::Relaxed);
                let bytes = render_error(
                    405,
                    "method not allowed",
                    &[("Allow", "POST".to_string()), rid()],
                    conn,
                );
                (bytes, 405)
            }
            _ => {
                state.http_errors.fetch_add(1, Ordering::Relaxed);
                (render_error(404, "no such endpoint", &[rid()], conn), 404)
            }
        }
    }
}

/// `X-Oneqd-Cache` label: served from the in-memory tier.
pub const OUTCOME_MEMORY: &str = "memory";
/// `X-Oneqd-Cache` label: served from the disk spill tier (and promoted
/// into memory).
pub const OUTCOME_DISK: &str = "disk";
/// `X-Oneqd-Cache` label: compiled fresh (and cached on success).
pub const OUTCOME_MISS: &str = "miss";
/// `X-Oneqd-Cache` label: served from a concurrent leader's in-flight
/// compile.
pub const OUTCOME_COALESCED: &str = "coalesced";
/// `X-Oneqd-Cache` label: cache skipped (`timings=1` or `bypass=1`).
pub const OUTCOME_BYPASS: &str = "bypass";

/// What a [`compile_via_cache`] call observed, for the request trace:
/// how long the lookup-or-compile took end to end, and — when this call
/// actually ran the compiler — the per-stage timings.
struct CompileTrace {
    lookup_ns: u64,
    timings: Option<RecordTimings>,
}

/// Serves one [`CompileRequest`] through cache + single-flight. Returns
/// `(record bytes incl. trailing newline, ok, outcome label, trace)`.
/// This is the one path behind both `/v1/compile` and each
/// `/v1/compile-batch` line, so telemetry recorded here (per-tier
/// outcome counters and lookup histograms, per-stage compile
/// histograms) covers both routes. `slots` is the global batch-compile
/// budget (None on the single route, whose concurrency is already
/// bounded by the worker pool): a permit is held only around an
/// *actual* compile — cache hits and coalesced followers must not pin
/// the budget while doing no work.
fn compile_via_cache(
    state: &ServiceState,
    req: &CompileRequest,
    slots: Option<&Semaphore>,
    req_id: &str,
) -> (Arc<str>, bool, &'static str, CompileTrace) {
    let started = Instant::now();
    let (body, ok, outcome, timings) = compile_via_cache_inner(state, req, slots);
    let trace = CompileTrace {
        lookup_ns: duration_ns(started.elapsed()),
        timings,
    };
    state
        .telemetry
        .observe_cache_outcome(outcome, trace.lookup_ns, req_id, trace.timings.as_ref());
    (body, ok, outcome, trace)
}

fn compile_via_cache_inner(
    state: &ServiceState,
    req: &CompileRequest,
    slots: Option<&Semaphore>,
) -> (Arc<str>, bool, &'static str, Option<RecordTimings>) {
    let run = |state: &ServiceState| -> (Arc<str>, bool, Option<RecordTimings>) {
        let _slot = slots.map(Semaphore::acquire);
        // ORDERING: Relaxed — executed-compiles statistic.
        state.compile_executions.fetch_add(1, Ordering::Relaxed);
        let (record, ok, timings) = req.record_timed();
        (Arc::from(format!("{record}\n").as_str()), ok, timings)
    };

    // Timed compiles are inherently non-deterministic and `bypass=1` is
    // an explicit opt-out: neither reads nor warms the cache.
    if !req.cacheable() {
        let (body, ok, timings) = run(state);
        return (body, ok, OUTCOME_BYPASS, timings);
    }

    let digest = sha256(req.fingerprint().as_bytes());
    if let Some((cached, tier)) = state.cache.get_digest(&digest) {
        return (cached, true, tier_label(tier), None);
    }
    match state.flights.join(digest) {
        FlightRole::Follower(Some((body, ok))) => (body, ok, OUTCOME_COALESCED, None),
        FlightRole::Follower(None) => {
            // The leader aborted without publishing — it hit a compile
            // error (error bytes are per-source, never shared) or it
            // panicked. Compile for ourselves rather than re-coalescing
            // into a failed key.
            let (body, ok, timings) = run(state);
            if ok {
                state.cache.fill(digest, Arc::clone(&body));
            }
            (body, ok, OUTCOME_MISS, timings)
        }
        FlightRole::Leader(leader) => {
            // Double-check: a previous leader may have filled the cache
            // between this thread's miss and its election. `peek` avoids
            // double-counting the request's one logical lookup in the
            // memory tier (a disk hit here still counts — it is one).
            if let Some((cached, tier)) = state.cache.peek_digest(&digest) {
                leader.publish(Arc::clone(&cached), true);
                return (cached, true, tier_label(tier), None);
            }
            let (body, ok, timings) = run(state);
            if ok {
                // Error records are cheap to recompute and their spans
                // depend on pre-canonicalization bytes, so only successes
                // are cached — and only successes are published: two
                // sources can share a digest yet differ in raw bytes
                // (CRLF, trailing whitespace), so handing a follower the
                // leader's *error* bytes could break the byte-identity
                // contract for the follower's own source. Dropping the
                // guard aborts the flight and each follower recompiles
                // its own error record. The fill MUST precede `publish`
                // — see the exactly-once note on `SingleFlight`.
                state.cache.fill(digest, Arc::clone(&body));
                leader.publish(Arc::clone(&body), ok);
            } else {
                drop(leader);
            }
            (body, ok, OUTCOME_MISS, timings)
        }
    }
}

/// Renders the `GET /v1/traces` body (`oneqd-traces/v1`): ring totals
/// plus the matching records, newest first. Filters come from the query
/// string — `route=` (exact request-path match), `status=`, `min_ms=`
/// (end-to-end floor), `limit=` (default 50) — and an unparseable or
/// unknown parameter is a 400, not a silent full dump.
fn traces_body(state: &ServiceState, request: &Request) -> Result<String, String> {
    let mut route: Option<&str> = None;
    let mut status: Option<u16> = None;
    let mut min_total_ns: Option<u64> = None;
    let mut limit = 50usize;
    for (key, value) in &request.query {
        match key.as_str() {
            "route" => route = Some(value.as_str()),
            "status" => {
                status = Some(
                    value
                        .parse()
                        .map_err(|_| format!("status must be a number, got {value:?}"))?,
                );
            }
            "min_ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("min_ms must be a whole number, got {value:?}"))?;
                min_total_ns = Some(ms.saturating_mul(1_000_000));
            }
            "limit" => {
                limit = value
                    .parse()
                    .map_err(|_| format!("limit must be a number, got {value:?}"))?;
            }
            other => {
                return Err(format!(
                    "unknown query parameter {other:?} (expected route, status, min_ms, limit)"
                ))
            }
        }
    }
    let records = state
        .telemetry
        .traces
        .query(route, status, min_total_ns, limit);
    let mut body = format!(
        "{{\"schema\": \"oneqd-traces/v1\", \"total\": {}, \"buffered\": {}, \"returned\": {}, \
         \"traces\": [",
        state.telemetry.traces.pushed(),
        state.telemetry.traces.len(),
        records.len()
    );
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&record.to_json());
    }
    body.push_str("]}\n");
    Ok(body)
}

/// The `X-Oneqd-Cache` token for a cache hit's tier.
fn tier_label(tier: Tier) -> &'static str {
    match tier {
        Tier::Memory => OUTCOME_MEMORY,
        Tier::Disk => OUTCOME_DISK,
    }
}

/// What a pool-worker handler reports back for the request trace:
/// response status, cache-outcome label, and its timed phases (span
/// offsets relative to handler start; the event loop re-bases them onto
/// the whole-request timeline).
struct HandlerTrace {
    status: u16,
    outcome: String,
    spans: Vec<Span>,
}

impl HandlerTrace {
    fn error(status: u16) -> HandlerTrace {
        HandlerTrace {
            status,
            outcome: "error".to_string(),
            spans: Vec::new(),
        }
    }
}

/// The `cache` span plus, when this request actually compiled, one
/// `compile.<stage>` span per pipeline stage laid end to end after the
/// lookup started (stage clocks are the compiler's own, so they sum to
/// slightly less than the enclosing `cache` span), plus one
/// `compile.mapping.partition` child span per partition carrying the
/// compiler-internals profile (BFS effort, seed-scan radius, grid
/// occupancy, scratch reuse) as span attributes. Partition spans are
/// laid end to end from the `mapping` span's start, so their extents
/// nest inside it on a timeline view.
fn compile_spans(cache_off: u64, trace: &CompileTrace) -> Vec<Span> {
    let clamp = |ns: u128| u64::try_from(ns).unwrap_or(u64::MAX);
    let mut spans = vec![Span::new("cache", cache_off, trace.lookup_ns)];
    if let Some(timings) = &trace.timings {
        let mut offset = cache_off;
        let mut mapping_off = cache_off;
        {
            let mut push = |name: &'static str, ns: u128, mark: Option<&mut u64>| {
                let dur = clamp(ns);
                if let Some(mark) = mark {
                    *mark = offset;
                }
                spans.push(Span::new(name, offset, dur));
                offset = offset.saturating_add(dur);
            };
            push("compile.parse", timings.parse_ns, None);
            for (stage, ns) in timings.stages.stages() {
                match stage {
                    "translate" => push("compile.translate", ns, None),
                    "partition" => push("compile.partition", ns, None),
                    "fusion_graph" => push("compile.fusion_graph", ns, None),
                    "mapping" => push("compile.mapping", ns, Some(&mut mapping_off)),
                    _ => push("compile.shuffle", ns, None),
                }
            }
        }
        let mut part_off = mapping_off;
        for (i, part) in timings.profile.partitions.iter().enumerate() {
            let dur = clamp(part.mapping_ns);
            spans.push(
                Span::new("compile.mapping.partition", part_off, dur).with_attrs(vec![
                    ("partition", i as u64),
                    ("nodes", part.nodes as u64),
                    ("fusion_graph_ns", clamp(part.fusion_graph_ns)),
                    ("bfs_searches", part.map.bfs_searches),
                    ("bfs_expansions", part.map.bfs_expansions),
                    ("seed_scans", part.map.seed_scans),
                    ("seed_scan_radius_max", part.map.seed_scan_radius_max),
                    ("occupancy_peak", part.map.occupancy_peak),
                    ("scratch_grows", part.map.scratch_grows),
                    ("scratch_reuses", part.map.scratch_reuses),
                    ("routing_cells", part.map.routing_cells),
                ]),
            );
            part_off = part_off.saturating_add(dur);
        }
    }
    spans
}

/// Serves `POST /v1/compile`, returning the fully rendered response
/// bytes and the handler's trace. Runs on a pool worker; it touches
/// only the shared state, so the event loop never waits on a compile.
fn handle_compile(
    state: &ServiceState,
    request: &Request,
    conn: Connection,
    req_id: &str,
) -> (Vec<u8>, HandlerTrace) {
    // ORDERING: Relaxed — request/error statistics throughout this
    // handler; all are independent counters.
    state.compile_requests.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let rid = || ("X-Oneqd-Request-Id", req_id.to_string());
    let source = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            let bytes = render_error(400, "request body is not UTF-8", &[rid()], conn);
            return (bytes, HandlerTrace::error(400));
        }
    };
    let req = match CompileRequest::from_query(&request.query, source) {
        Ok(req) => req,
        Err(msg) => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            let bytes = render_error(400, &msg, &[rid()], conn);
            return (bytes, HandlerTrace::error(400));
        }
    };

    let cache_off = duration_ns(started.elapsed());
    let (body, ok, outcome, trace) = compile_via_cache(state, &req, None, req_id);
    let counter = if ok {
        &state.compile_ok
    } else {
        &state.compile_errors
    };
    // ORDERING: Relaxed — outcome statistic.
    counter.fetch_add(1, Ordering::Relaxed);
    let status = if ok { 200 } else { 422 };
    let headers = vec![("X-Oneqd-Cache", outcome.to_string()), rid()];
    let bytes = render(status, &headers, &body, conn);
    let handler = HandlerTrace {
        status,
        outcome: outcome.to_string(),
        spans: compile_spans(cache_off, &trace),
    };
    (bytes, handler)
}

/// Serves `POST /v1/compile-batch`, returning the rendered response
/// bytes and the handler's trace (outcome is the per-tier tally that
/// also goes in the `X-Oneqd-Cache` header). Runs on a pool worker; the
/// per-line fan-out uses scoped threads under the global batch budget,
/// exactly as before.
fn handle_batch(
    state: &ServiceState,
    config: &ServerConfig,
    request: &Request,
    conn: Connection,
    req_id: &str,
) -> (Vec<u8>, HandlerTrace) {
    // ORDERING: Relaxed — request/error statistics throughout this
    // handler; all are independent counters.
    state.batch_requests.fetch_add(1, Ordering::Relaxed);
    let rid = || ("X-Oneqd-Request-Id", req_id.to_string());
    let text = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            let bytes = render_error(400, "request body is not UTF-8", &[rid()], conn);
            return (bytes, HandlerTrace::error(400));
        }
    };
    // Parse every line up front: a malformed line is a framing error for
    // the whole request (nothing compiles), mirroring how a malformed
    // single request compiles nothing.
    let mut requests = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match CompileRequest::from_jsonl_line(line) {
            Ok(req) => requests.push(req),
            Err(msg) => {
                // ORDERING: Relaxed — error statistic.
                state.http_errors.fetch_add(1, Ordering::Relaxed);
                let bytes =
                    render_error(400, &format!("batch line {}: {msg}", i + 1), &[rid()], conn);
                return (bytes, HandlerTrace::error(400));
            }
        }
    }
    if requests.is_empty() {
        state.http_errors.fetch_add(1, Ordering::Relaxed);
        let bytes = render_error(400, "batch body holds no request lines", &[rid()], conn);
        return (bytes, HandlerTrace::error(400));
    }

    // Fan the lines out over scoped worker threads (`run_indexed` — the
    // same pool shape `oneqc` batches with); results land in their input
    // slots, so the response preserves request order no matter which
    // line finishes first. Actual compiles draw on the *global* batch
    // budget (`state.batch_slots`, sized `batch_jobs`), so concurrent
    // batches share the compile slots instead of multiplying them.
    let jobs = config.batch_jobs.max(1);
    let results = run_indexed(jobs, &requests, |_, req| {
        compile_via_cache(state, req, Some(&state.batch_slots), req_id)
    });

    // ORDERING: Relaxed — per-record outcome statistics, here and in the
    // loop below.
    state
        .batch_records
        .fetch_add(results.len() as u64, Ordering::Relaxed);
    let mut body = String::new();
    let mut errors = 0usize;
    let mut outcomes = [0usize; 5]; // memory, disk, miss, coalesced, bypass
    for (record, ok, outcome, _trace) in &results {
        body.push_str(record);
        if *ok {
            state.compile_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            state.compile_errors.fetch_add(1, Ordering::Relaxed);
            errors += 1;
        }
        let slot = match *outcome {
            OUTCOME_MEMORY => 0,
            OUTCOME_DISK => 1,
            OUTCOME_MISS => 2,
            OUTCOME_COALESCED => 3,
            _ => 4,
        };
        outcomes[slot] += 1;
    }
    let tally = format!(
        "memory={} disk={} miss={} coalesced={} bypass={}",
        outcomes[0], outcomes[1], outcomes[2], outcomes[3], outcomes[4]
    );
    // Per-line status lives in the records (exactly like an `oneqc` run
    // with failing files); the HTTP status says the batch was processed.
    let headers: Vec<(&str, String)> = vec![
        ("X-Oneqd-Cache", tally.clone()),
        ("X-Oneqd-Batch-Records", results.len().to_string()),
        ("X-Oneqd-Batch-Errors", errors.to_string()),
        rid(),
    ];
    let bytes = render(200, &headers, &body, conn);
    let handler = HandlerTrace {
        status: 200,
        outcome: tally,
        spans: Vec::new(),
    };
    (bytes, handler)
}

/// Upper bound on bytes discarded for an oversized request; a client
/// claiming more than this is not worth waiting for.
const DRAIN_CAP: usize = 16 * 1024 * 1024;

/// Renders a complete JSON response to bytes (the same `write_response`
/// framing the thread-per-connection core used, so responses stay
/// byte-identical). Writing into a `Vec` cannot fail.
fn render(status: u16, extra: &[(&str, String)], body: &str, conn: Connection) -> Vec<u8> {
    render_with(status, "application/json", extra, body, conn)
}

/// [`render`] with an explicit content type — `/v1/metrics` serves the
/// Prometheus text exposition format, everything else JSON.
fn render_with(
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &str,
    conn: Connection,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 256);
    write_response(&mut out, status, content_type, extra, body.as_bytes(), conn)
        .expect("rendering to a Vec cannot fail");
    out
}

/// Renders the standard JSON error envelope.
fn render_error(status: u16, message: &str, extra: &[(&str, String)], conn: Connection) -> Vec<u8> {
    let body = format!(
        "{{\"status\": \"error\", \"error\": \"{}\"}}\n",
        json::escape(message)
    );
    render(status, extra, &body, conn)
}
