//! The `oneqd` server: the versioned `/v1` API, connection sessions, and
//! the accept loop.
//!
//! Routes (all JSON):
//!
//! | Route | Purpose |
//! |---|---|
//! | `POST /v1/compile` | compile an OpenQASM 2.0 body; knobs as query params |
//! | `POST /v1/compile-batch` | JSONL in, JSONL out; `oneqc`'s record path per line |
//! | `GET /v1/healthz`  | liveness probe |
//! | `GET /v1/stats`    | request + cache + coalescing counters |
//!
//! (The unversioned PR-4 shims — `/compile`, `/healthz`, `/stats` —
//! served their one promised migration release and are gone; they now
//! answer 404 like any other unknown path.)
//!
//! Connections are *sessions*: a handler reads requests off one socket
//! until the client sends `Connection: close`, the per-connection request
//! cap is reached, or the idle timeout expires between requests —
//! removing the per-request TCP setup constant that dominated `loadgen`'s
//! p50 under `Connection: close`.
//!
//! `/v1/compile` responses are byte-identical to `oneqc`'s JSONL records
//! (one record + `\n`) for the same source and config, and — unless the
//! request bypasses — are served through the tiered content-addressed
//! cache ([`TieredCache`]: in-memory LRU, then the optional disk spill
//! tier) behind a [`SingleFlight`] coalescing layer, with the outcome
//! exposed in an `X-Oneqd-Cache: memory|disk|miss|coalesced|bypass`
//! header.
//!
//! The accept loop is poll-based (non-blocking listener + short sleep)
//! so it can observe a shutdown flag between accepts; accepted
//! connections are handed to a bounded [`WorkerPool`], whose drop joins
//! the workers after draining in-flight requests — that is the whole
//! graceful-shutdown story.

use crate::cache::{sha256, FlightRole, SingleFlight, Tier, TieredCache};
use crate::http::{read_request, write_response, Connection, Request, RequestError};
use crate::json::{self, ObjWriter};
use crate::pool::{run_indexed, WorkerPool};
use crate::request::CompileRequest;
use crate::spill::{SpillConfig, SpillTier};
use std::io::{self, BufRead as _, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tunables for a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded backlog of accepted-but-unhandled connections; a full
    /// backlog blocks the acceptor (backpressure), it never drops.
    pub backlog: usize,
    /// Total cached compile responses.
    pub cache_capacity: usize,
    /// Mutex stripes in the cache.
    pub cache_shards: usize,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Per-connection read/write timeout while inside one exchange.
    pub io_timeout: Duration,
    /// Requests served on one connection before the server closes it
    /// (`Connection: close` on the final response). Bounds how long one
    /// client can monopolize a worker.
    pub keep_alive_requests: usize,
    /// How long a kept-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Upper bound on concurrent batch-line compiles — per request *and*
    /// globally (a shared semaphore budget, so N simultaneous
    /// `/v1/compile-batch` requests still run at most this many compiles
    /// at once). Batches use scoped threads, not pool workers, so a
    /// batch cannot deadlock the connection pool.
    pub batch_jobs: usize,
    /// Directory for the persistent disk spill tier (`oneqd
    /// --cache-dir`). `None` (the default) runs memory-only, exactly the
    /// pre-spill behavior.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget for the spill directory (`oneqd --cache-disk-bytes`);
    /// ignored without `cache_dir`.
    pub cache_disk_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let parallelism =
            std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        ServerConfig {
            workers: parallelism,
            backlog: 64,
            cache_capacity: 256,
            cache_shards: 8,
            max_body: 4 * 1024 * 1024,
            io_timeout: Duration::from_secs(10),
            keep_alive_requests: 256,
            idle_timeout: Duration::from_secs(5),
            batch_jobs: parallelism,
            cache_dir: None,
            cache_disk_bytes: 256 * 1024 * 1024,
        }
    }
}

/// A minimal counting semaphore (std has none): the global budget of
/// concurrent batch-compile slots. Each `/v1/compile-batch` request
/// spawns its own scoped threads, so without a *shared* budget N
/// concurrent batches would run `N × batch_jobs` compiles at once and
/// oversubscribe every core; with it, total batch compile concurrency is
/// `batch_jobs` regardless of how many batches are in flight.
struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(permits.max(1)),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) -> SemaphoreGuard<'_> {
        let mut permits = self.permits.lock().expect("semaphore poisoned");
        while *permits == 0 {
            permits = self.cv.wait(permits).expect("semaphore poisoned");
        }
        *permits -= 1;
        SemaphoreGuard(self)
    }
}

struct SemaphoreGuard<'a>(&'a Semaphore);

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        *self.0.permits.lock().expect("semaphore poisoned") += 1;
        self.0.cv.notify_one();
    }
}

/// Shared request/cache accounting, surfaced through `GET /v1/stats`.
pub struct ServiceState {
    started: Instant,
    /// The tiered compile cache (memory LRU + optional disk spill).
    pub cache: TieredCache,
    /// The coalescing layer in front of the cache.
    pub flights: SingleFlight,
    batch_slots: Semaphore,
    connections: AtomicU64,
    requests: AtomicU64,
    healthz_requests: AtomicU64,
    stats_requests: AtomicU64,
    compile_requests: AtomicU64,
    batch_requests: AtomicU64,
    batch_records: AtomicU64,
    compile_ok: AtomicU64,
    compile_errors: AtomicU64,
    compile_executions: AtomicU64,
    http_errors: AtomicU64,
    workers: usize,
}

impl ServiceState {
    /// Fallible because opening the spill tier can fail: the directory
    /// may be unwritable or flocked by another daemon.
    fn new(config: &ServerConfig) -> io::Result<ServiceState> {
        let disk = match &config.cache_dir {
            Some(dir) => {
                let mut spill = SpillConfig::new(dir);
                spill.max_bytes = config.cache_disk_bytes;
                Some(SpillTier::open(spill)?)
            }
            None => None,
        };
        Ok(ServiceState {
            started: Instant::now(),
            cache: TieredCache::new(config.cache_capacity, config.cache_shards, disk),
            flights: SingleFlight::new(),
            batch_slots: Semaphore::new(config.batch_jobs),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            healthz_requests: AtomicU64::new(0),
            stats_requests: AtomicU64::new(0),
            compile_requests: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            batch_records: AtomicU64::new(0),
            compile_ok: AtomicU64::new(0),
            compile_errors: AtomicU64::new(0),
            compile_executions: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            workers: config.workers.max(1),
        })
    }

    /// Compiles actually executed (cache misses + bypasses); the
    /// difference against `compile_requests + batch_records` is the work
    /// the cache and the single-flight layer saved.
    pub fn compile_executions(&self) -> u64 {
        self.compile_executions.load(Ordering::Relaxed)
    }

    /// Renders the `/v1/stats` body (`oneqd-stats/v3`): flat request
    /// counters, then a nested `cache` object with per-tier blocks —
    /// `memory` always, `disk` carrying its counters when a spill tier
    /// is attached (`"enabled": false` otherwise).
    pub fn stats_json(&self) -> String {
        let memory = self.cache.memory_stats();
        let mut mem = ObjWriter::new();
        mem.field_u64("hits", memory.hits)
            .field_u64("misses", memory.misses)
            .field_u64("evictions", memory.evictions)
            .field_u64("entries", memory.entries as u64)
            .field_u64("capacity", memory.capacity as u64)
            .field_u64("shards", memory.shards as u64);

        let mut disk = ObjWriter::new();
        match self.cache.disk_stats() {
            Some(spill) => {
                disk.field_bool("enabled", true)
                    .field_u64("hits", spill.hits)
                    .field_u64("appends", spill.appends)
                    .field_u64("entries", spill.entries as u64)
                    .field_u64("segments", spill.segments as u64)
                    .field_u64("live_bytes", spill.live_bytes)
                    .field_u64("dead_bytes", spill.dead_bytes)
                    .field_u64("capacity_bytes", spill.capacity_bytes)
                    .field_u64("evicted_segments", spill.evicted_segments)
                    .field_u64("compactions", spill.compactions)
                    .field_u64("crc_dropped", spill.crc_dropped)
                    .field_u64("recovered_records", spill.recovered_records)
                    .field_u64("truncated_tails", spill.truncated_tails);
            }
            None => {
                disk.field_bool("enabled", false);
            }
        }

        let mut cache = ObjWriter::new();
        cache
            .field_u64("fills", self.cache.fills())
            .field_raw("memory", &mem.finish())
            .field_raw("disk", &disk.finish());

        let mut out = ObjWriter::new();
        out.field_str("schema", "oneqd-stats/v3")
            .field_u64("uptime_ms", self.started.elapsed().as_millis() as u64)
            .field_u64("workers", self.workers as u64)
            .field_u64("connections", self.connections.load(Ordering::Relaxed))
            .field_u64("requests", self.requests.load(Ordering::Relaxed))
            .field_u64(
                "healthz_requests",
                self.healthz_requests.load(Ordering::Relaxed),
            )
            .field_u64(
                "stats_requests",
                self.stats_requests.load(Ordering::Relaxed),
            )
            .field_u64(
                "compile_requests",
                self.compile_requests.load(Ordering::Relaxed),
            )
            .field_u64(
                "batch_requests",
                self.batch_requests.load(Ordering::Relaxed),
            )
            .field_u64("batch_records", self.batch_records.load(Ordering::Relaxed))
            .field_u64("compile_ok", self.compile_ok.load(Ordering::Relaxed))
            .field_u64(
                "compile_errors",
                self.compile_errors.load(Ordering::Relaxed),
            )
            .field_u64(
                "compile_executions",
                self.compile_executions.load(Ordering::Relaxed),
            )
            .field_u64("coalesced", self.flights.coalesced())
            .field_u64("http_errors", self.http_errors.load(Ordering::Relaxed))
            .field_raw("cache", &cache.finish());
        let mut body = out.finish();
        body.push('\n');
        body
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    config: ServerConfig,
}

/// Handle to a server running on a background thread (test/loadgen use).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared counters (same data `/v1/stats` reports).
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Requests shutdown and joins the server thread.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::Relaxed);
        match self.thread.take() {
            Some(t) => t
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("server thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, or port 0 for an ephemeral
    /// port) and — when `config.cache_dir` is set — opens (locking,
    /// scanning, recovering) the disk spill tier.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServiceState::new(&config)?);
        Ok(Server {
            listener,
            state,
            config,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared counters.
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Runs the accept loop until `stop()` returns `true`, then drains
    /// the worker pool and returns. Poll cadence is ~10 ms, so shutdown
    /// latency is bounded by the slowest in-flight exchange (plus at most
    /// one idle-timeout wait), not by an accept call blocked forever:
    /// once `stop()` fires, the `draining` flag makes every live session
    /// answer its current request with `Connection: close` instead of
    /// serving out its keep-alive budget.
    pub fn run_until(self, stop: impl Fn() -> bool) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let pool = WorkerPool::new("oneqd-worker", self.config.workers, self.config.backlog);
        let draining = Arc::new(AtomicBool::new(false));
        while !stop() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    let config = self.config.clone();
                    let draining = Arc::clone(&draining);
                    pool.execute(move || handle_connection(stream, &state, &config, &draining));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Transient accept failures — a peer that RSTs before
                    // we accept (ECONNABORTED), fd exhaustion under a
                    // spike (EMFILE) — must not kill the daemon. Log,
                    // back off briefly, keep serving.
                    eprintln!("oneqd: accept failed (retrying): {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        draining.store(true, Ordering::Relaxed);
        drop(pool); // join workers; queued connections still get served
        Ok(())
    }

    /// Spawns the accept loop on a background thread and returns a
    /// handle exposing the bound address and a shutdown switch.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("oneqd-accept".to_string())
            .spawn(move || self.run_until(|| stop_flag.load(Ordering::Relaxed)))?;
        Ok(ServerHandle {
            addr,
            state,
            stop,
            thread: Some(thread),
        })
    }
}

/// Serves one connection as a session: requests are read off the socket
/// until the client asks to close, the request cap is reached, the idle
/// timeout expires, a framing error makes the stream unusable, or the
/// server starts `draining` (shutdown): then the in-flight request is
/// answered `Connection: close` and the session ends.
fn handle_connection(
    stream: TcpStream,
    state: &ServiceState,
    config: &ServerConfig,
    draining: &AtomicBool,
) {
    // The listener is non-blocking; put the accepted stream back into
    // blocking mode with explicit timeouts. TCP_NODELAY because a
    // keep-alive response must not wait out the client's delayed ACK in
    // Nagle's buffer.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(config.io_timeout));
    let _ = stream.set_write_timeout(Some(config.io_timeout));
    let _ = stream.set_nodelay(true);
    state.connections.fetch_add(1, Ordering::Relaxed);

    let mut reader = BufReader::new(stream);
    for served in 1..=config.keep_alive_requests.max(1) {
        // Shutdown stops the session *between* requests — but never
        // before the first one: a connection that made it out of the
        // accept backlog is owed one response (the backlog blocks
        // instead of dropping precisely so accepted work is served), and
        // the `keep` check below already answers it `Connection: close`.
        if served > 1 && draining.load(Ordering::Relaxed) {
            return;
        }
        if served > 1 {
            // Between requests the clock is the idle timeout. Wait for
            // the first byte of the next request under it (fill_buf
            // peeks without consuming), then hand the actual read back
            // to the in-exchange I/O timeout — a slow upload mid-request
            // must get the same budget a fresh connection would.
            let _ = reader.get_ref().set_read_timeout(Some(config.idle_timeout));
            match reader.fill_buf() {
                Ok([]) => return, // peer closed between requests
                Err(_) => return, // idle timeout (or transport error)
                Ok(_) => {}
            }
            let _ = reader.get_ref().set_read_timeout(Some(config.io_timeout));
        }
        let request = match read_request(&mut reader, config.max_body) {
            Ok(request) => request,
            Err(RequestError::Io(_)) => return, // peer done or idle-timed out
            Err(RequestError::Malformed(msg)) => {
                // Parse failures still count as requests, so `requests` is
                // reconcilable with `http_errors` + the per-route counters.
                // The stream position is unknown → the session must end.
                state.requests.fetch_add(1, Ordering::Relaxed);
                state.http_errors.fetch_add(1, Ordering::Relaxed);
                respond_error(reader.get_mut(), 400, &msg, Connection::Close);
                return;
            }
            Err(RequestError::BodyTooLarge(n)) => {
                state.requests.fetch_add(1, Ordering::Relaxed);
                state.http_errors.fetch_add(1, Ordering::Relaxed);
                // The oversized body was never read (the limit is checked
                // against Content-Length before buffering). Drain a
                // bounded amount so the 413 survives the close — sending
                // a response and closing with unread bytes queued in the
                // receive buffer triggers a TCP reset that would discard
                // it — then end the session: the remaining body bytes
                // would otherwise be parsed as the next request. The
                // drain goes through the session BufReader, not the raw
                // stream: the header read may already have pulled body
                // bytes into its buffer, and skipping them would both
                // stall the drain and throw off its byte accounting.
                drain_body(&mut reader, n);
                respond_error(
                    reader.get_mut(),
                    413,
                    &format!("body of {n} bytes exceeds limit"),
                    Connection::Close,
                );
                return;
            }
        };
        state.requests.fetch_add(1, Ordering::Relaxed);

        let keep = request.wants_keep_alive()
            && served < config.keep_alive_requests
            && !draining.load(Ordering::Relaxed);
        let conn = if keep {
            Connection::KeepAlive
        } else {
            Connection::Close
        };
        route(reader.get_mut(), state, config, &request, conn);
        if !keep {
            return;
        }
    }
}

/// Routes one parsed request over the `/v1` surface.
fn route(
    stream: &mut TcpStream,
    state: &ServiceState,
    config: &ServerConfig,
    request: &Request,
    conn: Connection,
) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => {
            state.healthz_requests.fetch_add(1, Ordering::Relaxed);
            respond(
                stream,
                200,
                &[],
                "{\"status\": \"ok\", \"service\": \"oneqd\", \"api\": \"v1\"}\n",
                conn,
            );
        }
        ("GET", "/v1/stats") => {
            state.stats_requests.fetch_add(1, Ordering::Relaxed);
            let body = state.stats_json();
            respond(stream, 200, &[], &body, conn);
        }
        ("POST", "/v1/compile") => handle_compile(stream, state, request, conn),
        ("POST", "/v1/compile-batch") => handle_batch(stream, state, config, request, conn),
        (_, "/v1/healthz" | "/v1/stats") => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_error_with(
                stream,
                405,
                "method not allowed",
                &[("Allow", "GET".to_string())],
                conn,
            );
        }
        (_, "/v1/compile" | "/v1/compile-batch") => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_error_with(
                stream,
                405,
                "method not allowed",
                &[("Allow", "POST".to_string())],
                conn,
            );
        }
        _ => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, 404, "no such endpoint", conn);
        }
    }
}

/// `X-Oneqd-Cache` label: served from the in-memory tier.
pub const OUTCOME_MEMORY: &str = "memory";
/// `X-Oneqd-Cache` label: served from the disk spill tier (and promoted
/// into memory).
pub const OUTCOME_DISK: &str = "disk";
/// `X-Oneqd-Cache` label: compiled fresh (and cached on success).
pub const OUTCOME_MISS: &str = "miss";
/// `X-Oneqd-Cache` label: served from a concurrent leader's in-flight
/// compile.
pub const OUTCOME_COALESCED: &str = "coalesced";
/// `X-Oneqd-Cache` label: cache skipped (`timings=1` or `bypass=1`).
pub const OUTCOME_BYPASS: &str = "bypass";

/// Serves one [`CompileRequest`] through cache + single-flight. Returns
/// `(record bytes incl. trailing newline, ok, outcome label)`. This is
/// the one path behind both `/v1/compile` and each `/v1/compile-batch`
/// line. `slots` is the global batch-compile budget (None on the single
/// route, whose concurrency is already bounded by the worker pool): a
/// permit is held only around an *actual* compile — cache hits and
/// coalesced followers must not pin the budget while doing no work.
fn compile_via_cache(
    state: &ServiceState,
    req: &CompileRequest,
    slots: Option<&Semaphore>,
) -> (Arc<str>, bool, &'static str) {
    let run = |state: &ServiceState| -> (Arc<str>, bool) {
        let _slot = slots.map(Semaphore::acquire);
        state.compile_executions.fetch_add(1, Ordering::Relaxed);
        let (record, ok) = req.record();
        (Arc::from(format!("{record}\n").as_str()), ok)
    };

    // Timed compiles are inherently non-deterministic and `bypass=1` is
    // an explicit opt-out: neither reads nor warms the cache.
    if !req.cacheable() {
        let (body, ok) = run(state);
        return (body, ok, OUTCOME_BYPASS);
    }

    let digest = sha256(req.fingerprint().as_bytes());
    if let Some((cached, tier)) = state.cache.get_digest(&digest) {
        return (cached, true, tier_label(tier));
    }
    match state.flights.join(digest) {
        FlightRole::Follower(Some((body, ok))) => (body, ok, OUTCOME_COALESCED),
        FlightRole::Follower(None) => {
            // The leader aborted without publishing — it hit a compile
            // error (error bytes are per-source, never shared) or it
            // panicked. Compile for ourselves rather than re-coalescing
            // into a failed key.
            let (body, ok) = run(state);
            if ok {
                state.cache.fill(digest, Arc::clone(&body));
            }
            (body, ok, OUTCOME_MISS)
        }
        FlightRole::Leader(leader) => {
            // Double-check: a previous leader may have filled the cache
            // between this thread's miss and its election. `peek` avoids
            // double-counting the request's one logical lookup in the
            // memory tier (a disk hit here still counts — it is one).
            if let Some((cached, tier)) = state.cache.peek_digest(&digest) {
                leader.publish(Arc::clone(&cached), true);
                return (cached, true, tier_label(tier));
            }
            let (body, ok) = run(state);
            if ok {
                // Error records are cheap to recompute and their spans
                // depend on pre-canonicalization bytes, so only successes
                // are cached — and only successes are published: two
                // sources can share a digest yet differ in raw bytes
                // (CRLF, trailing whitespace), so handing a follower the
                // leader's *error* bytes could break the byte-identity
                // contract for the follower's own source. Dropping the
                // guard aborts the flight and each follower recompiles
                // its own error record. The fill MUST precede `publish`
                // — see the exactly-once note on `SingleFlight`.
                state.cache.fill(digest, Arc::clone(&body));
                leader.publish(Arc::clone(&body), ok);
            } else {
                drop(leader);
            }
            (body, ok, OUTCOME_MISS)
        }
    }
}

/// The `X-Oneqd-Cache` token for a cache hit's tier.
fn tier_label(tier: Tier) -> &'static str {
    match tier {
        Tier::Memory => OUTCOME_MEMORY,
        Tier::Disk => OUTCOME_DISK,
    }
}

fn handle_compile(
    stream: &mut TcpStream,
    state: &ServiceState,
    request: &Request,
    conn: Connection,
) {
    state.compile_requests.fetch_add(1, Ordering::Relaxed);
    let source = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, 400, "request body is not UTF-8", conn);
            return;
        }
    };
    let req = match CompileRequest::from_query(&request.query, source) {
        Ok(req) => req,
        Err(msg) => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, 400, &msg, conn);
            return;
        }
    };

    let (body, ok, outcome) = compile_via_cache(state, &req, None);
    let counter = if ok {
        &state.compile_ok
    } else {
        &state.compile_errors
    };
    counter.fetch_add(1, Ordering::Relaxed);
    let status = if ok { 200 } else { 422 };
    let headers = vec![("X-Oneqd-Cache", outcome.to_string())];
    respond(stream, status, &headers, &body, conn);
}

fn handle_batch(
    stream: &mut TcpStream,
    state: &ServiceState,
    config: &ServerConfig,
    request: &Request,
    conn: Connection,
) {
    state.batch_requests.fetch_add(1, Ordering::Relaxed);
    let text = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, 400, "request body is not UTF-8", conn);
            return;
        }
    };
    // Parse every line up front: a malformed line is a framing error for
    // the whole request (nothing compiles), mirroring how a malformed
    // single request compiles nothing.
    let mut requests = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match CompileRequest::from_jsonl_line(line) {
            Ok(req) => requests.push(req),
            Err(msg) => {
                state.http_errors.fetch_add(1, Ordering::Relaxed);
                respond_error(stream, 400, &format!("batch line {}: {msg}", i + 1), conn);
                return;
            }
        }
    }
    if requests.is_empty() {
        state.http_errors.fetch_add(1, Ordering::Relaxed);
        respond_error(stream, 400, "batch body holds no request lines", conn);
        return;
    }

    // Fan the lines out over scoped worker threads (`run_indexed` — the
    // same pool shape `oneqc` batches with); results land in their input
    // slots, so the response preserves request order no matter which
    // line finishes first. Actual compiles draw on the *global* batch
    // budget (`state.batch_slots`, sized `batch_jobs`), so concurrent
    // batches share the compile slots instead of multiplying them.
    let jobs = config.batch_jobs.max(1);
    let results = run_indexed(jobs, &requests, |_, req| {
        compile_via_cache(state, req, Some(&state.batch_slots))
    });

    state
        .batch_records
        .fetch_add(results.len() as u64, Ordering::Relaxed);
    let mut body = String::new();
    let mut errors = 0usize;
    let mut outcomes = [0usize; 5]; // memory, disk, miss, coalesced, bypass
    for (record, ok, outcome) in &results {
        body.push_str(record);
        if *ok {
            state.compile_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            state.compile_errors.fetch_add(1, Ordering::Relaxed);
            errors += 1;
        }
        let slot = match *outcome {
            OUTCOME_MEMORY => 0,
            OUTCOME_DISK => 1,
            OUTCOME_MISS => 2,
            OUTCOME_COALESCED => 3,
            _ => 4,
        };
        outcomes[slot] += 1;
    }
    // Per-line status lives in the records (exactly like an `oneqc` run
    // with failing files); the HTTP status says the batch was processed.
    let headers: Vec<(&str, String)> = vec![
        (
            "X-Oneqd-Cache",
            format!(
                "memory={} disk={} miss={} coalesced={} bypass={}",
                outcomes[0], outcomes[1], outcomes[2], outcomes[3], outcomes[4]
            ),
        ),
        ("X-Oneqd-Batch-Records", results.len().to_string()),
        ("X-Oneqd-Batch-Errors", errors.to_string()),
    ];
    respond(stream, 200, &headers, &body, conn);
}

/// Upper bound on bytes discarded for an oversized request; a client
/// claiming more than this is not worth waiting for.
const DRAIN_CAP: usize = 16 * 1024 * 1024;

/// Reads and discards up to `declared` body bytes (capped) so the error
/// response survives the close. Takes the session `BufReader` so bytes
/// the header read already buffered are drained first. Bounded in time
/// as well as bytes: socket reads run under a short timeout, and any
/// error (including that timeout) stops the drain — the response is then
/// sent on a best-effort basis.
fn drain_body(reader: &mut BufReader<TcpStream>, declared: usize) {
    use std::io::Read as _;
    let old_timeout = reader.get_ref().read_timeout().ok().flatten();
    let _ = reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_millis(500)));
    let mut remaining = declared.min(DRAIN_CAP);
    let mut buf = [0u8; 8192];
    while remaining > 0 {
        let want = buf.len().min(remaining);
        match reader.read(&mut buf[..want]) {
            Ok(0) | Err(_) => break,
            Ok(n) => remaining -= n,
        }
    }
    let _ = reader.get_ref().set_read_timeout(old_timeout);
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    extra: &[(&str, String)],
    body: &str,
    conn: Connection,
) {
    let _ = write_response(
        stream,
        status,
        "application/json",
        extra,
        body.as_bytes(),
        conn,
    );
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str, conn: Connection) {
    respond_error_with(stream, status, message, &[], conn);
}

fn respond_error_with(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
    extra: &[(&str, String)],
    conn: Connection,
) {
    let body = format!(
        "{{\"status\": \"error\", \"error\": \"{}\"}}\n",
        json::escape(message)
    );
    respond(stream, status, extra, &body, conn);
}
