//! The `oneqd` server: routing, request accounting, and the accept loop.
//!
//! Three routes, all JSON:
//!
//! | Route | Purpose |
//! |---|---|
//! | `POST /compile` | compile an OpenQASM 2.0 body; knobs as query params |
//! | `GET /healthz`  | liveness probe |
//! | `GET /stats`    | request + cache counters |
//!
//! `/compile` responses are byte-identical to `oneqc`'s JSONL records
//! (one record + `\n`) for the same source and config, and — unless
//! `timings=1` — are served through the content-addressed
//! [`CompileCache`], with the outcome exposed in an `X-Oneqd-Cache:
//! hit|miss|bypass` header.
//!
//! The accept loop is poll-based (non-blocking listener + short sleep)
//! so it can observe a shutdown flag between accepts; accepted
//! connections are handed to a bounded [`WorkerPool`], whose drop joins
//! the workers after draining in-flight requests — that is the whole
//! graceful-shutdown story.

use crate::cache::{canonicalize_source, CompileCache};
use crate::compile::{compile_record, CompileConfig, GeometryChoice};
use crate::http::{read_request, write_response, Request, RequestError};
use crate::pool::WorkerPool;
use crate::{compile, json};
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunables for a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded backlog of accepted-but-unhandled connections; a full
    /// backlog blocks the acceptor (backpressure), it never drops.
    pub backlog: usize,
    /// Total cached `/compile` responses.
    pub cache_capacity: usize,
    /// Mutex stripes in the cache.
    pub cache_shards: usize,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
            backlog: 64,
            cache_capacity: 256,
            cache_shards: 8,
            max_body: 4 * 1024 * 1024,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// Shared request/cache accounting, surfaced through `GET /stats`.
pub struct ServiceState {
    started: Instant,
    /// The compile cache.
    pub cache: CompileCache,
    requests: AtomicU64,
    healthz_requests: AtomicU64,
    stats_requests: AtomicU64,
    compile_requests: AtomicU64,
    compile_ok: AtomicU64,
    compile_errors: AtomicU64,
    http_errors: AtomicU64,
    workers: usize,
}

impl ServiceState {
    fn new(config: &ServerConfig) -> ServiceState {
        ServiceState {
            started: Instant::now(),
            cache: CompileCache::new(config.cache_capacity, config.cache_shards),
            requests: AtomicU64::new(0),
            healthz_requests: AtomicU64::new(0),
            stats_requests: AtomicU64::new(0),
            compile_requests: AtomicU64::new(0),
            compile_ok: AtomicU64::new(0),
            compile_errors: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            workers: config.workers.max(1),
        }
    }

    /// Renders the `/stats` body (`oneqd-stats/v1`).
    pub fn stats_json(&self) -> String {
        let cache = self.cache.stats();
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"schema\": \"oneqd-stats/v1\", \"uptime_ms\": {}, \"workers\": {}, \
             \"requests\": {}, \"healthz_requests\": {}, \"stats_requests\": {}, \
             \"compile_requests\": {}, \"compile_ok\": {}, \"compile_errors\": {}, \
             \"http_errors\": {}, \"cache\": {{\"hits\": {}, \"misses\": {}, \
             \"evictions\": {}, \"entries\": {}, \"capacity\": {}, \"shards\": {}}}}}",
            self.started.elapsed().as_millis(),
            self.workers,
            self.requests.load(Ordering::Relaxed),
            self.healthz_requests.load(Ordering::Relaxed),
            self.stats_requests.load(Ordering::Relaxed),
            self.compile_requests.load(Ordering::Relaxed),
            self.compile_ok.load(Ordering::Relaxed),
            self.compile_errors.load(Ordering::Relaxed),
            self.http_errors.load(Ordering::Relaxed),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.entries,
            cache.capacity,
            cache.shards,
        );
        out.push('\n');
        out
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    config: ServerConfig,
}

/// Handle to a server running on a background thread (test/loadgen use).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared counters (same data `/stats` reports).
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Requests shutdown and joins the server thread.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::Relaxed);
        match self.thread.take() {
            Some(t) => t
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("server thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, or port 0 for an ephemeral
    /// port).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServiceState::new(&config));
        Ok(Server {
            listener,
            state,
            config,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared counters.
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Runs the accept loop until `stop()` returns `true`, then drains
    /// the worker pool and returns. Poll cadence is ~10 ms, so shutdown
    /// latency is bounded by the slowest in-flight compile, not by an
    /// accept call blocked forever.
    pub fn run_until(self, stop: impl Fn() -> bool) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let pool = WorkerPool::new("oneqd-worker", self.config.workers, self.config.backlog);
        while !stop() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    let max_body = self.config.max_body;
                    let io_timeout = self.config.io_timeout;
                    pool.execute(move || handle_connection(stream, &state, max_body, io_timeout));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Transient accept failures — a peer that RSTs before
                    // we accept (ECONNABORTED), fd exhaustion under a
                    // spike (EMFILE) — must not kill the daemon. Log,
                    // back off briefly, keep serving.
                    eprintln!("oneqd: accept failed (retrying): {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        drop(pool); // join workers; queued connections still get served
        Ok(())
    }

    /// Spawns the accept loop on a background thread and returns a
    /// handle exposing the bound address and a shutdown switch.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("oneqd-accept".to_string())
            .spawn(move || self.run_until(|| stop_flag.load(Ordering::Relaxed)))?;
        Ok(ServerHandle {
            addr,
            state,
            stop,
            thread: Some(thread),
        })
    }
}

/// Serves one connection: read one request, route it, write one
/// `Connection: close` response.
fn handle_connection(
    mut stream: TcpStream,
    state: &ServiceState,
    max_body: usize,
    io_timeout: Duration,
) {
    // The listener is non-blocking; put the accepted stream back into
    // blocking mode with explicit timeouts.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));

    let request = match read_request(&mut stream, max_body) {
        Ok(request) => request,
        Err(RequestError::Io(_)) => return, // peer vanished; nothing to say
        Err(RequestError::Malformed(msg)) => {
            // Parse failures still count as requests, so `requests` is
            // reconcilable with `http_errors` + the per-route counters.
            state.requests.fetch_add(1, Ordering::Relaxed);
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(&mut stream, 400, &msg);
            return;
        }
        Err(RequestError::BodyTooLarge(n)) => {
            state.requests.fetch_add(1, Ordering::Relaxed);
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            // Drain (bounded) what the client is still sending before
            // responding: closing with unread bytes queued in the receive
            // buffer triggers a TCP reset that would discard the 413
            // before the client reads it.
            drain_body(&mut stream, n);
            respond_error(
                &mut stream,
                413,
                &format!("body of {n} bytes exceeds limit"),
            );
            return;
        }
    };
    state.requests.fetch_add(1, Ordering::Relaxed);

    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            state.healthz_requests.fetch_add(1, Ordering::Relaxed);
            respond(
                &mut stream,
                200,
                &[],
                "{\"status\": \"ok\", \"service\": \"oneqd\"}\n",
            );
        }
        ("GET", "/stats") => {
            state.stats_requests.fetch_add(1, Ordering::Relaxed);
            let body = state.stats_json();
            respond(&mut stream, 200, &[], &body);
        }
        ("POST", "/compile") => handle_compile(&mut stream, state, &request),
        (_, "/healthz" | "/stats") => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_error_with(
                &mut stream,
                405,
                "method not allowed",
                &[("Allow", "GET".to_string())],
            );
        }
        (_, "/compile") => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_error_with(
                &mut stream,
                405,
                "method not allowed",
                &[("Allow", "POST".to_string())],
            );
        }
        _ => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(&mut stream, 404, "no such endpoint");
        }
    }
}

/// Parses `/compile` query parameters into a config + file label,
/// mirroring `oneqc`'s flag validation.
fn parse_compile_query(request: &Request) -> Result<(CompileConfig, String), String> {
    let mut side = None;
    let mut rows = None;
    let mut cols = None;
    let mut config = CompileConfig::default();
    let mut label = "request.qasm".to_string();
    for (name, value) in &request.query {
        match name.as_str() {
            "side" => side = Some(parse_dim(value, "side")?),
            "rows" => rows = Some(parse_dim(value, "rows")?),
            "cols" => cols = Some(parse_dim(value, "cols")?),
            "extension" => {
                config.extension = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&v| v >= 1)
                    .ok_or_else(|| format!("extension must be a positive number, got `{value}`"))?;
            }
            "resource" => {
                config.resource = compile::parse_resource(value)
                    .ok_or_else(|| format!("unknown resource kind `{value}`"))?;
            }
            "timings" => {
                config.timings = match value.as_str() {
                    "1" | "true" => true,
                    "0" | "false" => false,
                    other => return Err(format!("timings must be 0|1|true|false, got `{other}`")),
                };
            }
            "file" => label = value.clone(),
            other => return Err(format!("unknown query parameter `{other}`")),
        }
    }
    config.geometry = match (side, rows, cols) {
        (None, None, None) => GeometryChoice::Auto,
        (Some(s), None, None) => GeometryChoice::Square(s),
        (None, Some(r), Some(c)) => GeometryChoice::Rect(r, c),
        _ => return Err("use either side or both rows and cols".to_string()),
    };
    Ok((config, label))
}

fn parse_dim(value: &str, name: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .ok()
        .filter(|&v| v >= 1)
        .ok_or_else(|| format!("{name} must be a positive number, got `{value}`"))
}

fn handle_compile(stream: &mut TcpStream, state: &ServiceState, request: &Request) {
    state.compile_requests.fetch_add(1, Ordering::Relaxed);
    let (config, label) = match parse_compile_query(request) {
        Ok(parsed) => parsed,
        Err(msg) => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, 400, &msg);
            return;
        }
    };
    let source = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => {
            state.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_error(stream, 400, "request body is not UTF-8");
            return;
        }
    };

    // Timed compiles are inherently non-deterministic, so they bypass
    // the cache entirely (never read, never written).
    if config.timings {
        let (record, ok) = compile_record(&label, source, &config);
        finish_compile(stream, state, record + "\n", ok, "bypass");
        return;
    }

    // Cache key: config fingerprint × file label (it appears in the
    // response bytes) × canonicalized source. The label's length prefix
    // keeps the concatenation injective.
    let key = format!(
        "{}\n{}:{label}\n{}",
        config.fingerprint(),
        label.len(),
        canonicalize_source(source)
    );
    if let Some(cached) = state.cache.get(&key) {
        state.compile_ok.fetch_add(1, Ordering::Relaxed);
        respond(
            stream,
            200,
            &[("X-Oneqd-Cache", "hit".to_string())],
            &cached,
        );
        return;
    }
    let (record, ok) = compile_record(&label, source, &config);
    let body = record + "\n";
    if ok {
        // Error records are cheap to recompute and their spans depend on
        // pre-canonicalization bytes, so only successes are cached.
        state.cache.insert(&key, Arc::from(body.as_str()));
    }
    finish_compile(stream, state, body, ok, "miss");
}

fn finish_compile(
    stream: &mut TcpStream,
    state: &ServiceState,
    body: String,
    ok: bool,
    cache_outcome: &str,
) {
    let counter = if ok {
        &state.compile_ok
    } else {
        &state.compile_errors
    };
    counter.fetch_add(1, Ordering::Relaxed);
    let status = if ok { 200 } else { 422 };
    respond(
        stream,
        status,
        &[("X-Oneqd-Cache", cache_outcome.to_string())],
        &body,
    );
}

/// Upper bound on bytes discarded for an oversized request; a client
/// claiming more than this is not worth waiting for.
const DRAIN_CAP: usize = 16 * 1024 * 1024;

/// Reads and discards up to `declared` body bytes (capped) so the error
/// response survives the close. Bounded in time as well as bytes: reads
/// run under a short timeout, and any error (including that timeout)
/// stops the drain — the response is then sent on a best-effort basis.
fn drain_body(stream: &mut TcpStream, declared: usize) {
    use std::io::Read as _;
    let old_timeout = stream.read_timeout().ok().flatten();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut remaining = declared.min(DRAIN_CAP);
    let mut buf = [0u8; 8192];
    while remaining > 0 {
        let want = buf.len().min(remaining);
        match stream.read(&mut buf[..want]) {
            Ok(0) | Err(_) => break,
            Ok(n) => remaining -= n,
        }
    }
    let _ = stream.set_read_timeout(old_timeout);
}

fn respond(stream: &mut TcpStream, status: u16, extra: &[(&str, String)], body: &str) {
    let _ = write_response(stream, status, "application/json", extra, body.as_bytes());
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str) {
    respond_error_with(stream, status, message, &[]);
}

fn respond_error_with(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
    extra: &[(&str, String)],
) {
    let body = format!(
        "{{\"status\": \"error\", \"error\": \"{}\"}}\n",
        json::escape(message)
    );
    respond(stream, status, extra, &body);
}
