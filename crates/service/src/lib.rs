//! # oneq-service
//!
//! The serving layer over the OneQ pipeline: a std-only concurrent
//! compile service with a content-addressed result cache.
//!
//! The `oneqd` binary is a long-lived daemon that keeps the compiler hot
//! and amortizes work across requests:
//!
//! * a hand-rolled HTTP/1.1 server ([`http`], [`server`]) over
//!   `std::net::TcpListener` — no external dependencies, consistent with
//!   the workspace's vendored-offline policy;
//! * a bounded worker pool ([`pool`]) shared with the batch drivers;
//! * a sharded, mutex-striped, content-addressed LRU cache ([`cache`])
//!   keyed by a hand-written SHA-256 digest over canonicalized source
//!   bytes × compile config (entries hold the 32-byte digest, never the
//!   source);
//! * graceful shutdown on SIGTERM/ctrl-c ([`signal`]).
//!
//! The compile path itself ([`compile`]) and the JSON emission helpers
//! ([`json`]) are the *same modules* `oneqc` and the bench drivers use,
//! which is what makes the service's contract — `/compile` responses
//! byte-identical to `oneqc` JSONL records — hold by construction.
//!
//! # Example
//!
//! ```
//! use oneq_service::server::{Server, ServerConfig};
//! use std::time::Duration;
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let handle = server.spawn().unwrap();
//! let resp = oneq_service::http::request(
//!     handle.addr(),
//!     "GET",
//!     "/healthz",
//!     b"",
//!     Duration::from_secs(5),
//! )
//! .unwrap();
//! assert_eq!(resp.status, 200);
//! handle.shutdown().unwrap();
//! ```

pub mod cache;
pub mod compile;
pub mod corpus;
pub mod http;
pub mod json;
pub mod pool;
pub mod server;
pub mod signal;
