//! # oneq-service
//!
//! The serving layer over the OneQ pipeline: a std-only concurrent
//! compile service with a content-addressed result cache.
//!
//! The `oneqd` binary is a long-lived daemon serving a versioned `/v1`
//! API that keeps the compiler hot and amortizes work across requests:
//!
//! * a hand-rolled HTTP/1.1 server ([`http`], [`server`]) over
//!   `std::net::TcpListener` with persistent (keep-alive) connection
//!   sessions on both sides — no external dependencies, consistent with
//!   the workspace's vendored-offline policy;
//! * a readiness-driven connection core ([`poll`], [`conn`]): one event
//!   loop owns every socket via `poll(2)`, feeding nonblocking reads
//!   through the resumable [`http::RequestParser`], so open connections
//!   cost a file descriptor each — never a thread — and a slow-loris
//!   client is evicted by deadline instead of pinning a worker;
//! * one shared request model ([`request`]): the same
//!   [`request::CompileRequest`] is built from CLI flags (`oneqc`,
//!   `loadgen`, `sweep`), from `/v1/compile` query parameters, and from
//!   `/v1/compile-batch` JSONL lines, and its single `fingerprint`
//!   method feeds the cache key everywhere;
//! * a bounded worker pool ([`pool`]) shared with the batch drivers;
//! * a sharded, mutex-striped, content-addressed LRU cache ([`cache`])
//!   keyed by a hand-written SHA-256 digest over canonicalized source
//!   bytes × compile config (entries hold the 32-byte digest, never the
//!   source), fronted by a single-flight coalescing layer
//!   ([`cache::SingleFlight`]) so N racing misses on one key run one
//!   compile;
//! * an optional persistent disk tier behind the LRU
//!   ([`cache::TieredCache`], [`spill`], [`segment`]): an append-only,
//!   CRC-guarded record log that survives restarts (`oneqd
//!   --cache-dir`), so a warm restart answers previously-compiled
//!   sources from disk instead of recompiling — the on-disk format is
//!   specified in `docs/CACHE_FORMAT.md`;
//! * graceful shutdown on SIGTERM/ctrl-c ([`signal`]);
//! * end-to-end telemetry ([`telemetry`], built on the `oneq-obs` crate):
//!   every request carries an `X-Oneqd-Request-Id` (inbound or minted)
//!   and a span trace, latencies land in log-linear histograms, and one
//!   registry snapshot renders both `GET /v1/metrics` (Prometheus text
//!   exposition) and `GET /v1/stats` — the two surfaces cannot disagree.
//!
//! The crate-level architecture — the dependency DAG and the life of a
//! `/v1/compile` request through these layers — is documented in
//! `docs/ARCHITECTURE.md`.
//!
//! The compile path itself ([`compile`]) and the JSON emission helpers
//! ([`json`]) are the *same modules* `oneqc` and the bench drivers use,
//! which is what makes the service's contract — `/v1/compile` responses
//! byte-identical to `oneqc` JSONL records — hold by construction.
//!
//! # Example
//!
//! ```
//! use oneq_service::server::{Server, ServerConfig};
//! use std::time::Duration;
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let handle = server.spawn().unwrap();
//! // One keep-alive session, many exchanges.
//! let mut conn =
//!     oneq_service::http::ClientConn::connect(handle.addr(), Duration::from_secs(5)).unwrap();
//! let resp = conn.send("GET", "/v1/healthz", b"").unwrap();
//! assert_eq!(resp.status, 200);
//! let resp = conn.send("GET", "/v1/stats", b"").unwrap();
//! assert_eq!(resp.status, 200);
//! handle.shutdown().unwrap();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod compile;
pub mod conn;
pub mod corpus;
pub mod http;
pub mod json;
pub mod poll;
pub mod pool;
pub mod request;
pub mod segment;
pub mod server;
pub mod signal;
pub mod spill;
pub mod telemetry;
