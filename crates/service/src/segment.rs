//! The spill log's on-disk segment format: superblock, CRC-guarded
//! record framing, and the recovery scan.
//!
//! One segment file is a superblock followed by append-only records.
//! The byte-level layout is specified (and versioned) in
//! `docs/CACHE_FORMAT.md` — this module is the reference implementation
//! the spec is written against, and every constant here appears there by
//! name. The contract that matters for crash safety: records are
//! appended with a single `write(2)` each, so a torn write can only
//! produce a *truncated tail*, and [`scan`] stops cleanly at the first
//! record whose header, body, or CRC is incomplete or wrong — everything
//! before it is intact by construction (each record carries its own
//! CRC-32 over digest ‖ body).
//!
//! # Example
//!
//! ```
//! use oneq_service::segment::{scan, SegmentWriter};
//! let dir = std::env::temp_dir().join(format!("oneq-seg-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("seg-00000000.log");
//!
//! let mut writer = SegmentWriter::create(&path).unwrap();
//! let digest = [7u8; 32];
//! writer.append(&digest, b"{\"status\": \"ok\"}\n").unwrap();
//!
//! let outcome = scan(&path).unwrap();
//! assert_eq!(outcome.records.len(), 1);
//! assert_eq!(outcome.records[0].digest, digest);
//! assert!(!outcome.truncated);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes opening every segment file (8 bytes, ASCII).
pub const MAGIC: &[u8; 8] = b"ONEQSPIL";
/// Current format version; readers must reject anything else.
pub const VERSION: u8 = 1;
/// Superblock length: magic ‖ version ‖ 7 reserved zero bytes.
pub const SUPERBLOCK_LEN: u64 = 16;
/// Fixed record header length: body length (u32 LE) ‖ CRC-32 (u32 LE) ‖
/// 32-byte fingerprint digest.
pub const RECORD_HEADER_LEN: u64 = 40;

/// Total on-disk size of a record with a `body_len`-byte body.
pub fn record_size(body_len: usize) -> u64 {
    RECORD_HEADER_LEN + body_len as u64
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. Guards every
/// record: the checksum covers the 32-byte digest and the body, so a
/// record whose bytes rotted — or whose tail a crash tore off — can
/// never be served.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Renders one record (header + body) into a single buffer, so the
/// writer can hand it to the OS as one `write` call.
pub fn encode_record(digest: &[u8; 32], body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32 + body.len());
    payload.extend_from_slice(digest);
    payload.extend_from_slice(body);
    let crc = crc32(&payload);
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN as usize + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// One intact record found by [`scan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScannedRecord {
    /// The record's 32-byte fingerprint digest.
    pub digest: [u8; 32],
    /// Byte offset of the record *header* within the segment file.
    pub offset: u64,
    /// Body length in bytes.
    pub body_len: u32,
}

/// What a recovery [`scan`] found in one segment file.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Every intact record, in file order (later records supersede
    /// earlier ones for the same digest; the caller applies last-wins).
    pub records: Vec<ScannedRecord>,
    /// Offset one past the last intact record: the file's recoverable
    /// prefix. Appending may resume here after truncating to this length.
    pub valid_len: u64,
    /// The file's actual length on disk.
    pub file_len: u64,
    /// `true` when `file_len > valid_len`: a torn or corrupt tail was
    /// found (and ignored).
    pub truncated: bool,
}

/// Scans a segment file, tolerating a truncated or corrupt tail.
///
/// Returns an error only when the file cannot be read or its superblock
/// is not a version-[`VERSION`] `ONEQSPIL` block — a file that is not a
/// segment at all must not be silently treated as an empty one. Past the
/// superblock, any framing damage ends the scan at the last intact
/// record instead of failing.
pub fn scan(path: &Path) -> io::Result<ScanOutcome> {
    let bytes = std::fs::read(path)?;
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if bytes.len() < SUPERBLOCK_LEN as usize || &bytes[..8] != MAGIC {
        return Err(bad("not a spill segment (bad magic)"));
    }
    if bytes[8] != VERSION {
        return Err(bad(&format!(
            "unsupported spill segment version {}",
            bytes[8]
        )));
    }
    let file_len = bytes.len() as u64;
    let mut records = Vec::new();
    let mut pos = SUPERBLOCK_LEN as usize;
    // A missing header slice is a torn mid-header tail (or clean EOF
    // when pos == len); either way the scan stops there.
    while let Some(header) = bytes.get(pos..pos + RECORD_HEADER_LEN as usize) {
        let body_len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let payload_start = pos + 8;
        let Some(payload) = bytes.get(payload_start..payload_start + 32 + body_len) else {
            break; // torn mid-body
        };
        if crc32(payload) != crc {
            break; // corrupt record: trust nothing at or past it
        }
        records.push(ScannedRecord {
            digest: payload[..32].try_into().expect("32-byte digest"),
            offset: pos as u64,
            body_len: body_len as u32,
        });
        pos = payload_start + 32 + body_len;
    }
    let valid_len = pos as u64;
    Ok(ScanOutcome {
        records,
        valid_len,
        file_len,
        truncated: file_len > valid_len,
    })
}

/// Reads and verifies the record at `offset` (as located by a previous
/// [`scan`]) through a shared read handle. Returns the body bytes.
///
/// Verification is repeated on every read — the index only remembers
/// where a record *was* intact at startup; bytes that rotted since, or an
/// index slot gone stale across a compaction, must fail here, not get
/// served. The check covers the length, the CRC, and that the record
/// still belongs to `digest`.
pub fn read_record(
    file: &std::sync::Mutex<File>,
    offset: u64,
    body_len: u32,
    digest: &[u8; 32],
) -> io::Result<Vec<u8>> {
    let mut buf = vec![0u8; RECORD_HEADER_LEN as usize + body_len as usize];
    {
        let mut file = file.lock().expect("segment read handle poisoned");
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut buf)?;
    }
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let stored_len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if stored_len != body_len {
        return Err(bad("record length changed under the index"));
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if crc32(&buf[8..]) != crc {
        return Err(bad("record failed its CRC"));
    }
    if &buf[8..40] != digest {
        return Err(bad("record belongs to a different digest"));
    }
    Ok(buf.split_off(RECORD_HEADER_LEN as usize))
}

/// Appends records to one segment file. Each record leaves in a single
/// `write` call, so a crash can only tear the *tail* of the file — the
/// damage class [`scan`] is built to recover from.
pub struct SegmentWriter {
    file: File,
    len: u64,
}

impl SegmentWriter {
    /// Creates a fresh segment at `path` and writes its superblock.
    pub fn create(path: &Path) -> io::Result<SegmentWriter> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(path)?;
        let mut superblock = [0u8; SUPERBLOCK_LEN as usize];
        superblock[..8].copy_from_slice(MAGIC);
        superblock[8] = VERSION;
        file.write_all(&superblock)?;
        file.flush()?;
        Ok(SegmentWriter {
            file,
            len: SUPERBLOCK_LEN,
        })
    }

    /// Reopens an existing segment for appending, first truncating it to
    /// `valid_len` (the recoverable prefix a [`scan`] reported) so a torn
    /// tail from a previous crash is physically dropped before any new
    /// record lands after it.
    pub fn open_for_append(path: &Path, valid_len: u64) -> io::Result<SegmentWriter> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(SegmentWriter {
            file,
            len: valid_len,
        })
    }

    /// Appends one record; returns the offset its header landed at.
    pub fn append(&mut self, digest: &[u8; 32], body: &[u8]) -> io::Result<u64> {
        let record = encode_record(digest, body);
        let offset = self.len;
        self.file.write_all(&record)?;
        self.file.flush()?;
        self.len += record.len() as u64;
        Ok(offset)
    }

    /// Current file length (superblock + every appended record).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when no record has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len <= SUPERBLOCK_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oneq-segment-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The classic check value plus a couple of published vectors.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn write_then_scan_round_trips() {
        let dir = tempdir("roundtrip");
        let path = dir.join("seg-00000000.log");
        let mut writer = SegmentWriter::create(&path).unwrap();
        let bodies: Vec<(u8, &[u8])> = vec![(1, b"alpha\n"), (2, b""), (3, b"gamma record\n")];
        let mut offsets = Vec::new();
        for (tag, body) in &bodies {
            offsets.push(writer.append(&[*tag; 32], body).unwrap());
        }
        let outcome = scan(&path).unwrap();
        assert!(!outcome.truncated);
        assert_eq!(outcome.valid_len, outcome.file_len);
        assert_eq!(outcome.records.len(), bodies.len());
        let file = std::sync::Mutex::new(File::open(&path).unwrap());
        for ((record, offset), (tag, body)) in outcome.records.iter().zip(&offsets).zip(&bodies) {
            assert_eq!(record.offset, *offset);
            assert_eq!(record.digest, [*tag; 32]);
            let read = read_record(&file, record.offset, record.body_len, &record.digest).unwrap();
            assert_eq!(read, *body);
            assert!(
                read_record(&file, record.offset, record.body_len, &[0xaa; 32]).is_err(),
                "a digest mismatch is refused"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_tolerates_a_torn_tail_everywhere_it_can_tear() {
        let dir = tempdir("torn");
        let path = dir.join("seg-00000000.log");
        let mut writer = SegmentWriter::create(&path).unwrap();
        writer.append(&[1; 32], b"intact one\n").unwrap();
        writer.append(&[2; 32], b"intact two\n").unwrap();
        let intact_len = writer.len();
        drop(writer);
        let full = std::fs::read(&path).unwrap();

        // Tear at every byte position of a third record: mid-header,
        // mid-digest, mid-body. The two intact records must survive all
        // of them.
        let third = encode_record(&[3; 32], b"torn away\n");
        for cut in 1..third.len() {
            let mut bytes = full.clone();
            bytes.extend_from_slice(&third[..cut]);
            std::fs::write(&path, &bytes).unwrap();
            let outcome = scan(&path).unwrap();
            assert_eq!(outcome.records.len(), 2, "cut at {cut}");
            assert_eq!(outcome.valid_len, intact_len, "cut at {cut}");
            assert!(outcome.truncated, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_stops_at_a_corrupt_record() {
        let dir = tempdir("corrupt");
        let path = dir.join("seg-00000000.log");
        let mut writer = SegmentWriter::create(&path).unwrap();
        writer.append(&[1; 32], b"good\n").unwrap();
        let second_at = writer.append(&[2; 32], b"will rot\n").unwrap();
        writer.append(&[3; 32], b"shadowed by the rot\n").unwrap();
        drop(writer);
        // Flip one body byte of the middle record.
        let mut bytes = std::fs::read(&path).unwrap();
        let body_pos = second_at as usize + RECORD_HEADER_LEN as usize;
        bytes[body_pos] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let outcome = scan(&path).unwrap();
        assert_eq!(outcome.records.len(), 1, "nothing past the rot is trusted");
        assert_eq!(outcome.valid_len, second_at);
        assert!(outcome.truncated);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_rejects_bad_magic_and_versions() {
        let dir = tempdir("magic");
        let path = dir.join("seg-00000000.log");
        std::fs::write(&path, b"definitely not a segment file").unwrap();
        assert!(scan(&path).is_err());
        let mut superblock = [0u8; SUPERBLOCK_LEN as usize];
        superblock[..8].copy_from_slice(MAGIC);
        superblock[8] = VERSION + 1;
        std::fs::write(&path, superblock).unwrap();
        assert!(scan(&path).is_err(), "future versions are rejected");
        std::fs::write(&path, &superblock[..4]).unwrap();
        assert!(scan(&path).is_err(), "shorter than a superblock");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_for_append_truncates_the_torn_tail() {
        let dir = tempdir("reopen");
        let path = dir.join("seg-00000000.log");
        let mut writer = SegmentWriter::create(&path).unwrap();
        writer.append(&[1; 32], b"keep me\n").unwrap();
        drop(writer);
        // Simulate a torn write.
        {
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(&encode_record(&[9; 32], b"torn\n")[..7])
                .unwrap();
        }
        let outcome = scan(&path).unwrap();
        assert!(outcome.truncated);
        let mut writer = SegmentWriter::open_for_append(&path, outcome.valid_len).unwrap();
        writer.append(&[2; 32], b"after recovery\n").unwrap();
        drop(writer);
        let healed = scan(&path).unwrap();
        assert!(!healed.truncated, "tail was physically dropped");
        assert_eq!(healed.records.len(), 2);
        assert_eq!(healed.records[1].digest, [2; 32]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_size_matches_encoding() {
        for body in [&b""[..], b"x", b"a longer body with content\n"] {
            assert_eq!(
                encode_record(&[0; 32], body).len() as u64,
                record_size(body.len())
            );
        }
    }
}
