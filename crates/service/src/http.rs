//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! `oneqd` serves three fixed routes to trusted clients (CI, `loadgen`,
//! `curl`); it needs request-line + header + `Content-Length` body
//! parsing, percent-decoding for query strings, and `Connection: close`
//! responses — nothing more. Pulling in an HTTP stack would break the
//! workspace's vendored-offline policy, so this module implements exactly
//! that subset, with hard limits on line, header, and body sizes.
//!
//! [`request`] is the matching one-shot client used by `loadgen` and the
//! integration tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Upper bound on one request line or header line.
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 64;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length`-framed; no chunked encoding).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter named `name`, if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be served.
#[derive(Debug)]
pub enum RequestError {
    /// Transport failure (peer went away, timeout); no response owed.
    Io(std::io::Error),
    /// Malformed request → `400 Bad Request`.
    Malformed(String),
    /// Body larger than the server's limit → `413 Content Too Large`.
    BodyTooLarge(usize),
}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Reads one line (LF-terminated, CR stripped) with a length cap. EOF
/// before the terminator is a transport error, never a silently accepted
/// truncated line: a peer that dies mid-header must not have its partial
/// bytes parsed as a complete request.
fn read_line(reader: &mut impl BufRead) -> Result<String, RequestError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                return Err(RequestError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                )));
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(RequestError::Malformed("header line too long".into()));
                }
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| RequestError::Malformed("header line not UTF-8".into()))
}

/// Reads and parses one request from `stream`, enforcing `max_body`.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    if request_line.is_empty() {
        return Err(RequestError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "empty request",
        )));
    }
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(RequestError::Malformed("bad request line".into())),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported version {version}"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::Malformed("too many headers".into()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed("header without colon".into()));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(RequestError::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| RequestError::Malformed("bad content-length".into()))?,
    };
    if content_length > max_body {
        return Err(RequestError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path),
        query,
        headers,
        body,
    })
}

/// Decodes `name=value&…` with percent-decoding and `+` → space.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((n, v)) => (percent_decode(n), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Percent-decodes `s` (`%XX` → byte, `+` → space); invalid escapes pass
/// through literally, invalid UTF-8 is replaced.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b? {
        b @ b'0'..=b'9' => Some(b - b'0'),
        b @ b'a'..=b'f' => Some(b - b'a' + 10),
        b @ b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-encodes `s` for use inside a query value: unreserved
/// characters (RFC 3986) and `/` stay literal, everything else becomes
/// `%XX`.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' | b'/' => {
                out.push(b as char);
            }
            b => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    out
}

/// The reason phrase for the status codes this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` response.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        status_reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A parsed client-side response.
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One-shot HTTP client: opens a connection, sends `method target` with
/// `body`, reads the `Connection: close` response to EOF. Used by
/// `loadgen` and the integration tests.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_client_response(&raw)
}

fn parse_client_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("head not UTF-8"))?;
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("missing status line"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_decodes() {
        let q = parse_query("file=a%2Fb.qasm&side=12&flag&x=1+2");
        assert_eq!(
            q,
            vec![
                ("file".into(), "a/b.qasm".into()),
                ("side".into(), "12".into()),
                ("flag".into(), String::new()),
                ("x".into(), "1 2".into()),
            ]
        );
    }

    #[test]
    fn percent_roundtrip() {
        let s = "tests/fixtures/qasm/bv-16.qasm with space&=%";
        assert_eq!(percent_decode(&percent_encode(s)), s);
        assert_eq!(percent_decode("%zz%4"), "%zz%4", "bad escapes pass through");
    }

    #[test]
    fn client_response_parsing() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Type: application/json\r\nX-A: b\r\n\r\n{}";
        let resp = parse_client_response(raw).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.header("x-a"), Some("b"));
        assert_eq!(resp.body, b"{}");
    }

    #[test]
    fn write_response_is_well_formed() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            "application/json",
            &[("X-Oneqd-Cache", "hit".to_string())],
            b"{\"a\": 1}\n",
        )
        .unwrap();
        let resp = parse_client_response(&out).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-length"), Some("9"));
        assert_eq!(resp.header("x-oneqd-cache"), Some("hit"));
        assert_eq!(resp.body, b"{\"a\": 1}\n");
    }

    #[test]
    fn request_against_a_canned_server() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream, 1024).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/compile");
            assert_eq!(req.query_param("file"), Some("a b.qasm"));
            assert_eq!(req.body, b"hello");
            write_response(&mut stream, 200, "text/plain", &[], b"ok").unwrap();
        });
        let resp = request(
            addr,
            "POST",
            "/compile?file=a%20b.qasm",
            b"hello",
            Duration::from_secs(5),
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok");
    }

    #[test]
    fn truncated_requests_are_io_errors_not_parsed() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            match read_request(&mut stream, 1024) {
                Err(RequestError::Io(e)) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
                }
                other => panic!("expected Io(UnexpectedEof), got {other:?}"),
            }
        });
        {
            let mut client = TcpStream::connect(addr).unwrap();
            client
                .write_all(b"POST /compile HTTP/1.1\r\nContent-Le")
                .unwrap();
            // Dropping the stream closes the connection mid-header.
        }
        server.join().unwrap();
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            match read_request(&mut stream, 4) {
                Err(RequestError::BodyTooLarge(n)) => assert_eq!(n, 5),
                other => panic!("expected BodyTooLarge, got {other:?}"),
            }
        });
        let _ = request(addr, "POST", "/x", b"12345", Duration::from_secs(5));
        server.join().unwrap();
    }
}
