//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! `oneqd` serves a handful of fixed routes to trusted clients (CI,
//! `loadgen`, `curl`); it needs request-line + header + `Content-Length`
//! body parsing, percent-decoding for query strings, and persistent
//! (`Connection: keep-alive`) framing in both directions — nothing more.
//! Pulling in an HTTP stack would break the workspace's vendored-offline
//! policy, so this module implements exactly that subset, with hard
//! limits on line, header, and body sizes.
//!
//! Since the `/v1` redesign, connections are sessions: the server reads
//! many requests off one socket and the client side has a matching
//! reusable [`ClientConn`] that `loadgen` drives. The one-shot
//! [`request`] helper remains for tests and scripts; it opens a
//! connection, sends `Connection: close`, and reads one response.
//!
//! Since the readiness-loop rewrite the server never blocks on a socket,
//! so request parsing is *resumable*: [`RequestParser`] accepts bytes as
//! they arrive (in whatever chunks the kernel delivers) and yields
//! [`Parse::NeedMore`] until a complete `Content-Length`-framed request
//! has been assembled. The blocking [`read_request`] helper is a thin
//! loop over the same parser, so the two entrypoints cannot drift.
//!
//! Header *names* are matched case-insensitively (RFC 9110 §5.1), and so
//! are the connection-option tokens in `Connection` values (`Keep-Alive`
//! and `keep-alive` mean the same thing) — see [`has_connection_token`].

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Upper bound on one request line or header line.
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 64;
/// Upper bound on a response body the *client* side will buffer. The
/// server enforces its own `max_body` on requests; this is the symmetric
/// guard so a misbehaving endpoint declaring a huge `Content-Length`
/// cannot make `loadgen` or a test attempt an absurd allocation.
const MAX_CLIENT_BODY: usize = 64 * 1024 * 1024;
/// Bodies up to this size are copied into one buffer with their head so
/// the message leaves in a single write; larger bodies are written
/// separately rather than paying a full memcpy.
const COALESCE_WRITE_MAX: usize = 8 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length`-framed; no chunked encoding).
    pub body: Vec<u8>,
    /// `true` for an `HTTP/1.0` request (keep-alive must be opted into).
    pub http10: bool,
}

impl Request {
    /// First query parameter named `name`, if any.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Whether the client asked for (or defaults to) a persistent
    /// connection: HTTP/1.1 is keep-alive unless `Connection: close`;
    /// HTTP/1.0 is close unless `Connection: keep-alive`. Token matching
    /// is case-insensitive per RFC 9110.
    pub fn wants_keep_alive(&self) -> bool {
        let connection = self.header("connection");
        if self.http10 {
            connection.is_some_and(|v| has_connection_token(v, "keep-alive"))
        } else {
            !connection.is_some_and(|v| has_connection_token(v, "close"))
        }
    }
}

/// Case-insensitive lookup in a `(name, value)` header list. Stored names
/// are already lowercased by the parsers, but the lookup does not rely on
/// that invariant — a hand-built list in a test gets the same semantics.
fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// Whether a `Connection` header value contains `token` in its
/// comma-separated option list, ASCII-case-insensitively: `Keep-Alive`,
/// `keep-alive`, and `close, KEEP-ALIVE` all match `keep-alive`.
pub fn has_connection_token(value: &str, token: &str) -> bool {
    value
        .split(',')
        .any(|t| t.trim().eq_ignore_ascii_case(token))
}

/// Why a request could not be served.
#[derive(Debug)]
pub enum RequestError {
    /// Transport failure (peer went away, timeout); no response owed.
    Io(std::io::Error),
    /// Malformed request → `400 Bad Request`.
    Malformed(String),
    /// Body larger than the server's limit → `413 Content Too Large`.
    /// Raised from the `Content-Length` header alone, *before* any body
    /// byte is buffered.
    BodyTooLarge(usize),
}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Coarse classification of a transport failure, so callers can report
/// "the server was slow" separately from "the server hung up on us".
/// `loadgen`'s adversarial mode uses this to count timeouts and resets
/// as distinct outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFailureKind {
    /// The operation ran out of time (`TimedOut`, or `WouldBlock` — the
    /// kind Unix read timeouts surface as).
    Timeout,
    /// The peer dropped the connection: reset, aborted, broken pipe, or
    /// a clean-but-premature EOF.
    Reset,
    /// Any other I/O failure.
    Other,
}

/// Classifies an I/O error into an [`IoFailureKind`].
pub fn classify_io_error(e: &std::io::Error) -> IoFailureKind {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::TimedOut | ErrorKind::WouldBlock => IoFailureKind::Timeout,
        ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe
        | ErrorKind::UnexpectedEof => IoFailureKind::Reset,
        _ => IoFailureKind::Other,
    }
}

/// Outcome of feeding bytes to a [`RequestParser`].
#[derive(Debug)]
pub enum Parse {
    /// The bytes so far do not complete a request; feed more when they
    /// arrive.
    NeedMore,
    /// One complete request was assembled. Bytes past its end were left
    /// unconsumed (see the `consumed` count) — they belong to the next
    /// pipelined request.
    Request(Request),
}

/// Which part of the message the parser is currently assembling.
enum ParseState {
    /// Accumulating the request line.
    RequestLine,
    /// Accumulating header lines.
    Headers,
    /// Accumulating `Content-Length` body bytes.
    Body,
}

/// An incremental HTTP/1.1 request parser: feed it bytes in whatever
/// chunks the transport delivers and it yields a [`Request`] once the
/// `Content-Length`-framed message is complete.
///
/// This is the parser the readiness loop runs on nonblocking sockets —
/// it never pulls from a stream itself, so a peer that trickles one byte
/// at a time costs one buffered fd, not a blocked thread. The blocking
/// [`read_request`] is a loop over this same type, so both entrypoints
/// enforce identical limits (`MAX_LINE`, `MAX_HEADERS`, `max_body`) and
/// produce identical errors.
///
/// After yielding a request the parser resets itself, ready for the next
/// message on the same connection.
///
/// # Examples
///
/// ```
/// use oneq_service::http::{Parse, RequestParser};
///
/// let mut parser = RequestParser::new(1024);
/// // The request arrives split across two reads.
/// let first: &[u8] = b"POST /v1/compile HTTP/1.1\r\nContent-";
/// let (consumed, parse) = parser.feed(first);
/// assert_eq!(consumed, first.len());
/// assert!(matches!(parse.unwrap(), Parse::NeedMore));
///
/// let (_, parse) = parser.feed(b"Length: 5\r\n\r\nhello");
/// match parse.unwrap() {
///     Parse::Request(req) => {
///         assert_eq!(req.method, "POST");
///         assert_eq!(req.path, "/v1/compile");
///         assert_eq!(req.body, b"hello");
///     }
///     Parse::NeedMore => unreachable!("the request is complete"),
/// }
/// ```
pub struct RequestParser {
    max_body: usize,
    state: ParseState,
    /// The line being accumulated (request line or header line), without
    /// its terminator.
    line: Vec<u8>,
    method: String,
    target: String,
    http10: bool,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    /// Declared `Content-Length`; meaningful in `ParseState::Body`.
    need: usize,
    /// Whether any byte of the current request has been consumed — lets
    /// the server tell an idle keep-alive close (clean) from a peer that
    /// died mid-request.
    started: bool,
}

impl RequestParser {
    /// Creates a parser enforcing `max_body` on the declared
    /// `Content-Length` (checked before any body byte is buffered).
    pub fn new(max_body: usize) -> RequestParser {
        RequestParser {
            max_body,
            state: ParseState::RequestLine,
            line: Vec::with_capacity(128),
            method: String::new(),
            target: String::new(),
            http10: false,
            headers: Vec::new(),
            body: Vec::new(),
            need: 0,
            started: false,
        }
    }

    /// Whether the parser holds a partially assembled request. `false`
    /// between messages — at that point a peer disconnect is a normal
    /// end-of-session, not an error.
    pub fn mid_request(&self) -> bool {
        self.started
    }

    /// Feeds `bytes` to the parser. Always reports how many bytes were
    /// consumed — even on error, so the caller knows exactly where the
    /// stream position stands (the 413 drain path depends on the header
    /// bytes having been consumed). Unconsumed bytes after a complete
    /// request belong to the next message; feed them again.
    pub fn feed(&mut self, bytes: &[u8]) -> (usize, Result<Parse, RequestError>) {
        let mut used = 0;
        while used < bytes.len() {
            if matches!(self.state, ParseState::Body) {
                let take = (self.need - self.body.len()).min(bytes.len() - used);
                self.body.extend_from_slice(&bytes[used..used + take]);
                used += take;
                if self.body.len() == self.need {
                    return (used, Ok(Parse::Request(self.finish())));
                }
                break;
            }
            let byte = bytes[used];
            used += 1;
            self.started = true;
            if byte != b'\n' {
                self.line.push(byte);
                if self.line.len() > MAX_LINE {
                    return (
                        used,
                        Err(RequestError::Malformed("header line too long".into())),
                    );
                }
                continue;
            }
            match self.take_line() {
                Ok(None) => {}
                Ok(Some(request)) => return (used, Ok(Parse::Request(request))),
                Err(e) => return (used, Err(e)),
            }
        }
        (used, Ok(Parse::NeedMore))
    }

    /// Handles one completed line (terminator already consumed). Returns
    /// a request when the line completes a body-less message.
    fn take_line(&mut self) -> Result<Option<Request>, RequestError> {
        if self.line.last() == Some(&b'\r') {
            self.line.pop();
        }
        let line = String::from_utf8(std::mem::take(&mut self.line))
            .map_err(|_| RequestError::Malformed("header line not UTF-8".into()))?;
        match self.state {
            ParseState::RequestLine => {
                if line.is_empty() {
                    return Err(RequestError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "empty request",
                    )));
                }
                let mut parts = line.split(' ');
                let (method, target, version) =
                    match (parts.next(), parts.next(), parts.next(), parts.next()) {
                        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => {
                            (m, t, v)
                        }
                        _ => return Err(RequestError::Malformed("bad request line".into())),
                    };
                if !version.starts_with("HTTP/1.") {
                    return Err(RequestError::Malformed(format!(
                        "unsupported version {version}"
                    )));
                }
                self.http10 = version == "HTTP/1.0";
                self.method = method.to_string();
                self.target = target.to_string();
                self.state = ParseState::Headers;
                Ok(None)
            }
            ParseState::Headers => {
                if !line.is_empty() {
                    if self.headers.len() >= MAX_HEADERS {
                        return Err(RequestError::Malformed("too many headers".into()));
                    }
                    let Some((name, value)) = line.split_once(':') else {
                        return Err(RequestError::Malformed("header without colon".into()));
                    };
                    self.headers
                        .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
                    return Ok(None);
                }
                // Blank line: headers are complete.
                if header_lookup(&self.headers, "transfer-encoding").is_some() {
                    return Err(RequestError::Malformed(
                        "chunked transfer encoding is not supported".into(),
                    ));
                }
                let content_length = match header_lookup(&self.headers, "content-length") {
                    None => 0,
                    Some(v) => v
                        .parse::<usize>()
                        .map_err(|_| RequestError::Malformed("bad content-length".into()))?,
                };
                // Enforce the limit from the declared length alone — the
                // body is neither allocated nor read when the client
                // announces too much.
                if content_length > self.max_body {
                    return Err(RequestError::BodyTooLarge(content_length));
                }
                if content_length == 0 {
                    return Ok(Some(self.finish()));
                }
                self.need = content_length;
                self.body = Vec::with_capacity(content_length);
                self.state = ParseState::Body;
                Ok(None)
            }
            ParseState::Body => unreachable!("body bytes are not line-parsed"),
        }
    }

    /// Builds the finished [`Request`] and resets the parser for the next
    /// message on the connection.
    fn finish(&mut self) -> Request {
        let target = std::mem::take(&mut self.target);
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, parse_query(q)),
            None => (target.as_str(), Vec::new()),
        };
        let request = Request {
            method: std::mem::take(&mut self.method),
            path: percent_decode(path),
            query,
            headers: std::mem::take(&mut self.headers),
            body: std::mem::take(&mut self.body),
            http10: self.http10,
        };
        self.state = ParseState::RequestLine;
        self.http10 = false;
        self.need = 0;
        self.started = false;
        request
    }
}

/// Reads one line (LF-terminated, CR stripped) with a length cap. EOF
/// before the terminator is a transport error, never a silently accepted
/// truncated line: a peer that dies mid-header must not have its partial
/// bytes parsed as a complete request.
fn read_line(reader: &mut impl BufRead) -> Result<String, RequestError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                return Err(RequestError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                )));
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(RequestError::Malformed("header line too long".into()));
                }
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| RequestError::Malformed("header line not UTF-8".into()))
}

/// Reads and parses one request from `reader`, enforcing `max_body`.
///
/// Takes the session's persistent `BufRead` (not the raw stream): under
/// keep-alive, bytes of the *next* request may already sit in the buffer,
/// so the reader must outlive any single call. This is a blocking loop
/// over [`RequestParser`]: it fills the reader's buffer, feeds the bytes
/// to the parser, and consumes exactly what the parser used — bytes past
/// the request's end stay buffered for the next call.
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<Request, RequestError> {
    let mut parser = RequestParser::new(max_body);
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Err(RequestError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-line",
            )));
        }
        let (consumed, parse) = parser.feed(buf);
        reader.consume(consumed);
        if let Parse::Request(request) = parse? {
            return Ok(request);
        }
    }
}

/// Decodes `name=value&…` with percent-decoding and `+` → space.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((n, v)) => (percent_decode(n), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Percent-decodes `s` (`%XX` → byte, `+` → space); invalid escapes pass
/// through literally, invalid UTF-8 is replaced.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b? {
        b @ b'0'..=b'9' => Some(b - b'0'),
        b @ b'a'..=b'f' => Some(b - b'a' + 10),
        b @ b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-encodes `s` for use inside a query value: unreserved
/// characters (RFC 3986) and `/` stay literal, everything else becomes
/// `%XX`.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' | b'/' => {
                out.push(b as char);
            }
            b => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    out
}

/// The reason phrase for the status codes this service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        308 => "Permanent Redirect",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// What the response says about the connection's future.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connection {
    /// `Connection: keep-alive` — the peer may send another request.
    KeepAlive,
    /// `Connection: close` — this response is the last on the socket.
    Close,
}

/// Writes a complete response with explicit `Content-Length` framing and
/// the given `Connection` disposition.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    connection: Connection,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {}\r\n",
        status_reason(status),
        body.len(),
        match connection {
            Connection::KeepAlive => "keep-alive",
            Connection::Close => "close",
        }
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // Small responses go out as one write (one segment, one syscall);
    // large ones are written head-then-body so megabyte batch bodies are
    // not copied wholesale. Both sides of a connection set TCP_NODELAY,
    // so the two-write path cannot stall in Nagle's buffer against the
    // peer's delayed ACK.
    if body.len() <= COALESCE_WRITE_MAX {
        let mut message = head.into_bytes();
        message.extend_from_slice(body);
        stream.write_all(&message)?;
    } else {
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
    }
    stream.flush()
}

/// A parsed client-side response.
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Whether the server will keep the connection open after this
    /// response.
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| has_connection_token(v, "close"))
    }
}

/// Reads one `Content-Length`-framed response from `reader`. This is the
/// keep-alive-safe framing: it never reads to EOF, so the connection
/// stays usable for the next exchange.
pub fn read_client_response(reader: &mut impl BufRead) -> std::io::Result<ClientResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let status_line = match read_line(reader) {
        Ok(line) => line,
        Err(RequestError::Io(e)) => return Err(e),
        Err(_) => return Err(bad("bad status line")),
    };
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader) {
            Ok(line) => line,
            Err(RequestError::Io(e)) => return Err(e),
            Err(_) => return Err(bad("bad header line")),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("header without colon"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match header_lookup(&headers, "content-length") {
        None => 0,
        Some(v) => v.parse::<usize>().map_err(|_| bad("bad content-length"))?,
    };
    if content_length > MAX_CLIENT_BODY {
        return Err(bad("response body exceeds the client limit"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// A persistent client connection: one socket carrying many
/// request/response exchanges. `loadgen`'s keep-alive mode holds one of
/// these per worker; the integration tests drive interleaved hit/miss
/// sessions through it.
pub struct ClientConn {
    reader: BufReader<TcpStream>,
    peer: SocketAddr,
}

impl ClientConn {
    /// Connects to `addr` with `timeout` applied to the connect and to
    /// every subsequent read and write.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<ClientConn> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        // Request/response exchanges are latency-bound: never trade a
        // round trip for Nagle coalescing.
        stream.set_nodelay(true)?;
        Ok(ClientConn {
            reader: BufReader::new(stream),
            peer: addr,
        })
    }

    /// The address this connection was opened to.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Sends one request and reads its response, leaving the connection
    /// open for the next exchange (the request advertises
    /// `Connection: keep-alive`). If the server replies
    /// `Connection: close` the socket is spent; callers reconnect.
    pub fn send(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        self.send_with(method, target, &[], body, Connection::KeepAlive)
    }

    /// [`ClientConn::send`] with extra request headers (e.g. an
    /// `X-Oneqd-Request-Id` the caller wants echoed back).
    pub fn send_with_headers(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        self.send_with(method, target, headers, body, Connection::KeepAlive)
    }

    fn send_with(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &[u8],
        connection: Connection,
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\
             Connection: {}\r\n",
            self.peer,
            body.len(),
            match connection {
                Connection::KeepAlive => "keep-alive",
                Connection::Close => "close",
            }
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        // Same write-coalescing policy as `write_response`: one write
        // for small messages, head-then-body for large ones (the
        // connection has TCP_NODELAY, so two writes cannot stall).
        let stream = self.reader.get_mut();
        if body.len() <= COALESCE_WRITE_MAX {
            let mut message = head.into_bytes();
            message.extend_from_slice(body);
            stream.write_all(&message)?;
        } else {
            stream.write_all(head.as_bytes())?;
            stream.write_all(body)?;
        }
        stream.flush()?;
        read_client_response(&mut self.reader)
    }
}

/// One-shot HTTP client: opens a connection, sends `method target` with
/// `body` and `Connection: close`, reads the single response. Used by
/// scripts, `loadgen`'s close mode, and the integration tests.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut conn = ClientConn::connect(addr, timeout)?;
    conn.send_with(method, target, &[], body, Connection::Close)
}

/// [`request`] with extra request headers.
pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut conn = ClientConn::connect(addr, timeout)?;
    conn.send_with(method, target, headers, body, Connection::Close)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn query_parsing_decodes() {
        let q = parse_query("file=a%2Fb.qasm&side=12&flag&x=1+2");
        assert_eq!(
            q,
            vec![
                ("file".into(), "a/b.qasm".into()),
                ("side".into(), "12".into()),
                ("flag".into(), String::new()),
                ("x".into(), "1 2".into()),
            ]
        );
    }

    #[test]
    fn percent_roundtrip() {
        let s = "tests/fixtures/qasm/bv-16.qasm with space&=%";
        assert_eq!(percent_decode(&percent_encode(s)), s);
        assert_eq!(percent_decode("%zz%4"), "%zz%4", "bad escapes pass through");
    }

    fn parse_raw_request(raw: &[u8], max_body: usize) -> Result<Request, RequestError> {
        let mut reader = std::io::BufReader::new(raw);
        read_request(&mut reader, max_body)
    }

    #[test]
    fn mixed_case_header_names_are_matched() {
        // RFC 9110 §5.1: field names are case-insensitive. A client that
        // spells `Content-LENGTH` or `CONNECTION` must be framed exactly
        // like a lowercase one.
        let raw =
            b"POST /v1/compile HTTP/1.1\r\nContent-LENGTH: 5\r\nCONNECTION: ClOsE\r\n\r\nhello";
        let req = parse_raw_request(raw, 1024).expect("parse mixed-case request");
        assert_eq!(req.body, b"hello");
        assert_eq!(req.header("content-length"), Some("5"));
        assert_eq!(req.header("Content-Length"), Some("5"), "lookup side too");
        assert!(!req.wants_keep_alive(), "ClOsE value token is recognized");
    }

    #[test]
    fn mixed_case_transfer_encoding_is_still_rejected() {
        let raw = b"POST /x HTTP/1.1\r\nTransfer-ENCODING: chunked\r\n\r\n";
        assert!(matches!(
            parse_raw_request(raw, 1024),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn connection_token_matching_is_case_insensitive_and_listwise() {
        assert!(has_connection_token("Keep-Alive", "keep-alive"));
        assert!(has_connection_token("close, KEEP-ALIVE", "keep-alive"));
        assert!(has_connection_token(" close ", "close"));
        assert!(!has_connection_token("keep-alive-ish", "keep-alive"));
        assert!(!has_connection_token("", "close"));
    }

    #[test]
    fn keep_alive_defaults_follow_the_http_version() {
        let req = |line: &str| {
            parse_raw_request(format!("GET / {line}\r\n\r\n").as_bytes(), 0).expect("parse")
        };
        assert!(
            req("HTTP/1.1").wants_keep_alive(),
            "1.1 defaults to keep-alive"
        );
        assert!(!req("HTTP/1.0").wants_keep_alive(), "1.0 defaults to close");
        let raw = b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n";
        assert!(parse_raw_request(raw, 0).unwrap().wants_keep_alive());
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!parse_raw_request(raw, 0).unwrap().wants_keep_alive());
    }

    #[test]
    fn resumable_parser_survives_byte_at_a_time_delivery() {
        // The slow-loris arrival order: every byte in its own feed call.
        let raw = b"POST /v1/compile?file=a%20b.qasm HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut parser = RequestParser::new(1024);
        for (i, byte) in raw.iter().enumerate() {
            let (consumed, parse) = parser.feed(std::slice::from_ref(byte));
            assert_eq!(consumed, 1);
            match parse.expect("no error mid-request") {
                Parse::NeedMore => {
                    assert!(i < raw.len() - 1, "request must complete on the last byte");
                    assert!(parser.mid_request());
                }
                Parse::Request(req) => {
                    assert_eq!(i, raw.len() - 1);
                    assert_eq!(req.method, "POST");
                    assert_eq!(req.path, "/v1/compile");
                    assert_eq!(req.query_param("file"), Some("a b.qasm"));
                    assert_eq!(req.body, b"hello");
                    assert!(!parser.mid_request(), "parser reset after completion");
                }
            }
        }
    }

    #[test]
    fn resumable_parser_leaves_pipelined_bytes_unconsumed() {
        let raw = b"GET /v1/healthz HTTP/1.1\r\n\r\nGET /v1/stats HTTP/1.1\r\n\r\n";
        let mut parser = RequestParser::new(1024);
        let (consumed, parse) = parser.feed(raw);
        let Ok(Parse::Request(first)) = parse else {
            panic!("first request parses");
        };
        assert_eq!(first.path, "/v1/healthz");
        assert_eq!(consumed, 28, "stops exactly at the first request's end");
        let (rest, parse) = parser.feed(&raw[consumed..]);
        let Ok(Parse::Request(second)) = parse else {
            panic!("second request parses from the leftover bytes");
        };
        assert_eq!(second.path, "/v1/stats");
        assert_eq!(consumed + rest, raw.len());
    }

    #[test]
    fn resumable_parser_reports_consumed_bytes_on_error() {
        // BodyTooLarge fires at the end of headers; the consumed count
        // must cover the full head so a caller draining the body knows
        // the stream position.
        let raw: &[u8] = b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\nbody-bytes";
        let head_len = raw.len() - b"body-bytes".len();
        let mut parser = RequestParser::new(16);
        let (consumed, parse) = parser.feed(raw);
        assert!(matches!(parse, Err(RequestError::BodyTooLarge(9999))));
        assert_eq!(consumed, head_len, "exactly the head was consumed");
    }

    #[test]
    fn io_errors_classify_into_timeouts_and_resets() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            classify_io_error(&Error::new(ErrorKind::TimedOut, "t")),
            IoFailureKind::Timeout
        );
        assert_eq!(
            classify_io_error(&Error::new(ErrorKind::WouldBlock, "t")),
            IoFailureKind::Timeout,
            "unix read timeouts surface as WouldBlock"
        );
        for kind in [
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionAborted,
            ErrorKind::BrokenPipe,
            ErrorKind::UnexpectedEof,
        ] {
            assert_eq!(
                classify_io_error(&Error::new(kind, "r")),
                IoFailureKind::Reset
            );
        }
        assert_eq!(
            classify_io_error(&Error::new(ErrorKind::PermissionDenied, "o")),
            IoFailureKind::Other
        );
    }

    #[test]
    fn oversized_content_length_rejects_before_reading_a_body_byte() {
        // The body bytes are NOT in the input: if the parser tried to
        // buffer the declared length it would hit EOF and report Io
        // instead of BodyTooLarge.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        match parse_raw_request(raw, 1024) {
            Err(RequestError::BodyTooLarge(n)) => assert_eq!(n, 99_999_999),
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn client_response_parsing_is_content_length_framed() {
        // Trailing garbage after the framed body must NOT be consumed —
        // that is the property keep-alive depends on.
        let raw: &[u8] =
            b"HTTP/1.1 404 Not Found\r\nContent-Type: application/json\r\nContent-LENGTH: 2\r\nX-A: b\r\n\r\n{}NEXT";
        let mut reader = std::io::BufReader::new(raw);
        let resp = read_client_response(&mut reader).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.header("x-a"), Some("b"));
        assert_eq!(resp.header("X-A"), Some("b"));
        assert_eq!(resp.body, b"{}");
        let mut rest = Vec::new();
        std::io::Read::read_to_end(&mut reader, &mut rest).unwrap();
        assert_eq!(rest, b"NEXT", "bytes after the body stay in the reader");
    }

    #[test]
    fn write_response_is_well_formed() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            "application/json",
            &[("X-Oneqd-Cache", "hit".to_string())],
            b"{\"a\": 1}\n",
            Connection::KeepAlive,
        )
        .unwrap();
        let mut reader = std::io::BufReader::new(out.as_slice());
        let resp = read_client_response(&mut reader).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-length"), Some("9"));
        assert_eq!(resp.header("x-oneqd-cache"), Some("hit"));
        assert_eq!(resp.header("connection"), Some("keep-alive"));
        assert!(resp.keep_alive());
        assert_eq!(resp.body, b"{\"a\": 1}\n");

        let mut out = Vec::new();
        write_response(
            &mut out,
            400,
            "application/json",
            &[],
            b"",
            Connection::Close,
        )
        .unwrap();
        let mut reader = std::io::BufReader::new(out.as_slice());
        assert!(!read_client_response(&mut reader).unwrap().keep_alive());
    }

    #[test]
    fn request_against_a_canned_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            let req = read_request(&mut reader, 1024).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/compile");
            assert_eq!(req.query_param("file"), Some("a b.qasm"));
            assert_eq!(req.body, b"hello");
            assert!(!req.wants_keep_alive(), "one-shot client sends close");
            write_response(
                reader.get_mut(),
                200,
                "text/plain",
                &[],
                b"ok",
                Connection::Close,
            )
            .unwrap();
        });
        let resp = request(
            addr,
            "POST",
            "/compile?file=a%20b.qasm",
            b"hello",
            Duration::from_secs(5),
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok");
    }

    #[test]
    fn client_conn_carries_many_exchanges_on_one_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Exactly ONE accepted connection serves every request.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            for i in 0..3 {
                let req = read_request(&mut reader, 1024).unwrap();
                assert!(req.wants_keep_alive());
                let body = format!("echo-{i}:{}", String::from_utf8_lossy(&req.body));
                write_response(
                    reader.get_mut(),
                    200,
                    "text/plain",
                    &[],
                    body.as_bytes(),
                    Connection::KeepAlive,
                )
                .unwrap();
            }
        });
        let mut conn = ClientConn::connect(addr, Duration::from_secs(5)).unwrap();
        for i in 0..3 {
            let resp = conn
                .send("POST", "/echo", format!("req-{i}").as_bytes())
                .unwrap();
            assert_eq!(resp.status, 200);
            assert!(resp.keep_alive());
            assert_eq!(resp.body, format!("echo-{i}:req-{i}").into_bytes());
        }
        server.join().unwrap();
    }

    #[test]
    fn truncated_requests_are_io_errors_not_parsed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            match read_request(&mut reader, 1024) {
                Err(RequestError::Io(e)) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
                }
                other => panic!("expected Io(UnexpectedEof), got {other:?}"),
            }
        });
        {
            let mut client = TcpStream::connect(addr).unwrap();
            client
                .write_all(b"POST /compile HTTP/1.1\r\nContent-Le")
                .unwrap();
            // Dropping the stream closes the connection mid-header.
        }
        server.join().unwrap();
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            match read_request(&mut reader, 4) {
                Err(RequestError::BodyTooLarge(n)) => assert_eq!(n, 5),
                other => panic!("expected BodyTooLarge, got {other:?}"),
            }
        });
        let _ = request(addr, "POST", "/x", b"12345", Duration::from_secs(5));
        server.join().unwrap();
    }
}
