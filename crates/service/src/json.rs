//! Hand-rolled JSON emission helpers.
//!
//! The workspace has no serde: every JSON producer (`oneqc`'s JSONL
//! writer, `oneqd`'s responses, `sweep`'s and `loadgen`'s BENCH files)
//! formats records by hand. This module is the single implementation of
//! the two parts that are easy to get subtly wrong — string escaping and
//! `f64` formatting — so the producers cannot drift apart.

use std::fmt::Write as _;

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// and all control characters below U+0020). The surrounding quotes are
/// the caller's job, matching how the record format strings are written.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// JSON-escapes `s` into a fresh `String` (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Formats an `f64` as a JSON value. Finite values print in Rust's
/// shortest round-trip decimal form (always a valid JSON number);
/// non-finite values (`NaN`, `±inf`) have no JSON representation and
/// print as `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
    }

    #[test]
    fn escapes_named_control_chars() {
        assert_eq!(escape("a\nb\rc\td"), r"a\nb\rc\td");
    }

    #[test]
    fn escapes_other_control_chars_as_unicode() {
        assert_eq!(escape("\u{0}\u{1f}"), "\\u0000\\u001f");
        // U+0020 (space) and above pass through untouched.
        assert_eq!(escape(" ~\u{7f}é"), " ~\u{7f}é");
    }

    #[test]
    fn escape_into_appends() {
        let mut out = String::from("x");
        escape_into(&mut out, "\"");
        assert_eq!(out, "x\\\"");
    }

    #[test]
    fn finite_floats_round_trip() {
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(-0.5), "-0.5");
        let v = 0.1 + 0.2;
        assert_eq!(fmt_f64(v).parse::<f64>().unwrap(), v);
        // Display never uses exponent notation, so even huge values stay
        // valid JSON numbers and round-trip exactly.
        assert_eq!(fmt_f64(1e300).parse::<f64>().unwrap(), 1e300);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
    }
}
