//! Hand-rolled JSON emission helpers and a flat-object reader.
//!
//! The workspace has no serde: every JSON producer (`oneqc`'s JSONL
//! writer, `oneqd`'s responses, `sweep`'s and `loadgen`'s BENCH files)
//! formats records by hand. This module is the single implementation of
//! the parts that are easy to get subtly wrong — string escaping, `f64`
//! formatting, and (for the `/v1/compile-batch` JSONL request lines)
//! parsing one *flat* JSON object — so the producers cannot drift apart.

use std::fmt::Write as _;

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// and all control characters below U+0020). The surrounding quotes are
/// the caller's job, matching how the record format strings are written.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// JSON-escapes `s` into a fresh `String` (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Formats an `f64` as a JSON value. Finite values print in Rust's
/// shortest round-trip decimal form (always a valid JSON number);
/// non-finite values (`NaN`, `±inf`) have no JSON representation and
/// print as `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental writer for one JSON object: handles comma placement, key
/// quoting, and value escaping so deeply nested hand-emitted objects
/// (the `/v1/stats` body grew three levels in stats v3) cannot drift
/// into invalid JSON. The rendering matches the repo's hand-written
/// style exactly — `{"k": v, "k2": v2}` with a space after `:` and `,`.
///
/// # Example
///
/// ```
/// use oneq_service::json::ObjWriter;
/// let mut inner = ObjWriter::new();
/// inner.field_u64("hits", 3);
/// let mut out = ObjWriter::new();
/// out.field_str("schema", "demo/v1").field_raw("cache", &inner.finish());
/// assert_eq!(out.finish(), r#"{"schema": "demo/v1", "cache": {"hits": 3}}"#);
/// ```
#[derive(Debug)]
pub struct ObjWriter {
    out: String,
    needs_comma: bool,
}

impl Default for ObjWriter {
    fn default() -> Self {
        ObjWriter::new()
    }
}

impl ObjWriter {
    /// Starts an empty object.
    pub fn new() -> ObjWriter {
        ObjWriter {
            out: String::from("{"),
            needs_comma: false,
        }
    }

    fn key(&mut self, key: &str) -> &mut Self {
        if self.needs_comma {
            self.out.push_str(", ");
        }
        self.needs_comma = true;
        self.out.push('"');
        escape_into(&mut self.out, key);
        self.out.push_str("\": ");
        self
    }

    /// Appends `"key": value` with an unsigned integer value.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Appends `"key": value` with a `true`/`false` value.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Appends `"key": "value"` with the value JSON-escaped.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.out.push('"');
        escape_into(&mut self.out, value);
        self.out.push('"');
        self
    }

    /// Appends `"key": value` with `value` spliced in verbatim — for
    /// nesting an already-rendered object (another writer's
    /// [`finish`](ObjWriter::finish)) or a pre-formatted number.
    pub fn field_raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.out.push_str(value);
        self
    }

    /// Closes the object and returns its rendering.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Parses one *flat* JSON object (`{"k": v, ...}`) into `(key, value)`
/// pairs in source order. Values are returned as plain strings: string
/// literals are unescaped, numbers keep their literal spelling, booleans
/// become `"true"`/`"false"`. Nested objects/arrays and `null` are
/// rejected — the only consumer is the `/v1/compile-batch` request line,
/// whose schema is flat by design. Duplicate keys are rejected too, so a
/// request can never silently half-override itself.
pub fn parse_flat_object(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut p = Parser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut pairs: Vec<(String, String)> = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key `{key}`"));
            }
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.scalar()?;
            pairs.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err("expected `,` or `}` after value".to_string()),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after object".to_string());
    }
    Ok(pairs)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            _ => Err(format!("expected `{}`", want as char)),
        }
    }

    /// A JSON string literal, fully unescaped (including `\uXXXX` and
    /// UTF-16 surrogate pairs — QASM sources are plain ASCII, but the
    /// parser must not corrupt a label that is not).
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Consume one UTF-8 scalar at a time so multi-byte characters
            // pass through intact. Slicing the original &str is O(1) (a
            // boundary check, never a re-validation) — re-checking the
            // remaining bytes per character would make large `source`
            // strings quadratic.
            let rest = self
                .text
                .get(self.pos..)
                .ok_or("string not on a character boundary")?;
            let mut chars = rest.chars();
            let c = chars.next().ok_or("unterminated string")?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = chars.next().ok_or("unterminated escape")?;
                    self.pos += esc.len_utf8();
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require `\uXXXX` low half.
                                if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                    return Err("unpaired surrogate".to_string());
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?,
                            );
                        }
                        other => return Err(format!("unknown escape `\\{other}`")),
                    }
                }
                c if (c as u32) < 0x20 => return Err("raw control character in string".to_string()),
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.next().ok_or("truncated \\u escape")?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| "bad hex digit in \\u escape".to_string())?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    /// A scalar value: string, number, or boolean, rendered as a string.
    fn scalar(&mut self) -> Result<String, String> {
        match self.peek() {
            Some(b'"') => self.string(),
            Some(b'{') | Some(b'[') => Err("nested values are not supported".to_string()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => Err("null is not a supported value".to_string()),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let literal = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
                // Validate against the JSON number grammar itself —
                // f64::parse is laxer (it accepts `5.` and `1.e3`, which
                // JSON forbids).
                if !is_json_number(literal) {
                    return Err(format!("bad number `{literal}`"));
                }
                Ok(literal.to_string())
            }
            _ => Err("expected a value".to_string()),
        }
    }

    fn literal(&mut self, word: &str) -> Result<String, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(word.to_string())
        } else {
            Err(format!("expected `{word}`"))
        }
    }
}

/// RFC 8259 number grammar: `-? (0 | [1-9][0-9]*) frac? exp?` with
/// `frac = . [0-9]+` and `exp = [eE] [+-]? [0-9]+`.
fn is_json_number(s: &str) -> bool {
    let mut b = s.as_bytes();
    if let [b'-', rest @ ..] = b {
        b = rest;
    }
    // Integer part: `0` alone, or a non-zero digit run.
    b = match b {
        [b'0', rest @ ..] => rest,
        [b'1'..=b'9', ..] => {
            let n = b.iter().take_while(|c| c.is_ascii_digit()).count();
            &b[n..]
        }
        _ => return false,
    };
    if let [b'.', rest @ ..] = b {
        let n = rest.iter().take_while(|c| c.is_ascii_digit()).count();
        if n == 0 {
            return false;
        }
        b = &rest[n..];
    }
    if let [b'e' | b'E', rest @ ..] = b {
        let rest = match rest {
            [b'+' | b'-', r @ ..] => r,
            r => r,
        };
        let n = rest.iter().take_while(|c| c.is_ascii_digit()).count();
        if n == 0 {
            return false;
        }
        b = &rest[n..];
    }
    b.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
    }

    #[test]
    fn escapes_named_control_chars() {
        assert_eq!(escape("a\nb\rc\td"), r"a\nb\rc\td");
    }

    #[test]
    fn escapes_other_control_chars_as_unicode() {
        assert_eq!(escape("\u{0}\u{1f}"), "\\u0000\\u001f");
        // U+0020 (space) and above pass through untouched.
        assert_eq!(escape(" ~\u{7f}é"), " ~\u{7f}é");
    }

    #[test]
    fn escape_into_appends() {
        let mut out = String::from("x");
        escape_into(&mut out, "\"");
        assert_eq!(out, "x\\\"");
    }

    #[test]
    fn finite_floats_round_trip() {
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(-0.5), "-0.5");
        let v = 0.1 + 0.2;
        assert_eq!(fmt_f64(v).parse::<f64>().unwrap(), v);
        // Display never uses exponent notation, so even huge values stay
        // valid JSON numbers and round-trip exactly.
        assert_eq!(fmt_f64(1e300).parse::<f64>().unwrap(), 1e300);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn obj_writer_matches_the_handwritten_style() {
        assert_eq!(ObjWriter::new().finish(), "{}");
        let mut w = ObjWriter::new();
        w.field_str("schema", "x/v1")
            .field_u64("n", 7)
            .field_bool("on", true)
            .field_raw("nested", "{\"k\": 1}");
        assert_eq!(
            w.finish(),
            r#"{"schema": "x/v1", "n": 7, "on": true, "nested": {"k": 1}}"#
        );
        // Escaping runs on both keys and string values.
        let mut w = ObjWriter::new();
        w.field_str("a\"b", "line\nbreak");
        let rendered = w.finish();
        assert_eq!(rendered, "{\"a\\\"b\": \"line\\nbreak\"}");
        parse_flat_object(&rendered).expect("rendering is valid JSON");
    }

    #[test]
    fn flat_object_round_trips_through_escape() {
        let label = "a \"weird\"\\label\nwith\tcontrol\u{1}chars";
        let line = format!(
            "{{\"file\": \"{}\", \"side\": 12, \"timings\": true}}",
            escape(label)
        );
        let pairs = parse_flat_object(&line).unwrap();
        assert_eq!(
            pairs,
            vec![
                ("file".to_string(), label.to_string()),
                ("side".to_string(), "12".to_string()),
                ("timings".to_string(), "true".to_string()),
            ]
        );
    }

    #[test]
    fn flat_object_handles_unicode_escapes_and_empties() {
        assert_eq!(parse_flat_object("{}").unwrap(), vec![]);
        assert_eq!(parse_flat_object("  { }  ").unwrap(), vec![]);
        let pairs = parse_flat_object(r#"{"s": "\u00e9\ud83d\ude00/"}"#).unwrap();
        assert_eq!(pairs, vec![("s".to_string(), "é😀/".to_string())]);
        let pairs = parse_flat_object(r#"{"n": -1.5e3, "b": false}"#).unwrap();
        assert_eq!(pairs[0].1, "-1.5e3");
        assert_eq!(pairs[1].1, "false");
    }

    #[test]
    fn flat_object_rejects_malformed_input() {
        for bad in [
            "",
            "[]",
            "{",
            "{\"a\"}",
            "{\"a\": }",
            "{\"a\": 1,}",
            "{\"a\": 1} trailing",
            "{\"a\": {\"nested\": 1}}",
            "{\"a\": [1]}",
            "{\"a\": null}",
            "{\"a\": 1, \"a\": 2}",
            "{\"a\": \"unterminated}",
            "{\"a\": \"bad \\q escape\"}",
            "{\"a\": \"\\ud800 lonely\"}",
            "{\"a\": -.e8}",
            // f64::parse would take these; the JSON grammar must not.
            "{\"a\": 5.}",
            "{\"a\": 1.e3}",
            "{\"a\": .5}",
            "{\"a\": 01}",
            "{\"a\": 1e}",
            "{\"a\": -}",
        ] {
            assert!(parse_flat_object(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn json_number_grammar_accepts_valid_forms() {
        for good in [
            "0", "-0", "7", "123", "1.5", "-0.25", "2e8", "1.5E-3", "9e+2",
        ] {
            let line = format!("{{\"n\": {good}}}");
            assert_eq!(
                parse_flat_object(&line).unwrap(),
                vec![("n".to_string(), good.to_string())],
                "rejected: {good}"
            );
        }
    }
}
