//! Content-addressed compile cache: sharded, mutex-striped LRU.
//!
//! `oneqd` keys compiled responses by *content*, not by file name: the
//! address is a hand-written [`sha256`] digest of the
//! [`canonicalize_source`]d QASM bytes combined with the compile-config
//! fingerprint (and the response's file label, which is embedded in the
//! record bytes). Entries store only the 32-byte digest — never the
//! source — so resident key memory is bounded by `capacity × 32` no
//! matter how large the posted circuits are, and serving a wrong
//! circuit's metrics would require a SHA-256 collision. Digests route to
//! one of N mutex stripes by their leading bytes, so concurrent requests
//! only contend when they land on the same shard.
//!
//! Hit/miss/eviction counters are process-wide atomics surfaced through
//! `GET /v1/stats`. [`fnv1a_64`] is kept alongside as the cheap
//! non-cryptographic hash for callers that only need routing.
//!
//! [`SingleFlight`] is the coalescing layer *in front of* the cache: N
//! concurrent misses on one digest elect one leader that compiles while
//! the followers block on its result, so a thundering herd on a cold key
//! runs exactly one compile instead of N.
//!
//! [`TieredCache`] stacks the persistent disk tier
//! ([`SpillTier`]) *behind* the LRU: lookups go
//! memory → disk → (caller compiles), a disk hit is promoted into
//! memory, and a fill lands in memory immediately and on disk
//! write-behind.

use crate::spill::{SpillStats, SpillTier};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// FNV-1a, 64-bit: the classic offset-basis/prime pair. Tiny and fast;
/// for routing and fingerprinting only — it is not collision-resistant,
/// which is why the cache itself addresses by [`sha256`].
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A small hand-written SHA-256 (FIPS 180-4): the cache's content
/// address. ~40 lines of shifts and adds keeps the workspace free of an
/// external digest crate while making key collisions cryptographically
/// negligible.
pub fn sha256(bytes: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Padded message: data ‖ 0x80 ‖ zeros ‖ 64-bit big-endian bit length.
    let mut msg = bytes.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&((bytes.len() as u64) * 8).to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (hi, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *hi = hi.wrapping_add(v);
        }
    }
    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Canonicalizes QASM source for cache keying: CRLF → LF, trailing
/// horizontal whitespace stripped per line, and exactly one trailing
/// newline. Two sources with the same canonical form tokenize
/// identically under the OpenQASM 2.0 grammar (whitespace is
/// insignificant outside string literals, and the only accepted string
/// literal is the include path), so they compile to the same metrics.
/// The *original* bytes are still what gets compiled on a miss — the
/// canonical form exists only as the cache address.
pub fn canonicalize_source(source: &str) -> String {
    let mut out = String::with_capacity(source.len() + 1);
    for line in source.split('\n') {
        out.push_str(line.trim_end_matches([' ', '\t', '\r']));
        out.push('\n');
    }
    while out.ends_with("\n\n") {
        out.pop();
    }
    out
}

/// A point-in-time snapshot of the cache counters (for `/stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached body.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident (across all shards).
    pub entries: usize,
    /// Maximum resident entries (across all shards).
    pub capacity: usize,
    /// Number of mutex stripes.
    pub shards: usize,
}

struct Entry {
    digest: [u8; 32],
    value: Arc<str>,
}

/// One stripe: a digest-keyed LRU with the most recently used entry at
/// the back of the vec. Capacities are small (tens of entries per
/// shard), so the O(len) scan-and-rotate is cheaper than pointer-chasing
/// a list.
#[derive(Default)]
struct Shard {
    entries: Vec<Entry>,
}

/// The sharded LRU. All methods take `&self`; interior mutability is one
/// mutex per shard.
pub struct CompileCache {
    shards: Box<[Mutex<Shard>]>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CompileCache {
    /// A cache holding at most `capacity` entries striped over `shards`
    /// mutexes (both clamped to ≥ 1; per-shard capacity rounds up).
    pub fn new(capacity: usize, shards: usize) -> CompileCache {
        let shards = shards.max(1);
        let shard_capacity = capacity.max(1).div_ceil(shards);
        CompileCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Routes a digest to its stripe by the leading 8 bytes (SHA-256
    /// output is uniform, so any fixed slice balances the shards).
    fn shard_of(&self, digest: &[u8; 32]) -> &Mutex<Shard> {
        let lead = u64::from_be_bytes(digest[..8].try_into().expect("8-byte slice"));
        &self.shards[(lead as usize) % self.shards.len()]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        self.get_digest(&sha256(key.as_bytes()))
    }

    /// Digest-addressed lookup (the key was already hashed — e.g. to join
    /// a [`SingleFlight`]), refreshing recency on a hit.
    pub fn get_digest(&self, digest: &[u8; 32]) -> Option<Arc<str>> {
        // ORDERING: Relaxed — hit/miss are independent statistics counters;
        // entry visibility is ordered by the shard Mutex held here.
        let mut shard = self.shard_of(digest).lock().expect("cache shard poisoned");
        let pos = shard.entries.iter().position(|e| e.digest == *digest);
        match pos {
            Some(pos) => {
                let entry = shard.entries.remove(pos);
                let value = Arc::clone(&entry.value);
                shard.entries.push(entry);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Counter-free lookup: no hit/miss accounting, no recency refresh.
    /// Used by a freshly elected single-flight leader to double-check the
    /// cache (a previous leader may have filled it between this thread's
    /// miss and its election) without double-counting the request's one
    /// logical lookup.
    pub fn peek_digest(&self, digest: &[u8; 32]) -> Option<Arc<str>> {
        let shard = self.shard_of(digest).lock().expect("cache shard poisoned");
        shard
            .entries
            .iter()
            .find(|e| e.digest == *digest)
            .map(|e| Arc::clone(&e.value))
    }

    /// Inserts (or refreshes) `key → value`, evicting the least recently
    /// used entry of the target shard when it is full.
    pub fn insert(&self, key: &str, value: Arc<str>) {
        self.insert_digest(sha256(key.as_bytes()), value);
    }

    /// Digest-addressed insert.
    pub fn insert_digest(&self, digest: [u8; 32], value: Arc<str>) {
        let mut shard = self.shard_of(&digest).lock().expect("cache shard poisoned");
        if let Some(pos) = shard.entries.iter().position(|e| e.digest == digest) {
            // Two threads can race the same miss; the second insert just
            // refreshes recency.
            let mut entry = shard.entries.remove(pos);
            entry.value = value;
            shard.entries.push(entry);
            return;
        }
        shard.entries.push(Entry { digest, value });
        if shard.entries.len() > self.shard_capacity {
            shard.entries.remove(0);
            // ORDERING: Relaxed — eviction statistic; shard Mutex orders
            // the structural change itself.
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        // ORDERING: Relaxed — point-in-time statistics snapshot; slight
        // skew between the three loads is acceptable to readers.
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.shard_capacity * self.shards.len(),
            shards: self.shards.len(),
        }
    }
}

/// Which tier satisfied a [`TieredCache`] lookup — reported to clients
/// verbatim in the `X-Oneqd-Cache` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Served from the in-memory LRU.
    Memory,
    /// Served from the disk spill tier (and promoted into memory).
    Disk,
}

/// The two-level cache: the in-memory LRU in front, the persistent
/// [`SpillTier`] (optional — `oneqd --cache-dir`) behind it.
///
/// Lookup order is memory → disk; a disk hit is *promoted* (inserted
/// into the LRU) so a warm key pays the disk read once. Fills via
/// [`TieredCache::fill`] insert into memory synchronously and enqueue
/// the disk append write-behind, so the compile path never blocks on
/// I/O. Without a disk tier this degrades to exactly the PR-5 behavior.
pub struct TieredCache {
    memory: CompileCache,
    disk: Option<SpillTier>,
    fills: AtomicU64,
}

impl TieredCache {
    /// A tiered cache over an LRU of `capacity` entries × `shards`
    /// stripes, optionally backed by `disk`.
    pub fn new(capacity: usize, shards: usize, disk: Option<SpillTier>) -> TieredCache {
        TieredCache {
            memory: CompileCache::new(capacity, shards),
            disk,
            fills: AtomicU64::new(0),
        }
    }

    /// Looks `digest` up memory-first, then disk. A disk hit is promoted
    /// into the memory tier before returning.
    pub fn get_digest(&self, digest: &[u8; 32]) -> Option<(Arc<str>, Tier)> {
        if let Some(value) = self.memory.get_digest(digest) {
            return Some((value, Tier::Memory));
        }
        let value = self.disk.as_ref()?.get(digest)?;
        self.memory.insert_digest(*digest, Arc::clone(&value));
        Some((value, Tier::Disk))
    }

    /// Counter-free memory peek, then a disk read: the single-flight
    /// leader's double-check (see [`CompileCache::peek_digest`]). The
    /// memory tier's hit/miss counters stay untouched — the request's one
    /// logical lookup was already counted — but a disk hit still counts
    /// as a disk hit (it *is* one) and still promotes.
    pub fn peek_digest(&self, digest: &[u8; 32]) -> Option<(Arc<str>, Tier)> {
        if let Some(value) = self.memory.peek_digest(digest) {
            return Some((value, Tier::Memory));
        }
        let value = self.disk.as_ref()?.get(digest)?;
        self.memory.insert_digest(*digest, Arc::clone(&value));
        Some((value, Tier::Disk))
    }

    /// Fills `digest → value` after a compile: into memory now, onto
    /// disk write-behind.
    pub fn fill(&self, digest: [u8; 32], value: Arc<str>) {
        // ORDERING: Relaxed — fill statistic; the insert below publishes the
        // value under the shard Mutex.
        self.fills.fetch_add(1, Ordering::Relaxed);
        self.memory.insert_digest(digest, Arc::clone(&value));
        if let Some(disk) = &self.disk {
            disk.append(digest, value);
        }
    }

    /// Compile results written into the cache (both tiers fill from the
    /// same event, so one counter covers them).
    pub fn fills(&self) -> u64 {
        // ORDERING: Relaxed — statistics read with no dependent data.
        self.fills.load(Ordering::Relaxed)
    }

    /// The in-memory tier's counters.
    pub fn memory_stats(&self) -> CacheStats {
        self.memory.stats()
    }

    /// The disk tier's counters; `None` when running memory-only.
    pub fn disk_stats(&self) -> Option<SpillStats> {
        self.disk.as_ref().map(SpillTier::stats)
    }

    /// Blocks until every write-behind append so far is on disk. A no-op
    /// without a disk tier; tests and shutdown use this.
    pub fn flush_disk(&self) {
        if let Some(disk) = &self.disk {
            disk.flush();
        }
    }
}

/// The role [`SingleFlight::join`] hands back for a digest.
pub enum FlightRole<'a> {
    /// This thread compiles; it must call [`FlightLeader::publish`] (or
    /// drop the guard, which aborts the flight and wakes followers).
    Leader(FlightLeader<'a>),
    /// Another thread was already compiling this digest. `Some` carries
    /// its published `(body, ok)`; `None` means the leader aborted
    /// without publishing (it panicked) and the follower should compile
    /// for itself.
    Follower(Option<(Arc<str>, bool)>),
}

enum FlightState {
    Pending,
    Done(Arc<str>, bool),
    Aborted,
}

struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

/// Request coalescing in front of the cache: concurrent misses on one
/// digest elect a single leader; followers block until the leader
/// publishes and then return its bytes. The in-flight table holds only
/// keys currently being compiled, so it stays tiny (bounded by worker
/// count) and one mutex suffices.
///
/// Exactly-once protocol (the part that keeps a storm at one compile):
/// the leader must insert its result into the [`CompileCache`] *before*
/// calling [`FlightLeader::publish`] — publish removes the flight from
/// the table, and any request that missed the cache earlier will either
/// find the flight (and follow) or, finding neither, elect itself leader
/// and see the filled cache on its double-check
/// ([`CompileCache::peek_digest`]).
#[derive(Default)]
pub struct SingleFlight {
    inflight: Mutex<Vec<([u8; 32], Arc<Flight>)>>,
    coalesced: AtomicU64,
}

impl SingleFlight {
    /// An empty coalescing table.
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// Joins the flight for `digest`: the first caller becomes the
    /// leader, everyone else blocks until the leader publishes or aborts.
    pub fn join(&self, digest: [u8; 32]) -> FlightRole<'_> {
        let mut inflight = self.inflight.lock().expect("single-flight table poisoned");
        if let Some((_, flight)) = inflight.iter().find(|(d, _)| *d == digest) {
            let flight = Arc::clone(flight);
            drop(inflight);
            let mut state = flight.state.lock().expect("flight state poisoned");
            while matches!(*state, FlightState::Pending) {
                state = flight.cv.wait(state).expect("flight state poisoned");
            }
            return match &*state {
                FlightState::Done(body, ok) => {
                    // ORDERING: Relaxed — coalesce statistic; the result
                    // itself travels under the flight Mutex.
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    FlightRole::Follower(Some((Arc::clone(body), *ok)))
                }
                FlightState::Aborted => FlightRole::Follower(None),
                FlightState::Pending => unreachable!("wait loop exits only on a final state"),
            };
        }
        let flight = Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        });
        inflight.push((digest, Arc::clone(&flight)));
        FlightRole::Leader(FlightLeader {
            owner: self,
            digest,
            flight,
            published: false,
        })
    }

    /// Followers served from a leader's in-flight result so far.
    pub fn coalesced(&self) -> u64 {
        // ORDERING: Relaxed — statistics read with no dependent data.
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Digests currently being compiled (test/stats visibility).
    pub fn in_flight(&self) -> usize {
        self.inflight
            .lock()
            .expect("single-flight table poisoned")
            .len()
    }

    fn finish(&self, digest: &[u8; 32], flight: &Flight, state: FlightState) {
        let mut inflight = self.inflight.lock().expect("single-flight table poisoned");
        if let Some(pos) = inflight.iter().position(|(d, _)| d == digest) {
            inflight.swap_remove(pos);
        }
        drop(inflight);
        *flight.state.lock().expect("flight state poisoned") = state;
        flight.cv.notify_all();
    }
}

/// The leader's obligation: publish a result (or abort by dropping).
pub struct FlightLeader<'a> {
    owner: &'a SingleFlight,
    digest: [u8; 32],
    flight: Arc<Flight>,
    published: bool,
}

impl FlightLeader<'_> {
    /// Publishes the compiled `(body, ok)` to every follower and retires
    /// the flight. Call only *after* inserting a cacheable result into
    /// the cache — see the ordering note on [`SingleFlight`].
    pub fn publish(mut self, body: Arc<str>, ok: bool) {
        self.published = true;
        self.owner
            .finish(&self.digest, &self.flight, FlightState::Done(body, ok));
    }
}

impl Drop for FlightLeader<'_> {
    fn drop(&mut self) {
        // Panic safety: a leader that unwinds without publishing must not
        // strand its followers on the condvar forever.
        if !self.published {
            self.owner
                .finish(&self.digest, &self.flight, FlightState::Aborted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        fn hex(digest: [u8; 32]) -> String {
            digest.iter().map(|b| format!("{b:02x}")).collect()
        }
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // Two-block message (FIPS 180-4 example B.2).
        assert_eq!(
            hex(sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn canonicalization_normalizes_whitespace() {
        let a = "OPENQASM 2.0;\r\nqreg q[1];  \nh q[0];\t\r\n\n\n";
        let b = "OPENQASM 2.0;\nqreg q[1];\nh q[0];\n";
        assert_eq!(canonicalize_source(a), canonicalize_source(b));
        assert_eq!(canonicalize_source(b), b, "canonical form is a fixpoint");
        // Leading/interior whitespace is significant structure; keep it.
        assert_ne!(canonicalize_source("  h q;"), canonicalize_source("h q;"));
    }

    #[test]
    fn get_miss_then_hit() {
        let cache = CompileCache::new(8, 2);
        assert!(cache.get("k").is_none());
        cache.insert("k", arc("v"));
        assert_eq!(cache.get("k").as_deref(), Some("v"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Single shard so the eviction order is fully observable.
        let cache = CompileCache::new(2, 1);
        cache.insert("a", arc("1"));
        cache.insert("b", arc("2"));
        assert_eq!(cache.get("a").as_deref(), Some("1")); // refresh a
        cache.insert("c", arc("3")); // evicts b, the LRU entry
        assert!(cache.get("b").is_none());
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        assert_eq!(cache.get("c").as_deref(), Some("3"));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let cache = CompileCache::new(2, 1);
        cache.insert("a", arc("1"));
        cache.insert("b", arc("2"));
        cache.insert("a", arc("1'"));
        assert_eq!(cache.len(), 2);
        cache.insert("c", arc("3")); // b is now the LRU
        assert!(cache.get("b").is_none());
        assert_eq!(cache.get("a").as_deref(), Some("1'"));
    }

    #[test]
    fn striping_spreads_and_counts_globally() {
        let cache = CompileCache::new(64, 8);
        for i in 0..64 {
            cache.insert(&format!("key-{i}"), arc("v"));
        }
        assert!(cache.len() <= 64);
        assert!(cache.len() > 8, "keys spread over multiple shards");
        for i in 0..64 {
            let _ = cache.get(&format!("key-{i}"));
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 64);
        assert_eq!(stats.shards, 8);
        assert_eq!(stats.capacity, 64);
    }

    #[test]
    fn single_flight_coalesces_followers_deterministically() {
        let flights = SingleFlight::new();
        let digest = sha256(b"storm-key");
        let followers = 6usize;

        std::thread::scope(|scope| {
            let FlightRole::Leader(leader) = flights.join(digest) else {
                panic!("first join must lead");
            };
            assert_eq!(flights.in_flight(), 1);
            // Observing the flight's Arc strong count makes coalescing
            // deterministic instead of timing-dependent: one reference in
            // the table, one in the leader guard, one here, plus one per
            // follower that has found the flight. A follower that cloned
            // the Arc is guaranteed to observe the published state (the
            // wait loop re-checks under the same mutex publish takes).
            let flight = Arc::clone(&leader.flight);
            for _ in 0..followers {
                let flights = &flights;
                scope.spawn(move || match flights.join(digest) {
                    FlightRole::Follower(Some((body, ok))) => {
                        assert_eq!(&*body, "result");
                        assert!(ok);
                    }
                    _ => panic!("expected a published follower result"),
                });
            }
            while Arc::strong_count(&flight) < 3 + followers {
                std::thread::yield_now();
            }
            leader.publish(arc("result"), true);
        });
        assert_eq!(flights.in_flight(), 0);
        assert_eq!(
            flights.coalesced(),
            followers as u64,
            "every follower was served from the leader's flight"
        );
    }

    #[test]
    fn single_flight_aborted_leader_releases_followers() {
        let flights = SingleFlight::new();
        let digest = sha256(b"abort-key");
        let FlightRole::Leader(leader) = flights.join(digest) else {
            panic!("first join must lead");
        };
        std::thread::scope(|scope| {
            let follower = scope.spawn(|| flights.join(digest));
            // Give the follower a moment to block, then abort by drop.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(leader);
            match follower.join().expect("follower thread") {
                FlightRole::Follower(None) => {}
                FlightRole::Follower(Some(_)) => panic!("aborted flight published a result"),
                FlightRole::Leader(_) => panic!("follower joined a live flight"),
            }
        });
        assert_eq!(flights.in_flight(), 0);
        assert_eq!(flights.coalesced(), 0, "aborts are not coalesced serves");
        // The digest is free again: the next join leads.
        assert!(matches!(flights.join(digest), FlightRole::Leader(_)));
    }

    #[test]
    fn single_flight_distinct_digests_fly_independently() {
        let flights = SingleFlight::new();
        let a = sha256(b"a");
        let b = sha256(b"b");
        let FlightRole::Leader(la) = flights.join(a) else {
            panic!("lead a");
        };
        let FlightRole::Leader(lb) = flights.join(b) else {
            panic!("lead b");
        };
        assert_eq!(flights.in_flight(), 2);
        la.publish(arc("A"), true);
        assert_eq!(flights.in_flight(), 1);
        lb.publish(arc("B"), false);
        assert_eq!(flights.in_flight(), 0);
    }

    #[test]
    fn tiered_cache_without_disk_is_memory_only() {
        let tier = TieredCache::new(4, 1, None);
        let digest = sha256(b"k");
        assert!(tier.get_digest(&digest).is_none());
        tier.fill(digest, arc("v"));
        assert!(matches!(tier.get_digest(&digest), Some((_, Tier::Memory))));
        assert!(matches!(tier.peek_digest(&digest), Some((_, Tier::Memory))));
        assert_eq!(tier.fills(), 1);
        assert!(tier.disk_stats().is_none());
        tier.flush_disk(); // no-op, must not panic
    }

    #[test]
    fn tiered_cache_serves_and_promotes_disk_hits() {
        use crate::spill::{SpillConfig, SpillTier};
        let dir = std::env::temp_dir().join(format!(
            "oneq-tiered-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spill = SpillTier::open(SpillConfig::new(&dir)).unwrap();
        // Memory capacity 1: the second fill evicts the first from the
        // LRU, leaving it disk-only.
        let tier = TieredCache::new(1, 1, Some(spill));
        let (a, b) = (sha256(b"a"), sha256(b"b"));
        tier.fill(a, arc("A"));
        tier.fill(b, arc("B"));
        tier.flush_disk();
        assert_eq!(tier.memory_stats().entries, 1);

        let (value, from) = tier.get_digest(&a).expect("disk still holds a");
        assert_eq!((&*value, from), ("A", Tier::Disk));
        // Promotion: the same key now answers from memory.
        let (value, from) = tier.get_digest(&a).expect("promoted");
        assert_eq!((&*value, from), ("A", Tier::Memory));
        // And b, evicted by the promotion, comes back from disk too.
        assert!(matches!(tier.peek_digest(&b), Some((_, Tier::Disk))));

        assert_eq!(tier.fills(), 2);
        let disk = tier.disk_stats().expect("disk tier attached");
        assert_eq!(disk.appends, 2);
        assert_eq!(disk.hits, 2);
        drop(tier);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(CompileCache::new(128, 8));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200 {
                        let key = format!("key-{}", (t * 31 + i) % 50);
                        match cache.get(&key) {
                            Some(v) => assert_eq!(&*v, &key, "a hit returns its own value"),
                            None => cache.insert(&key, Arc::from(key.as_str())),
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
        assert!(stats.entries <= 50);
    }
}
