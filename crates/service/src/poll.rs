//! A std-only shim over `poll(2)` plus a self-wake pipe, for the
//! readiness-driven server core.
//!
//! The event loop in `server.rs` needs exactly two primitives that std
//! does not expose: "which of these fds are ready?" and "interrupt the
//! wait from another thread". This module supplies both — [`poll`] is a
//! direct wrapper over libc's `poll(2)` (already linked by std on every
//! Unix target), and [`Waker`] is a nonblocking socketpair whose read
//! end sits in the poll set so worker threads can nudge the loop by
//! writing one byte.
//!
//! This is the third and final unsafe carve-out in the crate (after
//! `signal.rs`'s `signal(2)` and `spill.rs`'s `flock(2)`; see the crate
//! manifest): one `extern "C"` declaration, one `unsafe` call site. The
//! `Waker` itself is pure safe std — `UnixStream::pair` — and on
//! non-Unix targets everything degrades to `Unsupported` errors, which
//! the server surfaces at startup.

#![allow(unsafe_code)]

use std::io;
use std::time::Duration;

/// Readiness events, mirroring `struct pollfd` from `<poll.h>`. The
/// event bit constants below are identical across Linux and the BSDs
/// (including macOS), so no per-OS tables are needed.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch (negative fds are ignored by the
    /// kernel — a convenient way to keep slab slots aligned).
    pub fd: i32,
    /// Requested events ([`POLLIN`] and/or [`POLLOUT`]).
    pub events: i16,
    /// Returned events; filled in by [`poll`].
    pub revents: i16,
}

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// An error condition on the fd (always reported; never requested).
pub const POLLERR: i16 = 0x008;
/// The peer hung up (always reported; never requested).
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (always reported; never requested).
pub const POLLNVAL: i16 = 0x020;

impl PollFd {
    /// A `PollFd` watching `fd` for the given `events`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether a read attempt will make progress: data is available, the
    /// peer hung up (the read returns 0), or the fd errored (the read
    /// returns the error). All three mean "call read now".
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// Whether a write attempt will make progress — including hangup and
    /// error conditions, which a write surfaces as `EPIPE`/reset.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR | POLLNVAL) != 0
    }
}

#[cfg(unix)]
mod imp {
    use super::PollFd;
    use std::io;
    use std::time::Duration;

    /// `nfds_t` from `<poll.h>`: `unsigned long` on Linux, `unsigned
    /// int` on the BSDs.
    #[cfg(target_os = "linux")]
    type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = std::os::raw::c_uint;

    extern "C" {
        /// `int poll(struct pollfd *fds, nfds_t nfds, int timeout)` from
        /// libc.
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    }

    pub fn poll_impl(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            // A negative timeout means "wait forever".
            None => -1,
            Some(t) => {
                // Round sub-millisecond waits up to 1ms: rounding down
                // would turn a short deadline into a busy spin.
                let ms = t.as_millis();
                if ms == 0 && !t.is_zero() {
                    1
                } else {
                    i32::try_from(ms).unwrap_or(i32::MAX)
                }
            }
        };
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` structs layout-identical to `struct pollfd`, and
        // the kernel writes only within its bounds (`nfds` is the exact
        // length). The call does not retain the pointer past return.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            // EINTR (a signal landed mid-wait) is not a failure: report
            // "nothing ready" and let the caller's loop re-check its
            // stop flag and deadlines, exactly as on a timeout.
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

#[cfg(not(unix))]
mod imp {
    use super::PollFd;
    use std::io;
    use std::time::Duration;

    pub fn poll_impl(_fds: &mut [PollFd], _timeout: Option<Duration>) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "poll(2) requires a Unix target",
        ))
    }
}

/// Waits until at least one fd in `fds` is ready, the timeout elapses
/// (`Ok(0)`), or a signal interrupts the wait (also `Ok(0)` — callers
/// re-check their stop flags on every wakeup anyway). `None` waits
/// forever. Returns the number of entries with nonzero `revents`.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    imp::poll_impl(fds, timeout)
}

/// A wakeup channel for a [`poll`] loop: the read end sits in the poll
/// set, and any thread holding a clone of the `Waker` can make the loop
/// return immediately by writing one byte to the other end.
///
/// Built on `UnixStream::pair` — the classic self-pipe trick without
/// extra unsafe. Both ends are nonblocking: a `wake` when the pipe is
/// already full is a no-op (the loop is waking anyway), and `drain`
/// reads until empty without stalling.
#[cfg(unix)]
pub struct Waker {
    read: std::os::unix::net::UnixStream,
    write: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl Waker {
    /// Creates a connected, nonblocking wake pair.
    pub fn new() -> io::Result<Waker> {
        let (read, write) = std::os::unix::net::UnixStream::pair()?;
        read.set_nonblocking(true)?;
        write.set_nonblocking(true)?;
        Ok(Waker { read, write })
    }

    /// The fd to include (with [`POLLIN`]) in the poll set.
    pub fn fd(&self) -> i32 {
        std::os::fd::AsRawFd::as_raw_fd(&self.read)
    }

    /// Makes the next (or current) [`poll`] call return. Never blocks:
    /// if the pipe buffer is full the loop already has a pending wakeup
    /// and the write is dropped.
    pub fn wake(&self) {
        use std::io::Write as _;
        let _ = (&self.write).write(&[1]);
    }

    /// Empties the pipe after a wakeup so the fd stops reading as ready.
    /// Many queued wakeups coalesce into one drain.
    pub fn drain(&self) {
        use std::io::Read as _;
        let mut sink = [0u8; 64];
        while matches!((&self.read).read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Non-Unix stand-in so the crate still compiles; construction fails.
#[cfg(not(unix))]
pub struct Waker {}

#[cfg(not(unix))]
impl Waker {
    /// Always fails off-Unix.
    pub fn new() -> io::Result<Waker> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "Waker requires a Unix target",
        ))
    }

    /// Unreachable off-Unix (construction fails); present for type
    /// parity.
    pub fn fd(&self) -> i32 {
        -1
    }

    /// No-op off-Unix.
    pub fn wake(&self) {}

    /// No-op off-Unix.
    pub fn drain(&self) {}
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::time::Instant;

    #[test]
    fn poll_times_out_on_a_quiet_fd() {
        let (a, _b) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(std::os::fd::AsRawFd::as_raw_fd(&a), POLLIN)];
        let start = Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0, "nothing was ready");
        assert!(!fds[0].readable());
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "waited it out"
        );
    }

    #[test]
    fn poll_reports_readable_when_bytes_arrive() {
        let (a, mut b) = std::os::unix::net::UnixStream::pair().unwrap();
        b.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(std::os::fd::AsRawFd::as_raw_fd(&a), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].writable() || fds[0].revents & POLLOUT == 0);
    }

    #[test]
    fn poll_reports_hangup_as_readable() {
        let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(std::os::fd::AsRawFd::as_raw_fd(&a), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "hangup means a read will not block");
    }

    #[test]
    fn waker_interrupts_a_poll_wait_and_drains_clean() {
        let waker = Waker::new().unwrap();
        waker.wake();
        waker.wake(); // coalesces with the first
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        waker.drain();
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0, "drained waker is quiet again");
    }

    #[test]
    fn waker_wake_never_blocks_even_when_the_pipe_is_full() {
        let waker = Waker::new().unwrap();
        // A socketpair buffer is finite; thousands of wakes must all
        // return immediately rather than blocking the waking thread.
        for _ in 0..300_000 {
            waker.wake();
        }
        waker.drain();
        let mut probe = [0u8; 1];
        assert!(
            (&waker.read).read(&mut probe).is_err(),
            "drain emptied the pipe"
        );
    }

    #[test]
    fn negative_fds_are_ignored() {
        // The slab keeps closed slots as fd -1; the kernel must skip
        // them rather than erroring the whole poll set.
        let mut fds = [PollFd::new(-1, POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        assert_eq!(fds[0].revents, 0);
    }
}
