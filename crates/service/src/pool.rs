//! Std-thread worker pools shared by the batch drivers and the daemon.
//!
//! Two shapes of parallelism live here:
//!
//! * [`run_indexed`] — the batch pool `oneqc` (and `loadgen`) use: a
//!   shared atomic cursor hands out item indices to scoped workers, and
//!   every result lands in its input slot, so output order is input order
//!   no matter which thread finishes first.
//! * [`WorkerPool`] — the long-lived bounded pool `oneqd` uses: N named
//!   threads drain a bounded queue of boxed jobs. A full queue makes
//!   [`WorkerPool::execute`] block (backpressure on the acceptor), and
//!   dropping the pool joins the workers after the queue drains — the
//!   mechanism behind graceful shutdown.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Runs `f` over every item of `items` on up to `jobs` scoped worker
/// threads and returns the results in input order.
///
/// # Example
///
/// ```
/// let squares = oneq_service::pool::run_indexed(4, &[1u64, 2, 3], |i, v| (i, v * v));
/// assert_eq!(squares, vec![(0, 1), (1, 4), (2, 9)]);
/// ```
pub fn run_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed_with(jobs, items, || (), |(), i, item| f(i, item))
}

/// [`run_indexed`] with per-worker state: each worker thread calls
/// `init` once and threads the value through every item it processes.
/// `loadgen`'s keep-alive mode uses this to hold one persistent
/// connection per worker; `init` runs *on* the worker thread, so the
/// state type need not be `Send`.
pub fn run_indexed_with<T, R, S, I, F>(jobs: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(slots);
    let workers = jobs.max(1).min(items.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    // ORDERING: Relaxed — the cursor only needs fetch_add's
                    // atomicity for unique indices; results are published
                    // through the slots Mutex.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let result = f(&mut state, i, &items[i]);
                    slots.lock().expect("pool slot mutex poisoned")[i] = Some(result);
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("pool slot mutex poisoned")
        .into_iter()
        .map(|slot| slot.expect("every slot filled by the pool"))
        .collect()
}

/// A boxed unit of work for a [`WorkerPool`]. Public so the event loop
/// can hold jobs it failed to enqueue (the pool was full) and retry them
/// without re-boxing.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A bounded pool of long-lived worker threads draining a job queue.
pub struct WorkerPool {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    depth: Arc<AtomicUsize>,
}

impl WorkerPool {
    /// Spawns `workers` threads (named `{name}-{i}`) behind a queue
    /// holding at most `backlog` pending jobs.
    pub fn new(name: &str, workers: usize, backlog: usize) -> WorkerPool {
        let (tx, rx) = sync_channel::<Job>(backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let depth = Arc::new(AtomicUsize::new(0));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let depth = Arc::clone(&depth);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&rx, &depth))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            depth,
        }
    }

    /// Enqueues a job, blocking while the queue is full. Returns `false`
    /// only after [`WorkerPool::shutdown`].
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.tx {
            Some(tx) => {
                // ORDERING: Relaxed — depth is a statistics gauge; job
                // handoff is ordered by the channel itself.
                self.depth.fetch_add(1, Ordering::Relaxed);
                let sent = tx.send(Box::new(job)).is_ok();
                if !sent {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                }
                sent
            }
            None => false,
        }
    }

    /// Enqueues a boxed job without blocking. On a full (or shut-down)
    /// queue the job is handed back so the caller can retry later — the
    /// event loop must never block on dispatch, or a saturated pool
    /// would stall every other connection.
    pub fn try_execute_boxed(&self, job: Job) -> Result<(), Job> {
        use std::sync::mpsc::TrySendError;
        match &self.tx {
            Some(tx) => {
                // ORDERING: Relaxed — same statistics gauge as `execute`;
                // the channel orders the handoff.
                self.depth.fetch_add(1, Ordering::Relaxed);
                let result = tx.try_send(job).map_err(|e| match e {
                    TrySendError::Full(job) | TrySendError::Disconnected(job) => job,
                });
                if result.is_err() {
                    self.depth.fetch_sub(1, Ordering::Relaxed);
                }
                result
            }
            None => Err(job),
        }
    }

    /// Jobs enqueued but not yet picked up by a worker — the queue-depth
    /// gauge the event loop publishes each iteration. Momentarily over by
    /// jobs mid-handoff; exact once the queue settles.
    pub fn depth(&self) -> usize {
        // ORDERING: Relaxed — momentarily-stale reads are fine per the doc
        // comment above.
        self.depth.load(Ordering::Relaxed)
    }

    /// Closes the queue and joins every worker; jobs already enqueued
    /// still run (drain-then-exit).
    pub fn shutdown(&mut self) {
        self.tx.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, depth: &AtomicUsize) {
    loop {
        // Hold the receiver lock only while dequeuing, never while running
        // the job, so workers drain the queue concurrently.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => break,
        };
        match job {
            Ok(job) => {
                // ORDERING: Relaxed — statistics gauge decrement; the recv
                // above already ordered the job's memory.
                depth.fetch_sub(1, Ordering::Relaxed);
                job();
            }
            Err(_) => break, // sender dropped and queue drained
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_indexed_preserves_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = run_indexed(8, &items, |i, v| {
            assert_eq!(i, *v);
            v * 2
        });
        assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_indexed_handles_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(run_indexed(4, &empty, |_, v| *v).is_empty());
        assert_eq!(run_indexed(0, &[7], |_, v| *v), vec![7]);
    }

    #[test]
    fn run_indexed_with_reuses_per_worker_state() {
        // Each worker initializes its state exactly once and reuses it
        // for every item it claims: across 64 items on 4 workers, the
        // number of distinct states observed equals the worker count.
        let items: Vec<usize> = (0..64).collect();
        let inits = Arc::new(AtomicU64::new(0));
        let inits_for_workers = Arc::clone(&inits);
        let out = run_indexed_with(
            4,
            &items,
            move || {
                // Per-worker state: (stable worker tag, items handled).
                // ORDERING: SeqCst — test assertion counter; strongest
                // ordering so the test never races its own bookkeeping.
                (inits_for_workers.fetch_add(1, Ordering::SeqCst), 0u64)
            },
            |(tag, handled), i, v| {
                assert_eq!(i, *v);
                *handled += 1;
                (*tag, *handled)
            },
        );
        assert_eq!(inits.load(Ordering::SeqCst), 4, "one init per worker");
        // Every item was processed, and per-worker `handled` counts sum
        // to the item count (each worker's max handled == its item count).
        let mut per_worker = std::collections::HashMap::new();
        for (tag, handled) in out {
            let max = per_worker.entry(tag).or_insert(0u64);
            *max = (*max).max(handled);
        }
        assert_eq!(per_worker.values().sum::<u64>(), items.len() as u64);
    }

    #[test]
    fn try_execute_hands_the_job_back_when_the_queue_is_full() {
        // One worker parked on a barrier job + a 1-slot queue: the first
        // try fills the queue, the second must bounce without blocking.
        let gate = Arc::new(Mutex::new(()));
        let hold = gate.lock().unwrap();
        let mut pool = WorkerPool::new("test-try", 1, 1);
        let gate_for_worker = Arc::clone(&gate);
        assert!(pool.execute(move || {
            let _held = gate_for_worker.lock();
        }));
        // Wait until the worker has dequeued the blocker so the queue
        // slot is genuinely free for the next job.
        let queued = Arc::new(AtomicU64::new(0));
        let queued_for_job = Arc::clone(&queued);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match pool.try_execute_boxed(Box::new({
                let queued = Arc::clone(&queued_for_job);
                move || {
                    // ORDERING: SeqCst — test assertion counter.
                    queued.fetch_add(1, Ordering::SeqCst);
                }
            })) {
                Ok(()) => break,
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(_) => panic!("queue never freed a slot"),
            }
        }
        // Queue now holds one job while the worker is blocked: full.
        let bounced = pool.try_execute_boxed(Box::new(|| {}));
        assert!(bounced.is_err(), "full queue hands the job back");
        drop(hold);
        pool.shutdown();
        // ORDERING: SeqCst — test assertion read after join.
        assert_eq!(queued.load(Ordering::SeqCst), 1);
        assert!(
            pool.try_execute_boxed(Box::new(|| {})).is_err(),
            "after shutdown the job comes back too"
        );
    }

    #[test]
    fn depth_reports_waiting_jobs_and_drains_to_zero() {
        // One worker parked behind a gate; two queued jobs behind it must
        // show up in depth(), and a drained pool must read zero.
        let gate = Arc::new(Mutex::new(()));
        let hold = gate.lock().unwrap();
        let mut pool = WorkerPool::new("test-depth", 1, 4);
        let gate_for_worker = Arc::clone(&gate);
        assert!(pool.execute(move || {
            let _held = gate_for_worker.lock();
        }));
        assert!(pool.execute(|| {}));
        assert!(pool.execute(|| {}));
        // The blocker may or may not have been dequeued yet, so depth is
        // 2 or 3 — never less, never more.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while pool.depth() > 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "blocker never dequeued"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(pool.depth(), 2, "two jobs waiting behind the blocker");
        drop(hold);
        pool.shutdown();
        assert_eq!(pool.depth(), 0, "drained pool reads zero depth");
    }

    #[test]
    fn worker_pool_runs_all_jobs_before_shutdown() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut pool = WorkerPool::new("test", 4, 2);
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            assert!(pool.execute(move || {
                // ORDERING: SeqCst — test assertion counter.
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        // ORDERING: SeqCst — test assertion read after join.
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert!(!pool.execute(|| {}), "execute after shutdown is refused");
    }
}
