//! `oneqd`: the OneQ compile daemon.
//!
//! A long-lived HTTP/1.1 service over the full compile pipeline, with a
//! content-addressed result cache. See the crate docs (`oneq-service`)
//! and the README's service section for the endpoint contract.
//!
//! Usage:
//!
//! ```text
//! oneqd [OPTIONS]
//!
//!   --addr HOST:PORT          listen address (default 127.0.0.1:7878; port 0
//!                             picks an ephemeral port, printed at startup)
//!   --workers N               worker threads (default: available parallelism)
//!   --backlog N               bounded queue of pending connections (default 64)
//!   --cache-capacity N        cached compile responses (default 256)
//!   --cache-shards N          cache mutex stripes (default 8)
//!   --cache-dir PATH          persistent disk spill tier: an append-only
//!                             CRC-guarded record log surviving restarts
//!                             (default: off, memory-only). The directory
//!                             is advisory-locked (flock) while in use.
//!   --cache-disk-bytes BYTES  byte budget for --cache-dir
//!                             (default 268435456 = 256 MiB)
//!   --max-body BYTES          request body limit (default 4194304)
//!   --keep-alive-requests N   requests served per connection before the
//!                             server closes it (default 256)
//!   --idle-timeout-ms MS      idle time allowed between requests on a
//!                             kept-alive connection (default 5000)
//!   --io-timeout-ms MS        whole-exchange deadline: the budget a client
//!                             has to deliver a complete request once its
//!                             first byte arrives, and the budget the server
//!                             has to write the response (default 10000).
//!                             This is the slow-loris eviction knob.
//!   --max-connections N       open sockets the event loop will hold at
//!                             once (default 4096); excess connections
//!                             wait in the kernel accept backlog
//!   --batch-jobs N            threads compiling one /v1/compile-batch
//!                             request (default: available parallelism)
//!   --trace-log PATH          append closed request traces as JSONL
//!                             (one object per request: id, route, status,
//!                             outcome, span tree; default: off — traces
//!                             stay in the in-memory ring only)
//!   --slow-ms MS              only log traces for requests that took
//!                             >= MS end to end (default 0: log every
//!                             request; needs --trace-log)
//! ```
//!
//! The daemon prints `oneqd: listening on http://ADDR` once ready and
//! exits 0 after a graceful shutdown (SIGTERM or ctrl-c): the listener
//! stops accepting, in-flight and queued requests finish, workers join.
//! Usage errors exit 2.

use oneq_service::server::{Server, ServerConfig};
use oneq_service::signal;

fn usage() -> ! {
    eprintln!(
        "usage: oneqd [--addr HOST:PORT] [--workers N] [--backlog N] \
         [--cache-capacity N] [--cache-shards N] [--cache-dir PATH] \
         [--cache-disk-bytes BYTES] [--max-body BYTES] \
         [--keep-alive-requests N] [--idle-timeout-ms MS] [--io-timeout-ms MS] \
         [--max-connections N] [--batch-jobs N] [--trace-log PATH] [--slow-ms MS]"
    );
    std::process::exit(2);
}

fn parse_args() -> (String, ServerConfig) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("oneqd: {flag} needs a value");
            usage();
        })
    };
    let num = |s: String, flag: &str, min: usize| -> usize {
        match s.parse::<usize>() {
            Ok(v) if v >= min => v,
            _ => {
                eprintln!("oneqd: {flag} expects a number >= {min}, got `{s}`");
                usage();
            }
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = value(&mut i, "--addr"),
            "--workers" => config.workers = num(value(&mut i, "--workers"), "--workers", 1),
            "--backlog" => config.backlog = num(value(&mut i, "--backlog"), "--backlog", 1),
            "--cache-capacity" => {
                config.cache_capacity =
                    num(value(&mut i, "--cache-capacity"), "--cache-capacity", 1);
            }
            "--cache-shards" => {
                config.cache_shards = num(value(&mut i, "--cache-shards"), "--cache-shards", 1);
            }
            "--cache-dir" => {
                config.cache_dir = Some(std::path::PathBuf::from(value(&mut i, "--cache-dir")));
            }
            "--cache-disk-bytes" => {
                config.cache_disk_bytes =
                    num(value(&mut i, "--cache-disk-bytes"), "--cache-disk-bytes", 1) as u64;
            }
            "--max-body" => config.max_body = num(value(&mut i, "--max-body"), "--max-body", 1),
            "--keep-alive-requests" => {
                config.keep_alive_requests = num(
                    value(&mut i, "--keep-alive-requests"),
                    "--keep-alive-requests",
                    1,
                );
            }
            "--idle-timeout-ms" => {
                config.idle_timeout = std::time::Duration::from_millis(num(
                    value(&mut i, "--idle-timeout-ms"),
                    "--idle-timeout-ms",
                    1,
                ) as u64);
            }
            "--io-timeout-ms" => {
                config.io_timeout = std::time::Duration::from_millis(num(
                    value(&mut i, "--io-timeout-ms"),
                    "--io-timeout-ms",
                    1,
                ) as u64);
            }
            "--max-connections" => {
                config.max_connections =
                    num(value(&mut i, "--max-connections"), "--max-connections", 1);
            }
            "--batch-jobs" => {
                config.batch_jobs = num(value(&mut i, "--batch-jobs"), "--batch-jobs", 1);
            }
            "--trace-log" => {
                config.trace_log = Some(std::path::PathBuf::from(value(&mut i, "--trace-log")));
            }
            "--slow-ms" => {
                config.slow_ms = num(value(&mut i, "--slow-ms"), "--slow-ms", 0) as u64;
            }
            "--help" | "-h" => usage(),
            flag => {
                eprintln!("oneqd: unknown flag {flag}");
                usage();
            }
        }
        i += 1;
    }
    (addr, config)
}

fn main() {
    let (addr, config) = parse_args();
    signal::install();
    // Bind also opens the spill tier when --cache-dir is set, so the
    // failure here may be the listen socket *or* the cache directory
    // (unwritable, or flocked by another oneqd).
    let server = Server::bind(addr.as_str(), config.clone()).unwrap_or_else(|e| {
        eprintln!("oneqd: cannot start on {addr}: {e}");
        std::process::exit(2);
    });
    let local = server
        .local_addr()
        .expect("freshly bound listener has an address");
    // Scripts (CI, tests) wait for this exact line before sending traffic.
    println!("oneqd: listening on http://{local}");
    println!(
        "oneqd: {} workers, backlog {}, cache capacity {} over {} shard(s), \
         keep-alive {} req/conn, idle timeout {} ms, io timeout {} ms, \
         max connections {}",
        config.workers,
        config.backlog,
        config.cache_capacity,
        config.cache_shards,
        config.keep_alive_requests,
        config.idle_timeout.as_millis(),
        config.io_timeout.as_millis(),
        config.max_connections
    );
    if let Some(dir) = &config.cache_dir {
        println!(
            "oneqd: disk cache at {} (budget {} bytes)",
            dir.display(),
            config.cache_disk_bytes
        );
    }
    if let Some(path) = &config.trace_log {
        println!(
            "oneqd: trace log at {} (slow threshold {} ms)",
            path.display(),
            config.slow_ms
        );
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    if let Err(e) = server.run_until(signal::shutdown_requested) {
        eprintln!("oneqd: accept loop failed: {e}");
        std::process::exit(1);
    }
    println!("oneqd: shutdown complete");
}
