//! Process-level tests for the `oneqd` binary: startup banner, traffic,
//! and graceful SIGTERM shutdown. These spawn the real daemon (rather
//! than the in-process server the `tests/service.rs` suite uses) because
//! signal delivery and exit codes only exist at process granularity.

#![cfg(unix)]

use oneq_service::http;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

/// Spawns `oneqd` on an ephemeral port and parses the bound address from
/// its startup banner.
fn spawn_daemon(extra_args: &[&str]) -> (Child, SocketAddr, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_oneqd"))
        .args(["--addr", "127.0.0.1:0"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn oneqd");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("oneqd: listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .parse::<SocketAddr>()
        .expect("banner carries the bound address");
    (child, addr, stdout)
}

fn send_sigterm(child: &Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -TERM delivered");
}

#[test]
fn daemon_serves_and_shuts_down_gracefully_on_sigterm() {
    let (mut child, addr, _stdout) = spawn_daemon(&["--workers", "2", "--cache-capacity", "16"]);

    let health = http::request(addr, "GET", "/v1/healthz", b"", TIMEOUT).expect("GET /v1/healthz");
    assert_eq!(health.status, 200);

    // One keep-alive session through the real daemon process: miss then
    // hit on a single socket.
    let source = b"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n";
    let mut conn = http::ClientConn::connect(addr, TIMEOUT).expect("open keep-alive connection");
    let first = conn
        .send("POST", "/v1/compile?file=bell.qasm", source)
        .expect("POST /v1/compile");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-oneqd-cache"), Some("miss"));
    assert!(first.keep_alive(), "daemon keeps the session open");
    let second = conn
        .send("POST", "/v1/compile?file=bell.qasm", source)
        .expect("POST /v1/compile again on the same socket");
    assert_eq!(second.header("x-oneqd-cache"), Some("hit"));
    assert_eq!(first.body, second.body);
    drop(conn);

    // Legacy shim: unversioned GET redirects to the /v1 successor.
    let legacy = http::request(addr, "GET", "/healthz", b"", TIMEOUT).expect("GET /healthz");
    assert_eq!(legacy.status, 308);
    assert_eq!(legacy.header("location"), Some("/v1/healthz"));

    send_sigterm(&child);
    let status = child.wait().expect("wait for daemon");
    assert_eq!(status.code(), Some(0), "SIGTERM exits gracefully with 0");
}

#[test]
fn daemon_sigterm_without_traffic_still_exits_cleanly() {
    let (mut child, addr, _stdout) = spawn_daemon(&[]);
    // Prove it is actually up before killing it.
    let health = http::request(addr, "GET", "/v1/healthz", b"", TIMEOUT).expect("GET /v1/healthz");
    assert_eq!(health.status, 200);
    send_sigterm(&child);
    let status = child.wait().expect("wait for daemon");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn daemon_sigterm_exits_cleanly_with_an_open_keep_alive_connection() {
    // A held-open idle session must not wedge graceful shutdown: the
    // worker serving it is released by the idle timeout.
    let (mut child, addr, _stdout) = spawn_daemon(&["--idle-timeout-ms", "200"]);
    let mut conn = http::ClientConn::connect(addr, TIMEOUT).expect("open keep-alive connection");
    let resp = conn
        .send("GET", "/v1/healthz", b"")
        .expect("health over session");
    assert_eq!(resp.status, 200);
    // Leave the connection open and idle while the daemon is terminated.
    send_sigterm(&child);
    let status = child.wait().expect("wait for daemon");
    assert_eq!(
        status.code(),
        Some(0),
        "idle session does not block shutdown"
    );
}

#[test]
fn daemon_rejects_bad_flags_with_usage_exit() {
    let output = Command::new(env!("CARGO_BIN_EXE_oneqd"))
        .args(["--workers", "zero"])
        .output()
        .expect("run oneqd");
    assert_eq!(output.status.code(), Some(2));
    let output = Command::new(env!("CARGO_BIN_EXE_oneqd"))
        .args(["--frobnicate"])
        .output()
        .expect("run oneqd");
    assert_eq!(output.status.code(), Some(2));
}
