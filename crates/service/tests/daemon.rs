//! Process-level tests for the `oneqd` binary: startup banner, traffic,
//! and graceful SIGTERM shutdown. These spawn the real daemon (rather
//! than the in-process server the `tests/service.rs` suite uses) because
//! signal delivery and exit codes only exist at process granularity.

#![cfg(unix)]

use oneq_service::http;
use oneq_service::segment;
use std::io::{BufRead, BufReader, Write as _};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);

/// Spawns `oneqd` on an ephemeral port and parses the bound address from
/// its startup banner.
fn spawn_daemon(extra_args: &[&str]) -> (Child, SocketAddr, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_oneqd"))
        .args(["--addr", "127.0.0.1:0"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn oneqd");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("oneqd: listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .parse::<SocketAddr>()
        .expect("banner carries the bound address");
    (child, addr, stdout)
}

fn send_signal(child: &Child, signal: &str) {
    let status = Command::new("kill")
        .args([signal, &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill {signal} delivered");
}

fn send_sigterm(child: &Child) {
    send_signal(child, "-TERM");
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oneqd-daemon-test-{tag}-{}", std::process::id()));
    // A fresh directory every run: stale segments from an earlier failed
    // run would change which pass is cold.
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Polls `/v1/stats` until the disk tier reports `want` stored entries.
/// The spill tier is write-behind, so a 200 on `/v1/compile` does not
/// yet mean the record is durable; this barrier does.
fn wait_for_disk_entries(addr: SocketAddr, want: usize) {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let stats = http::request(addr, "GET", "/v1/stats", b"", TIMEOUT).expect("GET /v1/stats");
        let body = String::from_utf8_lossy(&stats.body).into_owned();
        let disk = body.find("\"disk\"").map(|at| &body[at..]);
        if disk.is_some_and(|d| d.contains(&format!("\"entries\": {want}"))) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "disk tier never reached {want} entries: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The highest-numbered `seg-*.log` in a spill directory — the segment
/// the daemon was appending to when it died.
fn newest_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read spill dir")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "log"))
        .collect();
    segments.sort();
    segments
        .pop()
        .expect("spill dir holds at least one segment")
}

#[test]
fn daemon_serves_and_shuts_down_gracefully_on_sigterm() {
    let (mut child, addr, _stdout) = spawn_daemon(&["--workers", "2", "--cache-capacity", "16"]);

    let health = http::request(addr, "GET", "/v1/healthz", b"", TIMEOUT).expect("GET /v1/healthz");
    assert_eq!(health.status, 200);

    // One keep-alive session through the real daemon process: miss then
    // hit on a single socket.
    let source = b"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n";
    let mut conn = http::ClientConn::connect(addr, TIMEOUT).expect("open keep-alive connection");
    let first = conn
        .send("POST", "/v1/compile?file=bell.qasm", source)
        .expect("POST /v1/compile");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-oneqd-cache"), Some("miss"));
    assert!(first.keep_alive(), "daemon keeps the session open");
    let second = conn
        .send("POST", "/v1/compile?file=bell.qasm", source)
        .expect("POST /v1/compile again on the same socket");
    assert_eq!(second.header("x-oneqd-cache"), Some("memory"));
    assert_eq!(first.body, second.body);
    drop(conn);

    send_sigterm(&child);
    let status = child.wait().expect("wait for daemon");
    assert_eq!(status.code(), Some(0), "SIGTERM exits gracefully with 0");
}

#[test]
fn daemon_sigterm_without_traffic_still_exits_cleanly() {
    let (mut child, addr, _stdout) = spawn_daemon(&[]);
    // Prove it is actually up before killing it.
    let health = http::request(addr, "GET", "/v1/healthz", b"", TIMEOUT).expect("GET /v1/healthz");
    assert_eq!(health.status, 200);
    send_sigterm(&child);
    let status = child.wait().expect("wait for daemon");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn daemon_sigterm_exits_cleanly_with_an_open_keep_alive_connection() {
    // A held-open idle session must not wedge graceful shutdown: the
    // worker serving it is released by the idle timeout.
    let (mut child, addr, _stdout) = spawn_daemon(&["--idle-timeout-ms", "200"]);
    let mut conn = http::ClientConn::connect(addr, TIMEOUT).expect("open keep-alive connection");
    let resp = conn
        .send("GET", "/v1/healthz", b"")
        .expect("health over session");
    assert_eq!(resp.status, 200);
    // Leave the connection open and idle while the daemon is terminated.
    send_sigterm(&child);
    let status = child.wait().expect("wait for daemon");
    assert_eq!(
        status.code(),
        Some(0),
        "idle session does not block shutdown"
    );
}

#[test]
fn daemon_survives_sigkill_and_serves_the_disk_tier_after_a_torn_write() {
    let dir = tempdir("sigkill");
    let cache_dir = dir.join("spill");
    let dir_arg = cache_dir.display().to_string();
    let source: &[u8] =
        b"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n";

    let (mut child, addr, _stdout) = spawn_daemon(&["--cache-dir", &dir_arg]);
    let first = http::request(addr, "POST", "/v1/compile?file=bell.qasm", source, TIMEOUT)
        .expect("POST /v1/compile");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-oneqd-cache"), Some("miss"));
    // The append is write-behind; make sure it landed before the crash.
    wait_for_disk_entries(addr, 1);
    // SIGKILL: no signal handler, no Drop, no flush — the hard case.
    send_signal(&child, "-KILL");
    let _ = child.wait();

    // Stand in for the record the daemon would have been mid-write
    // through when it died: append a torn record (header promising more
    // body than the file holds) to the active segment.
    let torn = segment::encode_record(&[0xAB; 32], b"never finished");
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(newest_segment(&cache_dir))
        .expect("open active segment");
    file.write_all(&torn[..torn.len() - 5])
        .expect("append torn tail");
    drop(file);

    // Restart on the same directory: the torn tail is dropped, the
    // intact record is served byte-identically from disk.
    let (mut child, addr, _stdout) = spawn_daemon(&["--cache-dir", &dir_arg]);
    let replay = http::request(addr, "POST", "/v1/compile?file=bell.qasm", source, TIMEOUT)
        .expect("POST /v1/compile after restart");
    assert_eq!(replay.status, 200);
    assert_eq!(replay.header("x-oneqd-cache"), Some("disk"));
    assert_eq!(
        replay.body, first.body,
        "disk hit is byte-identical across the crash"
    );
    let stats = http::request(addr, "GET", "/v1/stats", b"", TIMEOUT).expect("GET /v1/stats");
    let stats = String::from_utf8(stats.body).expect("stats is utf-8");
    let disk = &stats[stats.find("\"disk\"").expect("stats carries a disk block")..];
    assert!(
        disk.contains("\"truncated_tails\": 1"),
        "recovery counted the torn tail: {stats}"
    );
    assert!(
        disk.contains("\"recovered_records\": 1"),
        "recovery kept the intact record: {stats}"
    );

    send_sigterm(&child);
    assert_eq!(child.wait().expect("wait for daemon").code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_refuses_a_cache_dir_held_by_another_daemon() {
    let dir = tempdir("flock");
    let dir_arg = dir.join("spill").display().to_string();
    let (mut child, _addr, _stdout) = spawn_daemon(&["--cache-dir", &dir_arg]);

    // A second daemon on the same spill directory must fail fast at
    // startup instead of corrupting the first one's segments.
    let output = Command::new(env!("CARGO_BIN_EXE_oneqd"))
        .args(["--addr", "127.0.0.1:0", "--cache-dir", &dir_arg])
        .output()
        .expect("run second oneqd");
    assert_eq!(output.status.code(), Some(2), "second daemon exits 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("locked by another process"),
        "stderr names the lock conflict: {stderr}"
    );

    send_sigterm(&child);
    assert_eq!(child.wait().expect("wait for daemon").code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_evicts_a_slow_loris_client_without_blocking_others() {
    use std::io::{Read as _, Write as _};
    // A short io budget so the eviction lands within the test, and a
    // long idle budget so it cannot be the thing that fires.
    let (mut child, addr, _stdout) = spawn_daemon(&[
        "--io-timeout-ms",
        "1500",
        "--idle-timeout-ms",
        "30000",
        "--workers",
        "2",
    ]);

    // The attacker: starts a request and trickles one byte at a time,
    // never completing it. Under the old thread-per-connection core this
    // pinned a worker for as long as the client cared to drip.
    let trickler = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).expect("trickler connects");
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .expect("set read timeout");
        let started = Instant::now();
        let mut probe = [0u8; 16];
        for byte in b"POST /v1/compile?file=x.qasm HTTP/1.1\r\nx-drip: 1\r\n" {
            if stream.write_all(std::slice::from_ref(byte)).is_err() {
                return started.elapsed();
            }
            match stream.read(&mut probe) {
                Ok(0) => return started.elapsed(),
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => return started.elapsed(),
            }
            std::thread::sleep(Duration::from_millis(150));
        }
        // Ran out of bytes without seeing the hangup: block on the read
        // until the server closes on us.
        let _ = stream.set_read_timeout(Some(TIMEOUT));
        let _ = stream.read(&mut probe);
        started.elapsed()
    });

    // While the trickler is mid-drip, a well-behaved client must be
    // served immediately — the slow socket costs an fd, not a thread.
    std::thread::sleep(Duration::from_millis(300));
    let source = b"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n";
    let t0 = Instant::now();
    let resp = http::request(addr, "POST", "/v1/compile?file=bell.qasm", source, TIMEOUT)
        .expect("compile while the trickler drips");
    assert_eq!(resp.status, 200);
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "compile was not stuck behind the slow client"
    );

    // The trickler is evicted once its whole-request deadline expires,
    // and the eviction is visible in the stats counters.
    let lived = trickler.join().expect("trickler thread");
    assert!(
        lived >= Duration::from_millis(1400),
        "evicted by deadline, not instantly: lived {lived:?}"
    );
    assert!(
        lived < TIMEOUT,
        "the server hung up on the trickler: lived {lived:?}"
    );
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let stats = http::request(addr, "GET", "/v1/stats", b"", TIMEOUT).expect("GET /v1/stats");
        let body = String::from_utf8_lossy(&stats.body).into_owned();
        assert!(body.contains("\"schema\": \"oneqd-stats/v6\""));
        if body.contains("\"evicted_slow_read\": 1") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "eviction never surfaced in stats: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    send_sigterm(&child);
    assert_eq!(child.wait().expect("wait for daemon").code(), Some(0));
}

#[test]
fn daemon_trace_log_records_slow_requests_with_full_span_trees() {
    let dir = tempdir("trace");
    let log = dir.join("trace.jsonl");
    let log_arg = log.display().to_string();
    // Threshold well above a trivial compile and well below a large one
    // (a 1200-qubit cx chain takes ~500 ms in the debug profile).
    let (mut child, addr, _stdout) = spawn_daemon(&["--trace-log", &log_arg, "--slow-ms", "100"]);

    // Fast request: finishes far under the threshold, so it must stay
    // out of the JSONL sink — but its id is still echoed end to end.
    let fast: &[u8] =
        b"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n";
    let resp = http::request_with_headers(
        addr,
        "POST",
        "/v1/compile?file=fast.qasm",
        &[("X-Oneqd-Request-Id", "trace-fast-1")],
        fast,
        TIMEOUT,
    )
    .expect("fast compile");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-oneqd-request-id"), Some("trace-fast-1"));

    // Slow request: a long nearest-neighbor cx chain.
    let qubits = 1200;
    let mut slow = format!("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[{qubits}];\n");
    for i in 0..qubits - 1 {
        slow.push_str(&format!("cx q[{i}], q[{}];\n", i + 1));
    }
    let resp = http::request_with_headers(
        addr,
        "POST",
        "/v1/compile?file=slow.qasm",
        &[("X-Oneqd-Request-Id", "trace-slow-1")],
        slow.as_bytes(),
        TIMEOUT,
    )
    .expect("slow compile");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("x-oneqd-request-id"),
        Some("trace-slow-1"),
        "inbound request id echoed on the slow response"
    );

    // The trace closes when the last response byte flushes — an instant
    // after the client reads it — so poll for the record.
    let deadline = Instant::now() + TIMEOUT;
    let line = loop {
        let text = std::fs::read_to_string(&log).unwrap_or_default();
        if let Some(line) = text.lines().find(|l| l.contains("\"trace-slow-1\"")) {
            break line.to_string();
        }
        assert!(
            Instant::now() < deadline,
            "slow trace never reached the log: {text:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(line.contains("\"request_id\": \"trace-slow-1\""), "{line}");
    assert!(line.contains("\"route\": \"/v1/compile\""), "{line}");
    assert!(line.contains("\"status\": 200"), "{line}");
    assert!(line.contains("\"outcome\": \"miss\""), "{line}");
    // The complete span tree: transport phases, cache lookup, and every
    // compile stage, closed by the response write.
    for span in [
        "\"name\": \"read\"",
        "\"name\": \"queue\"",
        "\"name\": \"handle\"",
        "\"name\": \"cache\"",
        "\"name\": \"compile.parse\"",
        "\"name\": \"compile.translate\"",
        "\"name\": \"compile.partition\"",
        "\"name\": \"compile.fusion_graph\"",
        "\"name\": \"compile.mapping\"",
        "\"name\": \"compile.shuffle\"",
        "\"name\": \"write\"",
    ] {
        assert!(line.contains(span), "span {span} missing from {line}");
    }

    // --slow-ms filtering held: the fast request's id never appears.
    let text = std::fs::read_to_string(&log).expect("trace log readable");
    assert!(
        !text.contains("trace-fast-1"),
        "fast request leaked into the slow log: {text}"
    );

    send_sigterm(&child);
    assert_eq!(child.wait().expect("wait for daemon").code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_end_to_end_triage_from_exemplar_to_trace() {
    // The PR-9 triage loop, end to end against the real process: a slow
    // compile shows up as a histogram exemplar on `/v1/metrics`, the
    // exemplar's request id resolves through `GET /v1/traces/{id}` to a
    // span tree carrying the per-partition compiler profile, the filtered
    // list and the stats `slowest` table both name the same offender.
    let (mut child, addr, _stdout) = spawn_daemon(&["--workers", "2"]);

    // A fast request first, so "slowest" actually has to rank.
    let fast: &[u8] =
        b"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n";
    let resp = http::request_with_headers(
        addr,
        "POST",
        "/v1/compile?file=fast.qasm",
        &[("X-Oneqd-Request-Id", "triage-fast-1")],
        fast,
        TIMEOUT,
    )
    .expect("fast compile");
    assert_eq!(resp.status, 200);

    // The offender: a long nearest-neighbor cx chain (~hundreds of ms in
    // the debug profile), under a client-chosen request id.
    let qubits = 1200;
    let mut slow = format!("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[{qubits}];\n");
    for i in 0..qubits - 1 {
        slow.push_str(&format!("cx q[{i}], q[{}];\n", i + 1));
    }
    let resp = http::request_with_headers(
        addr,
        "POST",
        "/v1/compile?file=slow.qasm",
        &[("X-Oneqd-Request-Id", "triage-slow-1")],
        slow.as_bytes(),
        TIMEOUT,
    )
    .expect("slow compile");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-oneqd-cache"), Some("miss"));
    assert_eq!(
        resp.header("x-oneqd-request-id"),
        Some("triage-slow-1"),
        "the id the exemplar will carry is echoed on the response"
    );

    // Step 1 — the scrape surface names the offender. The end-to-end
    // histogram closes when the last response byte flushes (an instant
    // after the client reads it), so poll.
    let deadline = Instant::now() + TIMEOUT;
    loop {
        let metrics =
            http::request(addr, "GET", "/v1/metrics", b"", TIMEOUT).expect("GET /v1/metrics");
        let body = String::from_utf8_lossy(&metrics.body).into_owned();
        if body.contains("# {request_id=\"triage-slow-1\"}") {
            assert!(
                body.contains("oneqd_compile_partitions_total"),
                "compiler-internals counters are exposed: {body}"
            );
            assert!(
                body.contains("oneqd_build_info{version=\""),
                "build info gauge is exposed"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slow request never surfaced as an exemplar: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Step 2 — the exemplar's id resolves to the full trace, and the
    // trace carries the per-partition compiler profile as span attrs.
    let deadline = Instant::now() + TIMEOUT;
    let trace_body = loop {
        let trace = http::request(addr, "GET", "/v1/traces/triage-slow-1", b"", TIMEOUT)
            .expect("GET /v1/traces/{id}");
        if trace.status == 200 {
            break String::from_utf8(trace.body).expect("trace is utf-8");
        }
        assert!(
            Instant::now() < deadline,
            "trace never reached the ring (status {})",
            trace.status
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        trace_body.contains("\"request_id\": \"triage-slow-1\""),
        "{trace_body}"
    );
    assert!(
        trace_body.contains("\"name\": \"compile.mapping.partition\""),
        "per-partition profile spans present: {trace_body}"
    );
    for attr in [
        "\"bfs_searches\":",
        "\"bfs_expansions\":",
        "\"seed_scans\":",
        "\"seed_scan_radius_max\":",
        "\"occupancy_peak\":",
        "\"scratch_grows\":",
        "\"scratch_reuses\":",
        "\"routing_cells\":",
        "\"fusion_graph_ns\":",
    ] {
        assert!(
            trace_body.contains(attr),
            "profile attribute {attr} missing from {trace_body}"
        );
    }

    // Step 3 — the filtered list finds the same record and the filters
    // actually constrain it.
    let list = http::request(
        addr,
        "GET",
        "/v1/traces?route=/v1/compile&status=200&min_ms=50&limit=10",
        b"",
        TIMEOUT,
    )
    .expect("GET /v1/traces with filters");
    assert_eq!(list.status, 200);
    let list = String::from_utf8(list.body).expect("list is utf-8");
    assert!(list.contains("\"schema\": \"oneqd-traces/v1\""), "{list}");
    assert!(list.contains("\"request_id\": \"triage-slow-1\""), "{list}");
    assert!(
        !list.contains("\"route\": \"/v1/metrics\""),
        "route filter holds: {list}"
    );
    let bad = http::request(addr, "GET", "/v1/traces?limit=banana", b"", TIMEOUT)
        .expect("GET /v1/traces with a bad limit");
    assert_eq!(bad.status, 400, "unparseable filters are rejected");
    let missing = http::request(addr, "GET", "/v1/traces/no-such-id", b"", TIMEOUT)
        .expect("GET /v1/traces/{unknown}");
    assert_eq!(missing.status, 404);

    // Step 4 — the stats `slowest` table ranks the offender first.
    let stats = http::request(addr, "GET", "/v1/stats", b"", TIMEOUT).expect("GET /v1/stats");
    let stats = String::from_utf8(stats.body).expect("stats is utf-8");
    assert!(stats.contains("\"schema\": \"oneqd-stats/v6\""), "{stats}");
    let slowest = &stats[stats
        .find("\"slowest\"")
        .expect("stats carries a slowest block")..];
    assert!(
        slowest.contains("\"request_id\": \"triage-slow-1\""),
        "slowest table names the offender: {stats}"
    );
    assert!(
        slowest.find("triage-slow-1").expect("offender present")
            < slowest.find("triage-fast-1").unwrap_or(usize::MAX),
        "the slow compile outranks the fast one: {slowest}"
    );

    send_sigterm(&child);
    assert_eq!(child.wait().expect("wait for daemon").code(), Some(0));
}

#[test]
fn daemon_rejects_bad_flags_with_usage_exit() {
    let output = Command::new(env!("CARGO_BIN_EXE_oneqd"))
        .args(["--workers", "zero"])
        .output()
        .expect("run oneqd");
    assert_eq!(output.status.code(), Some(2));
    let output = Command::new(env!("CARGO_BIN_EXE_oneqd"))
        .args(["--frobnicate"])
        .output()
        .expect("run oneqd");
    assert_eq!(output.status.code(), Some(2));
}
