//! Lowering to the `{J(α), CZ}` universal gate set.
//!
//! The circuit→measurement-pattern translation (paper §2.2.1, ref \[46\])
//! requires circuits expressed with `J(α) = H · diag(1, e^{iα})` and CZ
//! only. This module rewrites every IR gate into that set, using the
//! identities (gate sequences written left→right in program order):
//!
//! * `H       = J(0)`
//! * `P(θ)    = J(θ) ; J(0)`  (phase gate, so `Z = P(π)`, `S = P(π/2)`,
//!   `T = P(π/4)`, `Rz(θ) ≃ P(θ)` up to global phase)
//! * `X       = J(0) ; J(π)`
//! * `Y       ≃ J(π) ; J(π)`  (up to global phase)
//! * `Rx(θ)   ≃ J(0) ; J(θ)`  (up to global phase)
//! * `CNOT(c,t) = J(0)_t ; CZ(c,t) ; J(0)_t`
//! * `SWAP    = 3 CNOTs`
//! * `CP(θ)   = P(θ/2)_a ; P(θ/2)_b ; CNOT(a,b) ; P(-θ/2)_b ; CNOT(a,b)`
//! * `CCX     = standard 7-T + 2H + 6 CNOT Clifford+T network`
//!
//! A peephole pass cancels adjacent `J(0) ; J(0)` pairs (`H·H = I`), which
//! the CNOT and Rx identities otherwise produce in long runs.

use crate::circuit::Circuit;
use crate::gate::{Gate, Qubit};
use std::f64::consts::PI;

/// Rewrites `circuit` into an equivalent circuit (up to global phase) that
/// contains only [`Gate::J`] and [`Gate::Cz`].
///
/// # Example
///
/// ```
/// use oneq_circuit::{Circuit, decompose};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1).t(1);
/// let j = decompose::to_jcz(&c);
/// assert!(j.gates().iter().all(|g| g.is_j_or_cz()));
/// ```
pub fn to_jcz(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    for gate in circuit.gates() {
        emit(&mut out, *gate);
    }
    cancel_adjacent_hh(&out)
}

fn emit(out: &mut Circuit, gate: Gate) {
    let j = |out: &mut Circuit, q: Qubit, a: f64| {
        out.push(Gate::J(q, a)).expect("qubit validated upstream");
    };
    let cz = |out: &mut Circuit, a: Qubit, b: Qubit| {
        out.push(Gate::Cz(a, b)).expect("qubit validated upstream");
    };
    let phase = |out: &mut Circuit, q: Qubit, theta: f64| {
        j(out, q, theta);
        j(out, q, 0.0);
    };
    match gate {
        Gate::J(q, a) => j(out, q, a),
        Gate::Cz(a, b) => cz(out, a, b),
        Gate::H(q) => j(out, q, 0.0),
        Gate::Z(q) => phase(out, q, PI),
        Gate::S(q) => phase(out, q, PI / 2.0),
        Gate::Sdg(q) => phase(out, q, -PI / 2.0),
        Gate::T(q) => phase(out, q, PI / 4.0),
        Gate::Tdg(q) => phase(out, q, -PI / 4.0),
        Gate::Rz(q, theta) => phase(out, q, theta),
        Gate::X(q) => {
            j(out, q, 0.0);
            j(out, q, PI);
        }
        Gate::Y(q) => {
            j(out, q, PI);
            j(out, q, PI);
        }
        Gate::Rx(q, theta) => {
            j(out, q, 0.0);
            j(out, q, theta);
        }
        Gate::Cnot { control, target } => {
            j(out, target, 0.0);
            cz(out, control, target);
            j(out, target, 0.0);
        }
        Gate::Swap(a, b) => {
            for g in [
                Gate::Cnot {
                    control: a,
                    target: b,
                },
                Gate::Cnot {
                    control: b,
                    target: a,
                },
                Gate::Cnot {
                    control: a,
                    target: b,
                },
            ] {
                emit(out, g);
            }
        }
        Gate::Cp(a, b, theta) => {
            phase(out, a, theta / 2.0);
            phase(out, b, theta / 2.0);
            emit(
                out,
                Gate::Cnot {
                    control: a,
                    target: b,
                },
            );
            phase(out, b, -theta / 2.0);
            emit(
                out,
                Gate::Cnot {
                    control: a,
                    target: b,
                },
            );
        }
        Gate::Ccx { c1, c2, target } => {
            for g in toffoli_network(c1, c2, target) {
                emit(out, g);
            }
        }
    }
}

/// The standard Clifford+T Toffoli decomposition (7 T gates, 6 CNOTs, 2 H).
fn toffoli_network(c1: Qubit, c2: Qubit, t: Qubit) -> Vec<Gate> {
    let cx = |c: Qubit, t: Qubit| Gate::Cnot {
        control: c,
        target: t,
    };
    vec![
        Gate::H(t),
        cx(c2, t),
        Gate::Tdg(t),
        cx(c1, t),
        Gate::T(t),
        cx(c2, t),
        Gate::Tdg(t),
        cx(c1, t),
        Gate::T(c2),
        Gate::T(t),
        Gate::H(t),
        cx(c1, c2),
        Gate::T(c1),
        Gate::Tdg(c2),
        cx(c1, c2),
    ]
}

/// Removes adjacent `J(0) ; J(0)` pairs on the same qubit with no
/// intervening gate on that qubit (`H·H = I`).
fn cancel_adjacent_hh(circuit: &Circuit) -> Circuit {
    // pending[q] holds the position in `kept` of an uncommitted J(0) gate.
    let mut kept: Vec<Option<Gate>> = Vec::with_capacity(circuit.gate_count());
    let mut pending: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
    for &gate in circuit.gates() {
        match gate {
            Gate::J(q, 0.0) => {
                if let Some(pos) = pending[q.index()].take() {
                    kept[pos] = None; // cancel the pair
                } else {
                    pending[q.index()] = Some(kept.len());
                    kept.push(Some(gate));
                }
            }
            _ => {
                for q in gate.qubits() {
                    pending[q.index()] = None;
                }
                kept.push(Some(gate));
            }
        }
    }
    let mut out = Circuit::new(circuit.n_qubits());
    for gate in kept.into_iter().flatten() {
        out.push(gate).expect("gates already validated");
    }
    out
}

/// Counts the J gates a circuit will lower to — this equals the number of
/// *non-input* nodes in the translated graph state (paper §2.2.1).
pub fn j_count(circuit: &Circuit) -> usize {
    to_jcz(circuit)
        .gates()
        .iter()
        .filter(|g| matches!(g, Gate::J(_, _)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_jcz(c: &Circuit) -> bool {
        c.gates().iter().all(|g| g.is_j_or_cz())
    }

    #[test]
    fn every_gate_kind_lowers() {
        let mut c = Circuit::new(3);
        c.h(0)
            .x(0)
            .y(1)
            .z(1)
            .s(2)
            .sdg(2)
            .t(0)
            .tdg(0)
            .rz(1, 0.3)
            .rx(1, 0.7)
            .j(2, 0.1)
            .cz(0, 1)
            .cnot(1, 2)
            .swap(0, 2)
            .cp(0, 1, 0.5)
            .ccx(0, 1, 2);
        let lowered = to_jcz(&c);
        assert!(all_jcz(&lowered));
        assert!(lowered.gate_count() > 0);
    }

    #[test]
    fn h_becomes_single_j0() {
        let mut c = Circuit::new(1);
        c.h(0);
        let l = to_jcz(&c);
        assert_eq!(l.gates(), &[Gate::J(Qubit::new(0), 0.0)]);
    }

    #[test]
    fn hh_cancels_to_identity() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        assert_eq!(to_jcz(&c).gate_count(), 0);
    }

    #[test]
    fn hh_does_not_cancel_across_other_gates() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let l = to_jcz(&c);
        // H; (J(pi/4); J(0)); H -> the middle J(0) cancels the trailing H,
        // leaving J(0); J(pi/4).
        assert_eq!(
            l.gates(),
            &[
                Gate::J(Qubit::new(0), 0.0),
                Gate::J(Qubit::new(0), PI / 4.0)
            ]
        );
    }

    #[test]
    fn hh_on_different_qubits_does_not_cancel() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        assert_eq!(to_jcz(&c).gate_count(), 2);
    }

    #[test]
    fn cz_between_hs_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1).h(0);
        assert_eq!(to_jcz(&c).gate_count(), 3);
    }

    #[test]
    fn cnot_lowers_to_three_gates() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let l = to_jcz(&c);
        assert_eq!(l.gate_count(), 3);
        assert!(matches!(l.gates()[1], Gate::Cz(_, _)));
    }

    #[test]
    fn consecutive_cnots_share_cancelled_hs() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).cnot(0, 1);
        // J0 CZ J0 J0 CZ J0 -> inner pair cancels -> J0 CZ CZ J0.
        assert_eq!(to_jcz(&c).gate_count(), 4);
    }

    #[test]
    fn j_count_matches_lowering() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).t(1);
        let l = to_jcz(&c);
        let js = l
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::J(_, _)))
            .count();
        assert_eq!(j_count(&c), js);
    }

    #[test]
    fn toffoli_produces_seven_t_angles() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let l = to_jcz(&c);
        let t_like = l
            .gates()
            .iter()
            .filter(|g| match g {
                Gate::J(_, a) => {
                    let r = crate::gate::normalize_angle(*a);
                    (r - PI / 4.0).abs() < 1e-9 || (r - 7.0 * PI / 4.0).abs() < 1e-9
                }
                _ => false,
            })
            .count();
        assert_eq!(t_like, 7);
    }

    use std::f64::consts::PI;
}
