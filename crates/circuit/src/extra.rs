//! Additional benchmark programs beyond the paper's Table 1 set.
//!
//! These are the algorithms the paper's §2.1 cites as the experimentally
//! demonstrated photonic one-way workloads — Grover \[33\], Deutsch–Jozsa
//! \[34\] and Simon's algorithm \[35\] — plus the GHZ-preparation and
//! quantum-phase-estimation building blocks commonly used to exercise
//! MBQC compilers.

use crate::benchmarks::qft_no_swaps;
use crate::circuit::Circuit;
use std::f64::consts::PI;

/// GHZ-state preparation on `n` qubits: `H` then a CNOT ladder.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ghz(n: usize) -> Circuit {
    assert!(n > 0, "GHZ needs at least one qubit");
    let mut c = Circuit::new(n);
    c.h(0);
    for i in 1..n {
        c.cnot(i - 1, i);
    }
    c
}

/// Grover search on `n` data qubits for the all-ones marked item, with
/// `iterations` Grover rounds (each: phase oracle + diffusion).
///
/// The oracle marks `|1...1>` with a multi-controlled Z, lowered through
/// Toffoli cascades onto `n - 2` clean ancillas (total width
/// `2n - 2` for `n >= 3`; `n` and `n + 0` qubits for `n <= 2`).
///
/// # Panics
///
/// Panics if `n == 0` or `iterations == 0`.
pub fn grover(n: usize, iterations: usize) -> Circuit {
    assert!(n > 0 && iterations > 0, "need data qubits and >= 1 round");
    let ancillas = n.saturating_sub(2);
    let mut c = Circuit::new(n + ancillas);
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..iterations {
        mcz_all_ones(&mut c, n); // oracle: flip phase of |1...1>
        for q in 0..n {
            c.h(q);
            c.x(q);
        }
        mcz_all_ones(&mut c, n); // diffusion reflection about |0...0>
        for q in 0..n {
            c.x(q);
            c.h(q);
        }
    }
    c
}

/// Multi-controlled Z on qubits `0..n`, using ancillas `n..(2n-2)`.
fn mcz_all_ones(c: &mut Circuit, n: usize) {
    match n {
        1 => {
            c.z(0);
        }
        2 => {
            c.cz(0, 1);
        }
        _ => {
            // Toffoli cascade computes AND of controls into the last
            // ancilla, a CZ applies the phase, then uncompute.
            let anc = |i: usize| n + i;
            c.ccx(0, 1, anc(0));
            for i in 2..n - 1 {
                c.ccx(i, anc(i - 2), anc(i - 1));
            }
            c.cz(n - 1, anc(n - 3));
            for i in (2..n - 1).rev() {
                c.ccx(i, anc(i - 2), anc(i - 1));
            }
            c.ccx(0, 1, anc(0));
        }
    }
}

/// Deutsch–Jozsa with a balanced inner-product oracle defined by `mask`
/// (`f(x) = mask · x`); uses `mask.len() + 1` qubits, ancilla last.
/// A constant oracle is the all-false mask.
pub fn deutsch_jozsa(mask: &[bool]) -> Circuit {
    let n = mask.len();
    let mut c = Circuit::new(n + 1);
    for q in 0..n {
        c.h(q);
    }
    c.x(n).h(n);
    for (i, &bit) in mask.iter().enumerate() {
        if bit {
            c.cnot(i, n);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Simon's algorithm for a period `s`: `2n` qubits (`n = s.len()`), with
/// the oracle `f(x) = f(x ⊕ s)` built as a copy layer plus a masked XOR
/// keyed on the first set bit of `s` (the textbook construction used in
/// the photonic demonstration \[35\]).
///
/// # Panics
///
/// Panics if `s` is empty or all-zero.
pub fn simon(s: &[bool]) -> Circuit {
    let n = s.len();
    assert!(n > 0, "period must be non-empty");
    let pivot = s
        .iter()
        .position(|&b| b)
        .expect("period must be non-zero for Simon's problem");
    let mut c = Circuit::new(2 * n);
    for q in 0..n {
        c.h(q);
    }
    // Copy register: f(x) = x for the base function.
    for q in 0..n {
        c.cnot(q, n + q);
    }
    // XOR s into the output conditioned on x_pivot, collapsing x and x⊕s.
    for (i, &bit) in s.iter().enumerate() {
        if bit {
            c.cnot(pivot, n + i);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Quantum phase estimation of the phase `theta` of a diagonal unitary
/// `U = diag(1, e^{2πi·theta})`, with `bits` counting qubits plus one
/// eigenstate qubit (prepared in `|1>`).
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn phase_estimation(bits: usize, theta: f64) -> Circuit {
    assert!(bits > 0, "need at least one counting qubit");
    let target = bits;
    let mut c = Circuit::new(bits + 1);
    c.x(target); // eigenstate |1> of the diagonal unitary
    for q in 0..bits {
        c.h(q);
    }
    // Controlled-U^(2^k) = controlled-phase of 2π·theta·2^k. With our
    // `qft_no_swaps` convention the inverse transform expects counting
    // qubit q to carry phase weight 2^q; qubit 0 then reads out as the
    // most significant fraction bit of theta.
    for q in 0..bits {
        let angle = 2.0 * PI * theta * (1u64 << q) as f64;
        c.cp(q, target, angle);
    }
    // Inverse QFT on the counting register (angles negated, reversed).
    let mut iqft = inverse_qft(bits);
    remap_and_append(&mut c, &mut iqft);
    c
}

fn inverse_qft(n: usize) -> Circuit {
    let fwd = qft_no_swaps(n);
    let mut inv = Circuit::new(n);
    for gate in fwd.gates().iter().rev() {
        let g = match *gate {
            crate::gate::Gate::H(q) => crate::gate::Gate::H(q),
            crate::gate::Gate::Cp(a, b, t) => crate::gate::Gate::Cp(a, b, -t),
            ref other => panic!("unexpected QFT gate {other}"),
        };
        inv.push(g).expect("inverse gates are valid");
    }
    inv
}

fn remap_and_append(c: &mut Circuit, sub: &mut Circuit) {
    for gate in sub.gates() {
        c.push(*gate)
            .expect("sub-circuit acts on a prefix of the wires");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn ghz_structure() {
        let c = ghz(5);
        assert_eq!(c.gate_count(), 5);
        assert_eq!(c.two_qubit_count(), 4);
    }

    #[test]
    fn grover_width_and_rounds() {
        let c = grover(4, 2);
        assert_eq!(c.n_qubits(), 6); // 4 data + 2 ancilla
        let ccx = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Ccx { .. }))
            .count();
        // Per round: oracle (3 ccx... 2 up + cz + 2 down = 4) x2 uses.
        assert_eq!(ccx, 2 * 2 * 4);
    }

    #[test]
    fn grover_small_widths() {
        assert_eq!(grover(1, 1).n_qubits(), 1);
        assert_eq!(grover(2, 1).n_qubits(), 2);
    }

    #[test]
    fn deutsch_jozsa_oracle_size() {
        let c = deutsch_jozsa(&[true, true, false, true]);
        assert_eq!(c.n_qubits(), 5);
        let cnots = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Cnot { .. }))
            .count();
        assert_eq!(cnots, 3);
    }

    #[test]
    fn simon_uses_double_register() {
        let c = simon(&[true, false, true]);
        assert_eq!(c.n_qubits(), 6);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn simon_rejects_zero_period() {
        simon(&[false, false]);
    }

    #[test]
    fn phase_estimation_width() {
        let c = phase_estimation(3, 0.125);
        assert_eq!(c.n_qubits(), 4);
        assert!(c.gate_count() > 6);
    }

    #[test]
    fn extras_lower_to_jcz() {
        for c in [
            ghz(4),
            grover(3, 1),
            deutsch_jozsa(&[true, false]),
            simon(&[true, false]),
            phase_estimation(3, 0.3),
        ] {
            let l = crate::decompose::to_jcz(&c);
            assert!(l.gates().iter().all(|g| g.is_j_or_cz()));
        }
    }
}
