//! # oneq-circuit
//!
//! Quantum-circuit intermediate representation for the OneQ compiler
//! (ISCA'23 reproduction).
//!
//! OneQ consumes circuit-model programs and lowers them to measurement
//! patterns. This crate provides:
//!
//! * the gate set and circuit IR ([`Gate`], [`Circuit`]),
//! * decomposition into the universal set `{J(α), CZ}` used by the
//!   circuit→MBQC translation (paper §2.2.1) in [`decompose`],
//! * the paper's benchmark programs (paper §7.1) in [`benchmarks`]:
//!   Quantum Fourier Transform, QAOA for maxcut on random graphs, the
//!   Cuccaro ripple-carry adder, and Bernstein–Vazirani,
//! * a round-trip-exact OpenQASM 2.0 exporter ([`Circuit::to_qasm`]),
//!   the counterpart to the `oneq-frontend` parser.
//!
//! # Example
//!
//! ```
//! use oneq_circuit::{benchmarks, decompose};
//!
//! let qft = benchmarks::qft(4);
//! let lowered = decompose::to_jcz(&qft);
//! assert!(lowered.gates().iter().all(|g| g.is_j_or_cz()));
//! ```

#![warn(missing_docs)]

pub mod benchmarks;
mod circuit;
pub mod decompose;
pub mod extra;
mod gate;
mod qasm;

pub use circuit::{Circuit, CircuitError};
pub use gate::{is_clifford_angle, normalize_angle, Angle, Gate, Qubit};
