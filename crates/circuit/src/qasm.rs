//! OpenQASM 2.0 export.
//!
//! [`Circuit::to_qasm`] renders a circuit as an OpenQASM 2.0 program over
//! a single `qreg q[n]`, using the qelib1 gate names the `oneq-frontend`
//! crate maps straight back onto the IR. The export is **round-trip
//! exact**: every angle is printed either as a `p*pi/q` expression that
//! re-evaluates to the identical `f64` bit pattern, or as Rust's
//! shortest-round-trip decimal — so `parse(to_qasm(c))` reproduces the
//! gate list bit for bit.
//!
//! The one structural exception is [`Gate::J`], which OpenQASM has no name
//! for: it exports as its definition `rz(α); h` (`J(α) = H·P(α)`), so a
//! circuit containing J gates round-trips to an *equivalent* but not
//! gate-identical program.

use crate::circuit::Circuit;
use crate::gate::{Angle, Gate};
use std::f64::consts::PI;
use std::fmt::Write as _;

impl Circuit {
    /// Renders the circuit as an OpenQASM 2.0 program.
    ///
    /// # Panics
    ///
    /// Panics if any gate angle is non-finite.
    ///
    /// # Example
    ///
    /// ```
    /// use oneq_circuit::Circuit;
    ///
    /// let mut c = Circuit::new(2);
    /// c.h(0).cnot(0, 1).cp(0, 1, std::f64::consts::PI / 4.0);
    /// let qasm = c.to_qasm();
    /// assert!(qasm.contains("OPENQASM 2.0;"));
    /// assert!(qasm.contains("cu1(pi/4) q[0], q[1];"));
    /// ```
    pub fn to_qasm(&self) -> String {
        let mut out = String::new();
        out.push_str("OPENQASM 2.0;\n");
        out.push_str("include \"qelib1.inc\";\n");
        if self.n_qubits() > 0 {
            let _ = writeln!(out, "qreg q[{}];", self.n_qubits());
        }
        for gate in self.gates() {
            match *gate {
                Gate::H(q) => {
                    let _ = writeln!(out, "h q[{}];", q.index());
                }
                Gate::X(q) => {
                    let _ = writeln!(out, "x q[{}];", q.index());
                }
                Gate::Y(q) => {
                    let _ = writeln!(out, "y q[{}];", q.index());
                }
                Gate::Z(q) => {
                    let _ = writeln!(out, "z q[{}];", q.index());
                }
                Gate::S(q) => {
                    let _ = writeln!(out, "s q[{}];", q.index());
                }
                Gate::Sdg(q) => {
                    let _ = writeln!(out, "sdg q[{}];", q.index());
                }
                Gate::T(q) => {
                    let _ = writeln!(out, "t q[{}];", q.index());
                }
                Gate::Tdg(q) => {
                    let _ = writeln!(out, "tdg q[{}];", q.index());
                }
                Gate::Rz(q, a) => {
                    let _ = writeln!(out, "rz({}) q[{}];", format_angle(a), q.index());
                }
                Gate::Rx(q, a) => {
                    let _ = writeln!(out, "rx({}) q[{}];", format_angle(a), q.index());
                }
                Gate::J(q, a) => {
                    // J(α) = H · P(α): phase first in program order.
                    let _ = writeln!(out, "rz({}) q[{}];", format_angle(a), q.index());
                    let _ = writeln!(out, "h q[{}];", q.index());
                }
                Gate::Cz(a, b) => {
                    let _ = writeln!(out, "cz q[{}], q[{}];", a.index(), b.index());
                }
                Gate::Cnot { control, target } => {
                    let _ = writeln!(out, "cx q[{}], q[{}];", control.index(), target.index());
                }
                Gate::Swap(a, b) => {
                    let _ = writeln!(out, "swap q[{}], q[{}];", a.index(), b.index());
                }
                Gate::Cp(a, b, t) => {
                    let _ = writeln!(
                        out,
                        "cu1({}) q[{}], q[{}];",
                        format_angle(t),
                        a.index(),
                        b.index()
                    );
                }
                Gate::Ccx { c1, c2, target } => {
                    let _ = writeln!(
                        out,
                        "ccx q[{}], q[{}], q[{}];",
                        c1.index(),
                        c2.index(),
                        target.index()
                    );
                }
            }
        }
        out
    }
}

/// Formats an angle so the frontend's expression evaluator reproduces the
/// exact `f64`: a `p*pi/q` form when one re-evaluates bit-identically,
/// otherwise the shortest decimal that round-trips through `str::parse`.
fn format_angle(a: Angle) -> String {
    assert!(a.is_finite(), "QASM export requires finite angles, got {a}");
    if a == 0.0 {
        return "0".to_string();
    }
    for q in [1u32, 2, 3, 4, 6, 8, 12, 16, 32, 64] {
        let scaled = a * f64::from(q) / PI;
        let p = scaled.round();
        if p == 0.0 || p.abs() > 4096.0 || (scaled - p).abs() > 1e-9 {
            continue;
        }
        let (text, value) = pi_fraction(p as i64, q);
        if value.to_bits() == a.to_bits() {
            return text;
        }
    }
    // Rust's f64 Display prints the shortest decimal that parses back to
    // the identical bits, and the frontend parses real literals with
    // `str::parse::<f64>` (negation is an exact sign flip).
    format!("{a}")
}

/// Renders `p*pi/q` the way the frontend would print it, and evaluates the
/// candidate exactly as the frontend's parser/evaluator would (unary minus
/// outermost on the leading literal, left-to-right `*` then `/`).
fn pi_fraction(p: i64, q: u32) -> (String, f64) {
    let abs = p.unsigned_abs();
    let numerator = if abs == 1 {
        PI
    } else {
        // `p*pi` parses as Mul(Int(p), Pi).
        abs as f64 * PI
    };
    let signed = if p < 0 { -numerator } else { numerator };
    let value = if q == 1 {
        signed
    } else {
        signed / f64::from(q)
    };
    let mut text = String::new();
    if p < 0 {
        text.push('-');
    }
    if abs != 1 {
        let _ = write!(text, "{abs}*");
    }
    text.push_str("pi");
    if q != 1 {
        let _ = write!(text, "/{q}");
    }
    (text, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_register() {
        let mut c = Circuit::new(3);
        c.h(0);
        let q = c.to_qasm();
        assert!(q.starts_with("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n"));
        assert!(q.contains("h q[0];"));
    }

    #[test]
    fn empty_circuit_has_no_register() {
        let q = Circuit::new(0).to_qasm();
        assert!(!q.contains("qreg"));
    }

    #[test]
    fn every_gate_kind_renders() {
        let mut c = Circuit::new(3);
        c.h(0)
            .x(0)
            .y(1)
            .z(2)
            .s(0)
            .sdg(1)
            .t(2)
            .tdg(0)
            .rz(0, PI)
            .rx(1, 0.25)
            .j(2, PI / 2.0)
            .cz(0, 1)
            .cnot(1, 2)
            .swap(0, 2)
            .cp(0, 1, PI / 8.0)
            .ccx(0, 1, 2);
        let q = c.to_qasm();
        for needle in [
            "x q[0];",
            "y q[1];",
            "z q[2];",
            "s q[0];",
            "sdg q[1];",
            "t q[2];",
            "tdg q[0];",
            "rz(pi) q[0];",
            "rx(0.25) q[1];",
            // J(pi/2) = rz(pi/2); h.
            "rz(pi/2) q[2];\nh q[2];",
            "cz q[0], q[1];",
            "cx q[1], q[2];",
            "swap q[0], q[2];",
            "cu1(pi/8) q[0], q[1];",
            "ccx q[0], q[1], q[2];",
        ] {
            assert!(q.contains(needle), "missing {needle:?} in:\n{q}");
        }
    }

    #[test]
    fn pi_fractions_reevaluate_bit_identically() {
        for (angle, expected) in [
            (PI, "pi"),
            (-PI, "-pi"),
            (PI / 2.0, "pi/2"),
            (-(PI / 2.0), "-pi/2"),
            (PI / 4.0, "pi/4"),
            (PI / 8.0, "pi/8"),
            (3.0 * PI, "3*pi"),
            ((3.0 * PI) / 4.0, "3*pi/4"),
            (-((3.0 * PI) / 4.0), "-3*pi/4"),
        ] {
            assert_eq!(format_angle(angle), expected);
        }
    }

    #[test]
    fn qft_cp_angles_render_as_pi_fractions() {
        let c = crate::benchmarks::qft_no_swaps(5);
        let q = c.to_qasm();
        assert!(q.contains("cu1(pi/2)"));
        assert!(q.contains("cu1(pi/4)"));
        assert!(q.contains("cu1(pi/8)"));
        assert!(q.contains("cu1(pi/16)"));
    }

    #[test]
    fn decimal_fallback_round_trips_via_parse() {
        for a in [0.3, -1.234567890123456, 2.5e-7, 123.456] {
            let s = format_angle(a);
            let back: f64 = s.trim_start_matches('-').parse().unwrap();
            let back = if s.starts_with('-') { -back } else { back };
            assert_eq!(back.to_bits(), a.to_bits(), "{s}");
        }
    }

    #[test]
    fn zero_angle_is_plain_zero() {
        assert_eq!(format_angle(0.0), "0");
        assert_eq!(format_angle(-0.0), "0");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_angle_panics() {
        format_angle(f64::NAN);
    }
}
