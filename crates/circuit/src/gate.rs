//! Gate set of the circuit IR.

use std::f64::consts::PI;
use std::fmt;

/// A qubit index inside a [`crate::Circuit`].
///
/// # Example
///
/// ```
/// use oneq_circuit::Qubit;
///
/// let q = Qubit::new(3);
/// assert_eq!(q.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qubit(usize);

impl Qubit {
    /// Creates a qubit handle from a raw index.
    pub fn new(index: usize) -> Self {
        Qubit(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<usize> for Qubit {
    fn from(i: usize) -> Self {
        Qubit(i)
    }
}

/// A rotation angle in radians.
pub type Angle = f64;

/// Normalizes an angle into `[0, 2π)`.
pub fn normalize_angle(a: Angle) -> Angle {
    let two_pi = 2.0 * PI;
    let mut r = a % two_pi;
    if r < 0.0 {
        r += two_pi;
    }
    // Collapse values that round to 2π back to 0.
    if (r - two_pi).abs() < 1e-12 {
        r = 0.0;
    }
    r
}

/// Returns `true` when `a` is a multiple of π/2 (a *Pauli/Clifford* angle):
/// equatorial measurements at these angles are X- or Y-basis measurements
/// and induce no adaptive dependencies (paper §4).
pub fn is_clifford_angle(a: Angle) -> bool {
    let r = normalize_angle(a);
    let step = r / (PI / 2.0);
    (step - step.round()).abs() < 1e-9
}

/// The gate set of the IR.
///
/// The set is chosen to cover the paper's benchmarks; everything lowers to
/// the universal set `{J(α), CZ}` via [`crate::decompose::to_jcz`], where
/// `J(α) = 1/√2 [[1, e^{iα}], [1, -e^{iα}]]` (paper §2.2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard; equals `J(0)`.
    H(Qubit),
    /// Pauli X.
    X(Qubit),
    /// Pauli Y.
    Y(Qubit),
    /// Pauli Z.
    Z(Qubit),
    /// Phase gate S = diag(1, i).
    S(Qubit),
    /// Inverse phase gate S† = diag(1, -i).
    Sdg(Qubit),
    /// T = diag(1, e^{iπ/4}).
    T(Qubit),
    /// T† = diag(1, e^{-iπ/4}).
    Tdg(Qubit),
    /// Z-rotation: diag(1, e^{iθ}) up to global phase.
    Rz(Qubit, Angle),
    /// X-rotation.
    Rx(Qubit, Angle),
    /// The MBQC-native J gate: `J(α) = H · diag(1, e^{iα})`.
    J(Qubit, Angle),
    /// Controlled-Z (symmetric).
    Cz(Qubit, Qubit),
    /// Controlled-X.
    Cnot {
        /// Control qubit.
        control: Qubit,
        /// Target qubit.
        target: Qubit,
    },
    /// Swap two qubits.
    Swap(Qubit, Qubit),
    /// Controlled-phase: diag(1,1,1,e^{iθ}) (used by QFT).
    Cp(Qubit, Qubit, Angle),
    /// Toffoli (CCX); used by the ripple-carry adder.
    Ccx {
        /// First control.
        c1: Qubit,
        /// Second control.
        c2: Qubit,
        /// Target.
        target: Qubit,
    },
}

impl Gate {
    /// The qubits this gate acts on, in a fixed order.
    pub fn qubits(&self) -> Vec<Qubit> {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rz(q, _)
            | Gate::Rx(q, _)
            | Gate::J(q, _) => vec![q],
            Gate::Cz(a, b) | Gate::Swap(a, b) | Gate::Cp(a, b, _) => vec![a, b],
            Gate::Cnot { control, target } => vec![control, target],
            Gate::Ccx { c1, c2, target } => vec![c1, c2, target],
        }
    }

    /// Number of qubits the gate acts on.
    pub fn arity(&self) -> usize {
        self.qubits().len()
    }

    /// `true` for gates acting on two or more qubits.
    pub fn is_multi_qubit(&self) -> bool {
        self.arity() > 1
    }

    /// `true` if the gate is already in the `{J(α), CZ}` universal set.
    pub fn is_j_or_cz(&self) -> bool {
        matches!(self, Gate::J(_, _) | Gate::Cz(_, _))
    }

    /// `true` if the gate is a Clifford operation.
    ///
    /// Rotations count as Clifford when their angle is a multiple of π/2.
    pub fn is_clifford(&self) -> bool {
        match *self {
            Gate::T(_) | Gate::Tdg(_) | Gate::Ccx { .. } => false,
            Gate::Rz(_, a) | Gate::Rx(_, a) | Gate::J(_, a) | Gate::Cp(_, _, a) => {
                is_clifford_angle(a)
            }
            _ => true,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::H(q) => write!(f, "H {q}"),
            Gate::X(q) => write!(f, "X {q}"),
            Gate::Y(q) => write!(f, "Y {q}"),
            Gate::Z(q) => write!(f, "Z {q}"),
            Gate::S(q) => write!(f, "S {q}"),
            Gate::Sdg(q) => write!(f, "Sdg {q}"),
            Gate::T(q) => write!(f, "T {q}"),
            Gate::Tdg(q) => write!(f, "Tdg {q}"),
            Gate::Rz(q, a) => write!(f, "Rz({a:.4}) {q}"),
            Gate::Rx(q, a) => write!(f, "Rx({a:.4}) {q}"),
            Gate::J(q, a) => write!(f, "J({a:.4}) {q}"),
            Gate::Cz(a, b) => write!(f, "CZ {a} {b}"),
            Gate::Cnot { control, target } => write!(f, "CNOT {control} {target}"),
            Gate::Swap(a, b) => write!(f, "SWAP {a} {b}"),
            Gate::Cp(a, b, t) => write!(f, "CP({t:.4}) {a} {b}"),
            Gate::Ccx { c1, c2, target } => write!(f, "CCX {c1} {c2} {target}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_roundtrip() {
        assert_eq!(Qubit::from(4).index(), 4);
        assert_eq!(format!("{}", Qubit::new(2)), "q2");
    }

    #[test]
    fn normalize_angle_wraps() {
        assert!((normalize_angle(2.5 * PI) - 0.5 * PI).abs() < 1e-12);
        assert!((normalize_angle(-0.5 * PI) - 1.5 * PI).abs() < 1e-12);
        assert_eq!(normalize_angle(0.0), 0.0);
        assert_eq!(normalize_angle(2.0 * PI), 0.0);
    }

    #[test]
    fn clifford_angles() {
        assert!(is_clifford_angle(0.0));
        assert!(is_clifford_angle(PI / 2.0));
        assert!(is_clifford_angle(PI));
        assert!(is_clifford_angle(-PI / 2.0));
        assert!(is_clifford_angle(7.0 * PI));
        assert!(!is_clifford_angle(PI / 4.0));
        assert!(!is_clifford_angle(0.3));
    }

    #[test]
    fn gate_qubits_and_arity() {
        let g = Gate::Cnot {
            control: Qubit::new(0),
            target: Qubit::new(1),
        };
        assert_eq!(g.arity(), 2);
        assert!(g.is_multi_qubit());
        assert!(!Gate::H(Qubit::new(0)).is_multi_qubit());
        assert_eq!(
            Gate::Ccx {
                c1: Qubit::new(0),
                c2: Qubit::new(1),
                target: Qubit::new(2)
            }
            .arity(),
            3
        );
    }

    #[test]
    fn clifford_classification() {
        assert!(Gate::H(Qubit::new(0)).is_clifford());
        assert!(Gate::Cz(Qubit::new(0), Qubit::new(1)).is_clifford());
        assert!(!Gate::T(Qubit::new(0)).is_clifford());
        assert!(Gate::Rz(Qubit::new(0), PI).is_clifford());
        assert!(!Gate::Rz(Qubit::new(0), PI / 4.0).is_clifford());
        assert!(Gate::J(Qubit::new(0), PI / 2.0).is_clifford());
        assert!(!Gate::Ccx {
            c1: Qubit::new(0),
            c2: Qubit::new(1),
            target: Qubit::new(2)
        }
        .is_clifford());
    }

    #[test]
    fn j_and_cz_detection() {
        assert!(Gate::J(Qubit::new(0), 0.1).is_j_or_cz());
        assert!(Gate::Cz(Qubit::new(0), Qubit::new(1)).is_j_or_cz());
        assert!(!Gate::H(Qubit::new(0)).is_j_or_cz());
    }

    #[test]
    fn display_is_nonempty() {
        for g in [
            Gate::H(Qubit::new(0)),
            Gate::Rz(Qubit::new(1), 0.25),
            Gate::Cnot {
                control: Qubit::new(0),
                target: Qubit::new(1),
            },
        ] {
            assert!(!format!("{g}").is_empty());
        }
    }
}
