//! The paper's benchmark programs (paper §7.1, Table 1).
//!
//! * [`qft`] — Quantum Fourier Transform (building block),
//! * [`qaoa_maxcut`] / [`qaoa_maxcut_random`] — QAOA for graph maxcut on
//!   random graphs with half of all possible edges,
//! * [`rca`] — the Cuccaro ripple-carry adder \[51\],
//! * [`bv`] / [`bv_random`] — Bernstein–Vazirani with an explicit or
//!   random secret string (roughly half ones, as in the paper).

use crate::circuit::Circuit;
use rand::Rng;
use std::f64::consts::PI;

/// Quantum Fourier Transform on `n` qubits, with the final qubit-reversal
/// SWAP network included.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn qft(n: usize) -> Circuit {
    assert!(n > 0, "QFT needs at least one qubit");
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.h(i);
        for j in (i + 1)..n {
            let angle = PI / (1u64 << (j - i)) as f64;
            c.cp(j, i, angle);
        }
    }
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
    c
}

/// QFT without the final SWAP network (useful when the caller reindexes).
pub fn qft_no_swaps(n: usize) -> Circuit {
    assert!(n > 0, "QFT needs at least one qubit");
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.h(i);
        for j in (i + 1)..n {
            let angle = PI / (1u64 << (j - i)) as f64;
            c.cp(j, i, angle);
        }
    }
    c
}

/// Single-layer (p = 1) QAOA maxcut circuit for an explicit edge list.
///
/// Per edge `(u, v)`: the phase separator `e^{-iγ Z_u Z_v}` as
/// `CNOT(u,v); Rz(2γ)(v); CNOT(u,v)`, followed by the mixer `Rx(2β)` on
/// every qubit. Qubits start in `|+>` via a Hadamard layer.
///
/// # Panics
///
/// Panics if an edge endpoint is `>= n`.
pub fn qaoa_maxcut(n: usize, edges: &[(usize, usize)], gamma: f64, beta: f64) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge endpoint out of range");
        c.cnot(u, v);
        c.rz(v, 2.0 * gamma);
        c.cnot(u, v);
    }
    for q in 0..n {
        c.rx(q, 2.0 * beta);
    }
    c
}

/// QAOA maxcut on the paper's random instance family: a graph over `n`
/// nodes with half of all possible edges selected at random.
pub fn qaoa_maxcut_random<R: Rng>(n: usize, rng: &mut R) -> Circuit {
    let max_edges = n * (n - 1) / 2;
    let target = max_edges / 2;
    let mut all: Vec<(usize, usize)> = Vec::with_capacity(max_edges);
    for i in 0..n {
        for j in (i + 1)..n {
            all.push((i, j));
        }
    }
    // Partial Fisher-Yates: draw `target` distinct edges.
    for i in 0..target {
        let pick = rng.gen_range(i..all.len());
        all.swap(i, pick);
    }
    all.truncate(target);
    let gamma = rng.gen_range(0.0..PI);
    let beta = rng.gen_range(0.0..PI);
    qaoa_maxcut(n, &all, gamma, beta)
}

/// Cuccaro ripple-carry adder \[51\] sized to a total budget of `n_qubits`.
///
/// The adder computes `b := a + b` on two `k`-bit registers using one
/// ancilla (input carry) and one carry-out qubit, so it uses `2k + 2`
/// qubits with `k = (n_qubits - 2) / 2`; any remainder qubit is left idle,
/// matching how the paper sizes RCA-16/25/36 by total qubit count.
///
/// Layout: qubit 0 is the input carry, qubits `1..=k` register A, qubits
/// `k+1..=2k` register B, qubit `2k+1` the carry out.
///
/// # Panics
///
/// Panics if `n_qubits < 4` (the smallest adder needs k = 1).
pub fn rca(n_qubits: usize) -> Circuit {
    assert!(n_qubits >= 4, "ripple-carry adder needs at least 4 qubits");
    let k = (n_qubits - 2) / 2;
    let mut c = Circuit::new(n_qubits);
    let a = |i: usize| 1 + i; // a[0..k]
    let b = |i: usize| 1 + k + i; // b[0..k]
    let carry_in = 0;
    let carry_out = 2 * k + 1;

    // MAJ(c, b, a): CNOT a->b; CNOT a->c; CCX(c, b, a).
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cnot(z, y);
        c.cnot(z, x);
        c.ccx(x, y, z);
    };
    // UMA(c, b, a): CCX(c, b, a); CNOT a->c; CNOT c->b.
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.cnot(z, x);
        c.cnot(x, y);
    };

    maj(&mut c, carry_in, b(0), a(0));
    for i in 1..k {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cnot(a(k - 1), carry_out);
    for i in (1..k).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, carry_in, b(0), a(0));
    c
}

/// Bernstein–Vazirani circuit for an explicit secret string.
///
/// Uses `secret.len() + 1` qubits: the last qubit is the oracle ancilla
/// prepared in `|->`; each `true` bit contributes one CNOT into the
/// ancilla.
pub fn bv(secret: &[bool]) -> Circuit {
    let n = secret.len();
    let mut c = Circuit::new(n + 1);
    for q in 0..n {
        c.h(q);
    }
    c.x(n).h(n);
    for (i, &bit) in secret.iter().enumerate() {
        if bit {
            c.cnot(i, n);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Bernstein–Vazirani with a random secret of `len` bits, approximately
/// half of which are 1 (the paper's instance family).
pub fn bv_random<R: Rng>(len: usize, rng: &mut R) -> Circuit {
    let mut secret = vec![false; len];
    let ones = len / 2;
    secret[..ones].fill(true);
    // Fisher-Yates shuffle of the fixed-weight string.
    for i in (1..len).rev() {
        let j = rng.gen_range(0..=i);
        secret.swap(i, j);
    }
    bv(&secret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn qft_gate_counts() {
        let c = qft(4);
        // 4 H + C(4,2)=6 CP + 2 SWAP.
        let h = c.gates().iter().filter(|g| matches!(g, Gate::H(_))).count();
        let cp = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Cp(_, _, _)))
            .count();
        let sw = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Swap(_, _)))
            .count();
        assert_eq!((h, cp, sw), (4, 6, 2));
    }

    #[test]
    fn qft_cp_angles_halve() {
        let c = qft_no_swaps(3);
        let angles: Vec<f64> = c
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Cp(_, _, a) => Some(*a),
                _ => None,
            })
            .collect();
        assert!((angles[0] - PI / 2.0).abs() < 1e-12);
        assert!((angles[1] - PI / 4.0).abs() < 1e-12);
        assert!((angles[2] - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn qft_single_qubit_is_h() {
        let c = qft(1);
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn qaoa_structure() {
        let c = qaoa_maxcut(3, &[(0, 1), (1, 2)], 0.4, 0.7);
        // 3 H + 2 * (2 CNOT + 1 Rz) + 3 Rx = 12 gates.
        assert_eq!(c.gate_count(), 12);
        assert_eq!(c.two_qubit_count(), 4);
    }

    #[test]
    fn qaoa_random_has_half_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = qaoa_maxcut_random(8, &mut rng);
        let cnots = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Cnot { .. }))
            .count();
        assert_eq!(cnots, 2 * 14); // 14 edges, 2 CNOTs each
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qaoa_rejects_bad_edge() {
        qaoa_maxcut(2, &[(0, 5)], 0.1, 0.1);
    }

    #[test]
    fn rca_uses_expected_toffolis() {
        let c = rca(16); // k = 7
        let ccx = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Ccx { .. }))
            .count();
        assert_eq!(ccx, 14); // 2 per bit (MAJ + UMA)
        assert_eq!(c.n_qubits(), 16);
    }

    #[test]
    fn rca_odd_width_leaves_idle_qubit() {
        let c = rca(25); // k = 11, uses 24 qubits, one idle
        assert_eq!(c.n_qubits(), 25);
        let max_q = c
            .gates()
            .iter()
            .flat_map(|g| g.qubits())
            .map(|q| q.index())
            .max()
            .unwrap();
        assert_eq!(max_q, 23);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn rca_rejects_tiny_widths() {
        rca(3);
    }

    #[test]
    fn bv_counts_match_secret_weight() {
        let c = bv(&[true, false, true, true]);
        assert_eq!(c.n_qubits(), 5);
        let cnots = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Cnot { .. }))
            .count();
        assert_eq!(cnots, 3);
    }

    #[test]
    fn bv_random_has_half_ones() {
        let mut rng = StdRng::seed_from_u64(9);
        let c = bv_random(10, &mut rng);
        let cnots = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Cnot { .. }))
            .count();
        assert_eq!(cnots, 5);
    }

    #[test]
    fn benchmarks_lower_to_jcz() {
        use crate::decompose::to_jcz;
        let mut rng = StdRng::seed_from_u64(4);
        for c in [
            qft(5),
            qaoa_maxcut_random(5, &mut rng),
            rca(8),
            bv_random(5, &mut rng),
        ] {
            let l = to_jcz(&c);
            assert!(l.gates().iter().all(|g| g.is_j_or_cz()));
        }
    }
}
