//! The circuit container and builder API.

use crate::gate::{Angle, Gate, Qubit};
use std::fmt;

/// Errors produced when constructing circuits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate referenced a qubit outside `0..n_qubits`.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: Qubit,
        /// The circuit width.
        n_qubits: usize,
    },
    /// A multi-qubit gate referenced the same qubit twice.
    DuplicateQubit(Qubit),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit {qubit} out of range for {n_qubits}-qubit circuit")
            }
            CircuitError::DuplicateQubit(q) => {
                write!(f, "multi-qubit gate uses qubit {q} more than once")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// A quantum circuit: an ordered gate list over `n_qubits` wires.
///
/// The builder methods (`h`, `cz`, `cnot`, ...) validate qubit indices and
/// panic on misuse; [`Circuit::push`] is the fallible variant.
///
/// # Example
///
/// ```
/// use oneq_circuit::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1).t(1);
/// assert_eq!(c.gate_count(), 3);
/// assert_eq!(c.two_qubit_count(), 1);
/// assert_eq!(c.depth(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` wires.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Circuit width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The gate list in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of gates acting on two or more qubits.
    pub fn two_qubit_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_multi_qubit()).count()
    }

    /// Appends a gate after validating its qubits.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] or
    /// [`CircuitError::DuplicateQubit`] when the gate is malformed for this
    /// circuit.
    pub fn push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        let qs = gate.qubits();
        for &q in &qs {
            if q.index() >= self.n_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    n_qubits: self.n_qubits,
                });
            }
        }
        for (i, &q) in qs.iter().enumerate() {
            if qs[i + 1..].contains(&q) {
                return Err(CircuitError::DuplicateQubit(q));
            }
        }
        self.gates.push(gate);
        Ok(())
    }

    fn push_ok(&mut self, gate: Gate) -> &mut Self {
        self.push(gate).expect("builder gate must be valid");
        self
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push_ok(Gate::H(Qubit::new(q)))
    }

    /// Appends a Pauli X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push_ok(Gate::X(Qubit::new(q)))
    }

    /// Appends a Pauli Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push_ok(Gate::Y(Qubit::new(q)))
    }

    /// Appends a Pauli Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push_ok(Gate::Z(Qubit::new(q)))
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push_ok(Gate::S(Qubit::new(q)))
    }

    /// Appends an S† gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push_ok(Gate::Sdg(Qubit::new(q)))
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push_ok(Gate::T(Qubit::new(q)))
    }

    /// Appends a T† gate.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push_ok(Gate::Tdg(Qubit::new(q)))
    }

    /// Appends an Rz rotation.
    pub fn rz(&mut self, q: usize, angle: Angle) -> &mut Self {
        self.push_ok(Gate::Rz(Qubit::new(q), angle))
    }

    /// Appends an Rx rotation.
    pub fn rx(&mut self, q: usize, angle: Angle) -> &mut Self {
        self.push_ok(Gate::Rx(Qubit::new(q), angle))
    }

    /// Appends a J(α) gate.
    pub fn j(&mut self, q: usize, angle: Angle) -> &mut Self {
        self.push_ok(Gate::J(Qubit::new(q), angle))
    }

    /// Appends a CZ gate.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push_ok(Gate::Cz(Qubit::new(a), Qubit::new(b)))
    }

    /// Appends a CNOT gate.
    pub fn cnot(&mut self, control: usize, target: usize) -> &mut Self {
        self.push_ok(Gate::Cnot {
            control: Qubit::new(control),
            target: Qubit::new(target),
        })
    }

    /// Appends a SWAP gate.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push_ok(Gate::Swap(Qubit::new(a), Qubit::new(b)))
    }

    /// Appends a controlled-phase gate.
    pub fn cp(&mut self, a: usize, b: usize, angle: Angle) -> &mut Self {
        self.push_ok(Gate::Cp(Qubit::new(a), Qubit::new(b), angle))
    }

    /// Appends a Toffoli gate.
    pub fn ccx(&mut self, c1: usize, c2: usize, target: usize) -> &mut Self {
        self.push_ok(Gate::Ccx {
            c1: Qubit::new(c1),
            c2: Qubit::new(c2),
            target: Qubit::new(target),
        })
    }

    /// Appends all gates of `other` (which must have the same width).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn extend_from(&mut self, other: &Circuit) {
        assert_eq!(self.n_qubits, other.n_qubits, "circuit widths must match");
        self.gates.extend_from_slice(&other.gates);
    }

    /// Circuit depth: the length of the longest chain of gates sharing
    /// qubits (each gate occupies one time step on all of its qubits).
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let level = g
                .qubits()
                .iter()
                .map(|q| frontier[q.index()])
                .max()
                .unwrap_or(0)
                + 1;
            for q in g.qubits() {
                frontier[q.index()] = level;
            }
            depth = depth.max(level);
        }
        depth
    }

    /// Count of non-Clifford gates (these induce adaptive measurements in
    /// MBQC; paper §4).
    pub fn non_clifford_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.is_clifford()).count()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.n_qubits)?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cz(1, 2).t(2);
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.two_qubit_count(), 2);
        assert_eq!(c.n_qubits(), 3);
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut c = Circuit::new(1);
        let err = c.push(Gate::H(Qubit::new(5))).unwrap_err();
        assert_eq!(
            err,
            CircuitError::QubitOutOfRange {
                qubit: Qubit::new(5),
                n_qubits: 1
            }
        );
    }

    #[test]
    fn duplicate_qubit_is_rejected() {
        let mut c = Circuit::new(2);
        let err = c
            .push(Gate::Cnot {
                control: Qubit::new(0),
                target: Qubit::new(0),
            })
            .unwrap_err();
        assert_eq!(err, CircuitError::DuplicateQubit(Qubit::new(0)));
    }

    #[test]
    #[should_panic(expected = "valid")]
    fn builder_panics_on_bad_qubit() {
        Circuit::new(1).cz(0, 3);
    }

    #[test]
    fn depth_tracks_qubit_conflicts() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // parallel: depth 1
        assert_eq!(c.depth(), 1);
        c.cnot(0, 1); // depth 2
        c.cnot(1, 2); // depth 3 (shares qubit 1)
        assert_eq!(c.depth(), 3);
        c.h(0); // fits at level 3
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn empty_circuit_depth_is_zero() {
        assert_eq!(Circuit::new(4).depth(), 0);
    }

    #[test]
    fn non_clifford_count() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).rz(1, PI / 4.0).rz(1, PI).cnot(0, 1);
        assert_eq!(c.non_clifford_count(), 2);
    }

    #[test]
    fn extend_from_appends() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cnot(0, 1);
        a.extend_from(&b);
        assert_eq!(a.gate_count(), 2);
    }

    #[test]
    #[should_panic(expected = "widths")]
    fn extend_from_rejects_width_mismatch() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        a.extend_from(&b);
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1);
        let s = format!("{c}");
        assert!(s.contains("H q0"));
        assert!(s.contains("CZ q0 q1"));
    }
}
