// Seeded violations for the surface rule: a metric family and a route
// literal that the fixture docs do not document.
pub const FAMILIES: [&str; 2] = ["oneqd_documented_total", "oneqd_phantom_total"];
pub const ROUTES: [&str; 2] = ["/v1/documented", "/v1/phantom"];
