// The compliant counterpart: one registered unsafe block with a SAFETY
// comment, one registered atomic with an ORDERING comment, and
// loop-free allocation — every rule must stay silent here.
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn read(counter: &AtomicU64) -> u64 {
    // ORDERING: fixture — a monotonic counter read with no ordering
    // obligations to other memory.
    counter.load(Ordering::Relaxed)
}

pub fn poke(p: *mut u8) {
    // SAFETY: fixture — never compiled or run.
    unsafe {
        *p = 0;
    }
}

pub fn sizes(m: &HashMap<u32, u32>, xs: &[u32]) -> Vec<u32> {
    // Allocation outside any loop is fine, and `len` is not iteration.
    let mut copy = xs.to_vec();
    copy.push(m.len() as u32);
    copy
}
