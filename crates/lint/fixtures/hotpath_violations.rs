// Seeded violations for the hot-path rule: hashed-map iteration and
// per-iteration allocation idioms in a registered hot-path module.
use std::collections::HashMap;

pub struct State {
    pub placement: HashMap<u32, (usize, u32)>,
}

pub fn scan(state: &State, xs: &[u32]) -> usize {
    let mut total = 0;
    // Violation 1: iterating a hashed map on the hot path.
    for (_k, v) in state.placement.iter() {
        total += v.0;
    }
    for x in xs {
        // Violation 2: a fresh allocation every iteration.
        let copy = xs.to_vec();
        total += copy.len() + *x as usize;
        // Violation 3: collect::<Vec<_>> inside the loop.
        let doubled = xs.iter().map(|v| v * 2).collect::<Vec<u32>>();
        total += doubled.len();
    }
    total
}
