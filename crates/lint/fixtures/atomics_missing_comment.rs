// Seeded violation: a registered atomic memory-order operand without a
// justification marker comment in the preceding window.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::AcqRel)
}
