// Seeded violation: an `unsafe` block in a file with no [[carveout]]
// registry entry. The SAFETY comment is present so only the
// registration rule fires.
pub fn poke(p: *mut u8) {
    // SAFETY: fixture — never compiled or run.
    unsafe {
        *p = 0;
    }
}
