// Seeded violation: an atomic Ordering operand in a module with no
// [[atomics]] registry entry. The ORDERING comment is present so only
// the registration rule fires. (Also reused by the count-drift
// scenario, which registers this file with the wrong count.)
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    // ORDERING: fixture — never compiled or run.
    counter.fetch_add(1, Ordering::Relaxed)
}
