// Seeded violation: a registered carveout block whose justification
// marker comment is absent from the preceding window.
pub fn poke(p: *mut u8) {
    unsafe {
        *p = 0;
    }
}
