// Seeded violation: two `unsafe` occurrences where the registry entry
// allows exactly one — the "a new unsafe block snuck into a registered
// file" case.
pub fn poke(p: *mut u8, q: *mut u8) {
    // SAFETY: fixture — never compiled or run.
    unsafe {
        *p = 0;
    }
    // SAFETY: fixture — never compiled or run.
    unsafe {
        *q = 0;
    }
}
