//! `oneq-lint` — run the workspace invariant checker.
//!
//! ```text
//! oneq-lint [--root PATH]      lint the workspace tree (default: auto-detect)
//! oneq-lint --self-test        run the seeded-violation fixture scenarios
//! oneq-lint --print-registry   print a registry skeleton for the current tree
//! oneq-lint --print-schema-fnv print the v5 snapshot fingerprint to pin
//! ```
//!
//! Exit codes: 0 clean, 1 violations (or failed self-test scenarios),
//! 2 usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use oneq_lint::{lex_tree, load_docs, observed_counts, registry, run, self_test, surface, walk};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut mode = Mode::Lint;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--self-test" => mode = Mode::SelfTest,
            "--print-registry" => mode = Mode::PrintRegistry,
            "--print-schema-fnv" => mode = Mode::PrintSchemaFnv,
            "--help" | "-h" => {
                print!("{}", HELP);
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| walk::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage("no workspace root found; pass --root"),
    };

    match mode {
        Mode::Lint => match run(&root) {
            Ok(report) => {
                for v in &report.violations {
                    println!("{v}");
                }
                println!(
                    "oneq-lint: {} file(s), {} unsafe site(s), {} atomic ordering site(s), {} violation(s)",
                    report.files_scanned,
                    report.unsafe_sites,
                    report.atomics_sites,
                    report.violations.len()
                );
                if report.violations.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => fail(&e),
        },
        Mode::SelfTest => {
            // The fixtures live next to the crate, not the invocation
            // directory: resolve through the workspace root.
            let fixtures = root.join("crates/lint/fixtures");
            match self_test(&fixtures) {
                Ok(scenarios) => {
                    let mut failed = 0;
                    for s in &scenarios {
                        println!(
                            "{} {}: {}",
                            if s.passed { "PASS" } else { "FAIL" },
                            s.name,
                            s.detail
                        );
                        if !s.passed {
                            failed += 1;
                        }
                    }
                    println!(
                        "oneq-lint --self-test: {}/{} scenario(s) passed",
                        scenarios.len() - failed,
                        scenarios.len()
                    );
                    if failed == 0 {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => fail(&e),
            }
        }
        Mode::PrintRegistry => match lex_tree(&root) {
            Ok(files) => {
                let (carveouts, atomics) = observed_counts(&files);
                let hotpath = vec![
                    "crates/hardware/src/grid.rs".to_string(),
                    "crates/core/src/mapping.rs".to_string(),
                ];
                print!(
                    "{}",
                    registry::render_skeleton(&carveouts, &atomics, &hotpath)
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        },
        Mode::PrintSchemaFnv => match load_docs(&root) {
            Ok(docs) => match docs.schema_snapshots.iter().find(|(v, _)| *v == 5) {
                Some((_, text)) => {
                    let canonical = surface::canonical_schema(text);
                    println!("{:#018x}", surface::fnv1a64(canonical.as_bytes()));
                    ExitCode::SUCCESS
                }
                None => fail("lint/stats_schema_v5.txt not found"),
            },
            Err(e) => fail(&e),
        },
    }
}

enum Mode {
    Lint,
    SelfTest,
    PrintRegistry,
    PrintSchemaFnv,
}

const HELP: &str = "\
oneq-lint: workspace invariant checker (see docs/STATIC_ANALYSIS.md)

USAGE:
    oneq-lint [--root PATH]      lint the workspace tree
    oneq-lint --self-test        run seeded-violation fixture scenarios
    oneq-lint --print-registry   print a registry skeleton with observed counts
    oneq-lint --print-schema-fnv print the frozen-v5 fingerprint to pin
";

fn usage(message: &str) -> ExitCode {
    eprintln!("oneq-lint: {message}\n{HELP}");
    ExitCode::from(2)
}

fn fail(message: &str) -> ExitCode {
    eprintln!("oneq-lint: {message}");
    ExitCode::from(2)
}
