//! Workspace source discovery: every `.rs` file the rules apply to.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names excluded from the walk wherever they appear:
/// vendored shims (third-party code owns its own invariants), build
/// output, VCS internals, and fixture trees (seeded-violation inputs
/// for the self-test, plus the QASM corpus).
const EXCLUDED_DIRS: [&str; 4] = ["vendor", "target", ".git", "fixtures"];

/// A workspace source file: its root-relative path (forward slashes)
/// and contents.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// File contents.
    pub text: String,
}

/// Collects every non-excluded `.rs` file under `root`, sorted by
/// relative path so every report and registry skeleton is
/// deterministic.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    visit(root, &mut paths)?;
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = fs::read_to_string(&path)?;
        out.push(SourceFile {
            rel_path: rel,
            text,
        });
    }
    Ok(out)
}

fn visit(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if EXCLUDED_DIRS.contains(&name.as_ref()) {
                continue;
            }
            visit(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_of_this_workspace_excludes_vendor_target_and_fixtures() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root above the lint crate");
        let sources = collect_sources(&root).expect("walk succeeds");
        assert!(
            sources
                .iter()
                .any(|s| s.rel_path == "crates/lint/src/walk.rs"),
            "the walker sees itself"
        );
        for s in &sources {
            assert!(
                !s.rel_path.starts_with("vendor/")
                    && !s.rel_path.starts_with("target/")
                    && !s.rel_path.contains("/fixtures/"),
                "excluded path leaked: {}",
                s.rel_path
            );
        }
    }
}
