//! A lightweight Rust lexer: exactly enough to tell code from comments
//! and strings, with line numbers.
//!
//! The lint rules only ever ask four questions of a source file — does
//! this identifier appear in *code*, what string literals does it
//! contain, where are its comments, and how do tokens group into small
//! sequences (`Ordering :: Relaxed`, `collect :: < Vec`). None of that
//! needs a grammar, so the lexer handles the lexical layer completely
//! (nested block comments, raw/byte/c strings with hash fences, char
//! literals vs. lifetimes) and leaves everything else as plain tokens.

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// The token payload.
    pub tok: Tok,
}

/// Token payloads the lint rules distinguish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unsafe`, `Ordering`, `for`, ...).
    Ident(String),
    /// A single punctuation character (`:`, `<`, `{`, ...). Multi-char
    /// operators arrive as consecutive tokens (`::` is `:` then `:`).
    Punct(char),
    /// A string literal's raw contents (quotes and hash fences
    /// stripped, escapes left undecoded — the literals the rules match
    /// against contain none).
    Str(String),
    /// A character literal (contents irrelevant to every rule).
    Char,
    /// A lifetime (`'a`); kept distinct so it is never a char literal.
    Lifetime,
    /// A numeric literal (value irrelevant to every rule).
    Num,
}

/// A comment with the 1-based lines it spans (inclusive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// First line of the comment.
    pub start_line: u32,
    /// Last line of the comment (equal to `start_line` for `//` forms).
    pub end_line: u32,
    /// Comment text including the delimiters.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order (line, block, doc — all forms).
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True when any comment overlapping lines `[from, to]` contains
    /// `marker` (e.g. `"SAFETY:"`). This is how justification-comment
    /// windows are checked.
    pub fn comment_in_window(&self, from: u32, to: u32, marker: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.end_line >= from && c.start_line <= to && c.text.contains(marker))
    }
}

/// Lexes `src`, splitting it into code tokens and comments.
///
/// The lexer is total: any byte sequence produces *some* token stream
/// (unterminated strings or comments run to end of file), so a syntax
/// error in a fixture can never panic the linter.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    start_line: line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    start_line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => {
                let (content, ni, nl) = lex_string(src, i, line, 0);
                out.tokens.push(Token {
                    line,
                    tok: Tok::Str(content),
                });
                i = ni;
                line = nl;
            }
            b'\'' => {
                // Lifetime or char literal. `'` + ident-char + (not `'`)
                // is a lifetime; everything else is a char literal.
                let next = b.get(i + 1).copied();
                let after = b.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if n == b'_' || n.is_ascii_alphabetic())
                    && after != Some(b'\'');
                if is_lifetime {
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        line,
                        tok: Tok::Lifetime,
                    });
                } else {
                    // Char literal: skip to the closing quote, honoring
                    // a single backslash escape.
                    i += 1;
                    if i < b.len() && b[i] == b'\\' {
                        i += 2;
                    } else {
                        // A plain char may be multi-byte UTF-8.
                        i += src[i..].chars().next().map_or(1, char::len_utf8);
                    }
                    if i < b.len() && b[i] == b'\'' {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        line,
                        tok: Tok::Char,
                    });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let ident = &src[start..i];
                // String-literal prefixes: r"", b"", br#""#, c"", cr"".
                let next = b.get(i).copied();
                let is_prefix = matches!(ident, "r" | "b" | "br" | "c" | "cr");
                if is_prefix && (next == Some(b'"') || next == Some(b'#')) {
                    let mut hashes = 0usize;
                    let mut j = i;
                    while j < b.len() && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'"' {
                        let raw = ident.contains('r');
                        let (content, ni, nl) =
                            lex_string(src, j, line, if raw { hashes } else { 0 });
                        out.tokens.push(Token {
                            line,
                            tok: Tok::Str(content),
                        });
                        i = ni;
                        line = nl;
                        continue;
                    }
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Ident(ident.to_string()),
                });
            }
            c if c.is_ascii_digit() => {
                // Numbers: digits, underscores, suffixes, and a decimal
                // point only when a digit follows (so `0..n` stays a
                // number and two dots).
                while i < b.len() {
                    let d = b[i];
                    let number_dot = d == b'.'
                        && b.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && b.get(i.wrapping_sub(1)) != Some(&b'.');
                    if d == b'_' || d.is_ascii_alphanumeric() || number_dot {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Num,
                });
            }
            _ => {
                out.tokens.push(Token {
                    line,
                    tok: Tok::Punct(c as char),
                });
                i += src[i..].chars().next().map_or(1, char::len_utf8);
            }
        }
    }
    out
}

/// Consumes a string literal starting at the opening quote `b[start]`,
/// with `hashes` raw-string hash fences (0 = escapes are honored).
/// Returns `(contents, next_index, next_line)`.
fn lex_string(src: &str, start: usize, mut line: u32, hashes: usize) -> (String, usize, u32) {
    let b = src.as_bytes();
    let mut i = start + 1;
    let content_start = i;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'\\' if hashes == 0 => i += 2,
            b'"' => {
                // A raw string only closes when the quote is followed by
                // the full hash fence.
                let fence_ok = (0..hashes).all(|k| b.get(i + 1 + k) == Some(&b'#'));
                if fence_ok {
                    let content = src[content_start..i].to_string();
                    return (content, i + 1 + hashes, line);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (src[content_start..].to_string(), i, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<&str> {
        l.tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_keywords_from_the_token_stream() {
        let src = r##"
// unsafe in a line comment
/* unsafe in a /* nested */ block */
let s = "unsafe in a string";
let r = r#"unsafe in a raw string"#;
let actual = unsafe { 1 };
"##;
        let lexed = lex(src);
        let unsafe_count = idents(&lexed).iter().filter(|s| **s == "unsafe").count();
        assert_eq!(unsafe_count, 1, "only the code token counts");
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn string_contents_are_captured_verbatim() {
        let lexed = lex(r#"let m = "oneqd_requests_total"; let p = "/v1/stats";"#);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, ["oneqd_requests_total", "/v1/stats"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn escaped_quote_does_not_end_a_string() {
        let lexed = lex(r#"let s = "a\"b"; let t = 'c';"#);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.tok == Tok::Str("a\\\"b".to_string())));
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = \"x\ny\";\nunsafe {}\n";
        let lexed = lex(src);
        let unsafe_tok = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("unsafe".into()))
            .unwrap();
        assert_eq!(unsafe_tok.line, 6);
        assert_eq!(lexed.comments[0].start_line, 2);
        assert_eq!(lexed.comments[0].end_line, 3);
    }

    #[test]
    fn comment_window_lookup_matches_overlap() {
        let src = "// SAFETY: fine\nunsafe {}\n";
        let lexed = lex(src);
        assert!(lexed.comment_in_window(1, 2, "SAFETY:"));
        assert!(!lexed.comment_in_window(2, 2, "SAFETY:"));
        assert!(!lexed.comment_in_window(1, 2, "ORDERING:"));
    }

    #[test]
    fn byte_and_c_strings_lex_like_strings() {
        let lexed = lex(r##"let a = b"bytes"; let b = br#"raw"bytes"#; let c = c"cstr";"##);
        let strs = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Str(_)))
            .count();
        assert_eq!(strs, 3);
    }
}
