//! The four rule families. Each check consumes lexed sources plus the
//! registry and reports [`Violation`]s; an empty report is a clean
//! tree.

use std::collections::BTreeSet;

use crate::lexer::{Lexed, Tok};
use crate::registry::Registry;

/// How close (in lines, looking upward) a `// SAFETY:` comment must be
/// to the `unsafe` token it justifies.
pub const SAFETY_WINDOW: u32 = 5;

/// How close (in lines, looking upward) an `// ORDERING:` comment must
/// be to an atomic `Ordering::*` operand. Wider than the SAFETY window
/// so one justification can cover a cluster of loads and stores on the
/// same atomics.
pub const ORDERING_WINDOW: u32 = 25;

/// The atomic ordering variants the audit counts. `std::cmp::Ordering`
/// variants (`Less`/`Equal`/`Greater`) never collide with these, so
/// sort code is naturally out of scope.
pub const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One finding: the rule family, where, and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule family id (`unsafe-registry`, `atomics-audit`,
    /// `surface-registry`, `hot-path`).
    pub rule: &'static str,
    /// Workspace-relative file (or doc) the finding is about.
    pub file: String,
    /// 1-based line, 0 when the finding is file-level.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "[{}] {}: {}", self.rule, self.file, self.message)
        } else {
            write!(
                f,
                "[{}] {}:{}: {}",
                self.rule, self.file, self.line, self.message
            )
        }
    }
}

fn violation(rule: &'static str, file: &str, line: u32, message: String) -> Violation {
    Violation {
        rule,
        file: file.to_string(),
        line,
        message,
    }
}

/// A lexed workspace file, ready for every rule.
#[derive(Debug)]
pub struct LexedFile {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Token and comment streams.
    pub lexed: Lexed,
}

/// Lines of every `unsafe` keyword token (blocks, fns, impls, traits —
/// all carve-out sites).
pub fn unsafe_sites(lexed: &Lexed) -> Vec<u32> {
    lexed
        .tokens
        .iter()
        .filter(|t| matches!(&t.tok, Tok::Ident(s) if s == "unsafe"))
        .map(|t| t.line)
        .collect()
}

/// Lines of every atomic `Ordering::Variant` path expression.
pub fn atomic_ordering_sites(lexed: &Lexed) -> Vec<u32> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !matches!(&t.tok, Tok::Ident(s) if s == "Ordering") {
            continue;
        }
        let is_path = matches!(toks.get(i + 1), Some(a) if a.tok == Tok::Punct(':'))
            && matches!(toks.get(i + 2), Some(b) if b.tok == Tok::Punct(':'));
        if !is_path {
            continue;
        }
        if let Some(Tok::Ident(v)) = toks.get(i + 3).map(|t| &t.tok) {
            if ATOMIC_ORDERINGS.contains(&v.as_str()) {
                out.push(t.line);
            }
        }
    }
    out
}

/// Rule family 1: the unsafe registry.
///
/// Every file containing `unsafe` must have a `[[carveout]]` entry with
/// the exact occurrence count; every entry must point at a file that
/// still has exactly that many occurrences; and every occurrence must
/// sit under a `// SAFETY:` comment.
pub fn check_unsafe(files: &[LexedFile], registry: &Registry) -> Vec<Violation> {
    const RULE: &str = "unsafe-registry";
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for file in files {
        let sites = unsafe_sites(&file.lexed);
        if !sites.is_empty() {
            seen.insert(file.rel_path.clone());
        }
        let entry = registry.carveouts.iter().find(|e| e.file == file.rel_path);
        match (sites.is_empty(), entry) {
            (true, _) | (false, Some(_)) => {}
            (false, None) => out.push(violation(
                RULE,
                &file.rel_path,
                sites[0],
                format!(
                    "{} unsafe occurrence(s) but no [[carveout]] entry in lint/unsafe_registry.toml",
                    sites.len()
                ),
            )),
        }
        if let Some(entry) = entry {
            if sites.len() as u64 != entry.count {
                out.push(violation(
                    RULE,
                    &file.rel_path,
                    sites.first().copied().unwrap_or(0),
                    format!(
                        "registry allows {} unsafe occurrence(s), found {}; update the carve-out deliberately",
                        entry.count,
                        sites.len()
                    ),
                ));
            }
        }
        for line in sites {
            let from = line.saturating_sub(SAFETY_WINDOW);
            if !file.lexed.comment_in_window(from, line, "SAFETY:") {
                out.push(violation(
                    RULE,
                    &file.rel_path,
                    line,
                    "unsafe occurrence without a `// SAFETY:` comment in the preceding 5 lines"
                        .to_string(),
                ));
            }
        }
    }
    for entry in &registry.carveouts {
        if !seen.contains(&entry.file) {
            out.push(violation(
                RULE,
                &entry.file,
                0,
                "stale [[carveout]] entry: file is gone or no longer contains unsafe".to_string(),
            ));
        }
    }
    out
}

/// Rule family 2: the atomics-ordering audit.
///
/// Scoped to crate sources (`crates/*/src/**`): every file using an
/// atomic `Ordering::*` operand must have an `[[atomics]]` entry with
/// the exact count, and every use must sit under an `// ORDERING:`
/// justification comment.
pub fn check_atomics(files: &[LexedFile], registry: &Registry) -> Vec<Violation> {
    const RULE: &str = "atomics-audit";
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for file in files {
        if !in_crate_sources(&file.rel_path) {
            continue;
        }
        let sites = atomic_ordering_sites(&file.lexed);
        if !sites.is_empty() {
            seen.insert(file.rel_path.clone());
        }
        let entry = registry.atomics.iter().find(|e| e.file == file.rel_path);
        if !sites.is_empty() && entry.is_none() {
            out.push(violation(
                RULE,
                &file.rel_path,
                sites[0],
                format!(
                    "{} atomic Ordering use(s) but no [[atomics]] entry in lint/unsafe_registry.toml",
                    sites.len()
                ),
            ));
        }
        if let Some(entry) = entry {
            if sites.len() as u64 != entry.count {
                out.push(violation(
                    RULE,
                    &file.rel_path,
                    sites.first().copied().unwrap_or(0),
                    format!(
                        "registry allows {} atomic Ordering use(s), found {}; re-audit and update the entry",
                        entry.count,
                        sites.len()
                    ),
                ));
            }
        }
        for line in sites {
            let from = line.saturating_sub(ORDERING_WINDOW);
            if !file.lexed.comment_in_window(from, line, "ORDERING:") {
                out.push(violation(
                    RULE,
                    &file.rel_path,
                    line,
                    "atomic Ordering use without an `// ORDERING:` comment in the preceding 25 lines"
                        .to_string(),
                ));
            }
        }
    }
    for entry in &registry.atomics {
        if !seen.contains(&entry.file) {
            out.push(violation(
                RULE,
                &entry.file,
                0,
                "stale [[atomics]] entry: file is gone or no longer uses atomic orderings"
                    .to_string(),
            ));
        }
    }
    out
}

pub(crate) fn in_crate_sources(rel_path: &str) -> bool {
    rel_path.starts_with("crates/") && rel_path.contains("/src/")
}

/// Rule family 4: the mapping hot-path lint.
///
/// Inside registry-listed hot-path files (non-test code): no iteration
/// over `HashMap`/`BTreeMap`-typed bindings, and no `.to_vec()` or
/// `collect::<Vec` inside a loop body. Preserves PR 2's dense-grid
/// invariant: the placement path never hashes and never allocates per
/// step.
pub fn check_hotpath(files: &[LexedFile], registry: &Registry) -> Vec<Violation> {
    const RULE: &str = "hot-path";
    let mut out = Vec::new();
    for entry in &registry.hotpath {
        let Some(file) = files.iter().find(|f| f.rel_path == entry.file) else {
            out.push(violation(
                RULE,
                &entry.file,
                0,
                "stale [[hotpath]] entry: file not found".to_string(),
            ));
            continue;
        };
        let toks = &file.lexed.tokens;
        let cutoff = test_module_cutoff(toks);

        // Pass 1: names declared with a map type (`x: HashMap<..>`,
        // `x: &BTreeMap<..>`), including struct fields and parameters.
        let mut map_names: BTreeSet<&str> = BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            let Tok::Ident(name) = &t.tok else { continue };
            if toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct(':')) {
                continue;
            }
            let mut j = i + 2;
            while matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('&')))
                || matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "mut")
                || matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Lifetime))
            {
                j += 1;
            }
            if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "HashMap" || s == "BTreeMap")
            {
                map_names.insert(name.as_str());
            }
        }

        // Pass 2: loop-body spans by brace depth.
        let loop_spans = loop_body_spans(toks);
        let in_loop = |idx: usize| loop_spans.iter().any(|&(a, b)| idx > a && idx < b);

        for (i, t) in toks.iter().enumerate() {
            if t.line >= cutoff {
                break;
            }
            match &t.tok {
                // `<map>.iter()` and friends.
                Tok::Ident(name)
                    if map_names.contains(name.as_str())
                        && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('.')) =>
                {
                    if let Some(Tok::Ident(m)) = toks.get(i + 2).map(|t| &t.tok) {
                        if matches!(
                            m.as_str(),
                            "iter"
                                | "iter_mut"
                                | "keys"
                                | "values"
                                | "values_mut"
                                | "drain"
                                | "into_iter"
                                | "retain"
                        ) {
                            out.push(violation(
                                RULE,
                                &file.rel_path,
                                t.line,
                                format!(
                                    "hashed-map iteration on `{name}.{m}()` in a hot-path module; use the dense-grid structures"
                                ),
                            ));
                        }
                    }
                }
                // `for .. in <map>`.
                Tok::Ident(kw) if kw == "for" => {
                    if let Some(v) = for_in_map_violation(toks, i, &map_names, &file.rel_path) {
                        out.push(v);
                    }
                }
                // Per-iteration allocation idioms.
                Tok::Ident(m)
                    if m == "to_vec"
                        && in_loop(i)
                        && toks.get(i.wrapping_sub(1)).map(|t| &t.tok)
                            == Some(&Tok::Punct('.')) =>
                {
                    out.push(violation(
                        RULE,
                        &file.rel_path,
                        t.line,
                        "`.to_vec()` inside a loop in a hot-path module; hoist a reusable buffer"
                            .to_string(),
                    ));
                }
                Tok::Ident(m) if m == "collect" && in_loop(i) => {
                    let turbofish_vec = toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                        && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                        && toks.get(i + 3).map(|t| &t.tok) == Some(&Tok::Punct('<'))
                        && matches!(toks.get(i + 4).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "Vec");
                    if turbofish_vec {
                        out.push(violation(
                            RULE,
                            &file.rel_path,
                            t.line,
                            "`collect::<Vec<_>>()` inside a loop in a hot-path module; hoist a reusable buffer"
                                .to_string(),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// First line of the file's `#[cfg(test)]` region (tests are exempt
/// from the hot-path rule), or `u32::MAX` when there is none.
fn test_module_cutoff(toks: &[crate::lexer::Token]) -> u32 {
    for (i, t) in toks.iter().enumerate() {
        if t.tok == Tok::Punct('#')
            && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('['))
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "cfg")
            && toks.get(i + 3).map(|t| &t.tok) == Some(&Tok::Punct('('))
            && matches!(toks.get(i + 4).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "test")
        {
            return t.line;
        }
    }
    u32::MAX
}

/// Token-index spans `(open_brace, close_brace)` of every `for` /
/// `while` / `loop` body.
fn loop_body_spans(toks: &[crate::lexer::Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !matches!(&t.tok, Tok::Ident(s) if s == "for" || s == "while" || s == "loop") {
            continue;
        }
        // The body is the next `{` at the current nesting level; scan
        // forward to it (loop headers contain no braces in this
        // codebase's style), then to its matching `}`.
        let Some(open) = (i + 1..toks.len()).find(|&j| toks[j].tok == Tok::Punct('{')) else {
            continue;
        };
        let mut depth = 0i32;
        let mut close = None;
        for (j, tok) in toks.iter().enumerate().skip(open) {
            match tok.tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some(close) = close {
            spans.push((open, close));
        }
    }
    spans
}

/// Checks a `for .. in ..` header for iteration directly over a
/// map-typed binding.
fn for_in_map_violation(
    toks: &[crate::lexer::Token],
    for_idx: usize,
    map_names: &BTreeSet<&str>,
    rel_path: &str,
) -> Option<Violation> {
    // Find `in` before the body's `{`.
    let mut j = for_idx + 1;
    while j < toks.len() && toks[j].tok != Tok::Punct('{') {
        if matches!(&toks[j].tok, Tok::Ident(s) if s == "in") {
            // Look at the next few tokens (skipping `&`, `mut`, `(`)
            // for a map-typed name used as the iterated expression.
            let mut k = j + 1;
            let mut hops = 0;
            while k < toks.len() && hops < 4 {
                match &toks[k].tok {
                    Tok::Punct('&') | Tok::Punct('(') => k += 1,
                    Tok::Ident(s) if s == "mut" => k += 1,
                    Tok::Ident(name) => {
                        if map_names.contains(name.as_str()) {
                            // Direct iteration only: `for x in map` /
                            // `for x in &map`, not `map.len()` arithmetic.
                            let next = toks.get(k + 1).map(|t| &t.tok);
                            let direct = matches!(next, Some(Tok::Punct('{')))
                                || next.is_none()
                                || matches!(next, Some(Tok::Punct('.')))
                                    && matches!(toks.get(k + 2).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "iter" || m == "keys" || m == "values");
                            if direct {
                                return Some(violation(
                                    "hot-path",
                                    rel_path,
                                    toks[for_idx].line,
                                    format!(
                                        "`for .. in {name}` iterates a hashed map in a hot-path module"
                                    ),
                                ));
                            }
                        }
                        k += 1;
                        hops += 1;
                    }
                    _ => break,
                }
            }
            return None;
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::registry::Entry;

    fn lexed_file(rel_path: &str, src: &str) -> LexedFile {
        LexedFile {
            rel_path: rel_path.to_string(),
            lexed: lex(src),
        }
    }

    fn entry(file: &str, count: u64) -> Entry {
        Entry {
            file: file.to_string(),
            count,
            justification: "test".to_string(),
        }
    }

    #[test]
    fn unregistered_unsafe_fires_and_registered_is_clean() {
        let src = "// SAFETY: fine\nunsafe { x() }\n";
        let files = vec![lexed_file("crates/a/src/lib.rs", src)];
        let empty = Registry::default();
        let v = check_unsafe(&files, &empty);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("no [[carveout]]"));

        let mut reg = Registry::default();
        reg.carveouts.push(entry("crates/a/src/lib.rs", 1));
        assert!(check_unsafe(&files, &reg).is_empty());
    }

    #[test]
    fn missing_safety_comment_fires_even_when_registered() {
        let files = vec![lexed_file("crates/a/src/lib.rs", "unsafe { x() }\n")];
        let mut reg = Registry::default();
        reg.carveouts.push(entry("crates/a/src/lib.rs", 1));
        let v = check_unsafe(&files, &reg);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("SAFETY:"));
    }

    #[test]
    fn count_drift_and_stale_entries_fire() {
        let src = "// SAFETY: a\nunsafe { x() }\n// SAFETY: b\nunsafe { y() }\n";
        let files = vec![lexed_file("crates/a/src/lib.rs", src)];
        let mut reg = Registry::default();
        reg.carveouts.push(entry("crates/a/src/lib.rs", 1));
        reg.carveouts.push(entry("crates/gone/src/lib.rs", 1));
        let v = check_unsafe(&files, &reg);
        assert!(v.iter().any(|v| v.message.contains("registry allows 1")));
        assert!(v.iter().any(|v| v.message.contains("stale")));
    }

    #[test]
    fn atomics_audit_counts_only_atomic_variants() {
        let src = "// ORDERING: relaxed counter\n\
                   a.load(Ordering::Relaxed);\n\
                   match x.cmp(&y) { Ordering::Less => {} _ => {} }\n";
        let files = vec![lexed_file("crates/a/src/lib.rs", src)];
        let mut reg = Registry::default();
        reg.atomics.push(entry("crates/a/src/lib.rs", 1));
        assert!(check_atomics(&files, &reg).is_empty());
    }

    #[test]
    fn atomics_outside_registered_modules_or_without_comment_fire() {
        let bare = vec![lexed_file(
            "crates/a/src/lib.rs",
            "a.store(1, Ordering::Release);\n",
        )];
        let v = check_atomics(&bare, &Registry::default());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|v| v.message.contains("no [[atomics]]")));
        assert!(v.iter().any(|v| v.message.contains("ORDERING:")));
    }

    #[test]
    fn atomics_audit_ignores_files_outside_crate_sources() {
        let files = vec![lexed_file(
            "tests/service.rs",
            "a.load(Ordering::SeqCst);\n",
        )];
        assert!(check_atomics(&files, &Registry::default()).is_empty());
    }

    #[test]
    fn hotpath_flags_map_iteration_and_loop_allocation() {
        let src = "\
struct S { placement: HashMap<u32, u32> }
fn f(s: &S, xs: &[u32]) {
    for (k, v) in s.placement.iter() {}
    for x in xs {
        let v = xs.to_vec();
        let w = xs.iter().copied().collect::<Vec<u32>>();
    }
}
";
        let files = vec![lexed_file("crates/core/src/hot.rs", src)];
        let mut reg = Registry::default();
        reg.hotpath.push(entry("crates/core/src/hot.rs", 0));
        let v = check_hotpath(&files, &reg);
        assert!(
            v.iter().any(|v| v.message.contains("hashed-map iteration")),
            "{v:?}"
        );
        assert!(v.iter().any(|v| v.message.contains("to_vec")), "{v:?}");
        assert!(v.iter().any(|v| v.message.contains("collect")), "{v:?}");
    }

    #[test]
    fn hotpath_allows_allocation_outside_loops_and_in_tests() {
        let src = "\
fn f(xs: &[u32]) -> Vec<u32> {
    let v = xs.to_vec();
    v
}
#[cfg(test)]
mod tests {
    fn g(m: &HashMap<u32, u32>, xs: &[u32]) {
        for x in m.iter() {}
        for x in xs { let _ = xs.to_vec(); }
    }
}
";
        let files = vec![lexed_file("crates/core/src/hot.rs", src)];
        let mut reg = Registry::default();
        reg.hotpath.push(entry("crates/core/src/hot.rs", 0));
        assert!(check_hotpath(&files, &reg).is_empty());
    }
}
