//! # oneq-lint — the workspace's own static-analysis pass
//!
//! Four rule families over the workspace source tree (everything
//! except `vendor/`, `target/`, and fixture dirs), each backed by a
//! checked-in registry so drift is a build failure instead of a review
//! comment:
//!
//! 1. **Unsafe registry** ([`rules::check_unsafe`]) — every `unsafe`
//!    occurrence must match a `[[carveout]]` entry in
//!    `lint/unsafe_registry.toml` (file, exact count, justification)
//!    and carry a `// SAFETY:` comment.
//! 2. **Atomics-ordering audit** ([`rules::check_atomics`]) — every
//!    atomic `Ordering::*` operand in crate sources must sit in a
//!    registered `[[atomics]]` module and carry an `// ORDERING:`
//!    justification comment.
//! 3. **Observable-surface registry** ([`surface::check_surface`]) —
//!    `oneqd_*` metric families and `/v1/*` routes extracted from
//!    source must round-trip through `docs/OBSERVABILITY.md` /
//!    `README.md`, and the `/v1/stats` schema snapshots under `lint/`
//!    must obey the append-only rule (v6 ⊃ v5, v5 frozen by
//!    fingerprint).
//! 4. **Hot-path lint** ([`rules::check_hotpath`]) — registered mapping
//!    hot-path modules may not iterate hashed maps or allocate per
//!    loop iteration (`.to_vec()`, `collect::<Vec<_>>`).
//!
//! The `oneq-lint` binary runs the pass ([`run`]) and a seeded-violation
//! self-test ([`self_test`]) proving each rule actually fires. See
//! `docs/STATIC_ANALYSIS.md` for the rule reference and registry
//! workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod registry;
pub mod rules;
pub mod surface;
pub mod walk;

use std::fs;
use std::path::Path;

use rules::{LexedFile, Violation};
use surface::SurfaceDocs;

/// The outcome of a full lint pass over a workspace tree.
#[derive(Debug)]
pub struct RunReport {
    /// Everything the rules flagged, in rule-family order.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Total `unsafe` occurrences seen (registered or not).
    pub unsafe_sites: usize,
    /// Total atomic `Ordering::*` operands seen in crate sources.
    pub atomics_sites: usize,
}

/// Reads the registry, walks the tree, and runs all four rule
/// families. `root` is the workspace root (the directory holding
/// `lint/unsafe_registry.toml`).
pub fn run(root: &Path) -> Result<RunReport, String> {
    let registry_path = root.join("lint/unsafe_registry.toml");
    let registry_text = fs::read_to_string(&registry_path)
        .map_err(|e| format!("{}: {e}", registry_path.display()))?;
    let registry = registry::parse(&registry_text).map_err(|e| e.to_string())?;

    let files = lex_tree(root)?;
    let docs = load_docs(root)?;

    let mut violations = Vec::new();
    violations.extend(rules::check_unsafe(&files, &registry));
    violations.extend(rules::check_atomics(&files, &registry));
    violations.extend(surface::check_surface(&files, &docs));
    violations.extend(rules::check_hotpath(&files, &registry));

    let unsafe_sites = files
        .iter()
        .map(|f| rules::unsafe_sites(&f.lexed).len())
        .sum();
    let atomics_sites = files
        .iter()
        .filter(|f| f.rel_path.starts_with("crates/") && f.rel_path.contains("/src/"))
        .map(|f| rules::atomic_ordering_sites(&f.lexed).len())
        .sum();
    Ok(RunReport {
        violations,
        files_scanned: files.len(),
        unsafe_sites,
        atomics_sites,
    })
}

/// Lexes every workspace source file under `root`.
pub fn lex_tree(root: &Path) -> Result<Vec<LexedFile>, String> {
    let sources =
        walk::collect_sources(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    Ok(sources
        .into_iter()
        .map(|s| LexedFile {
            rel_path: s.rel_path,
            lexed: lexer::lex(&s.text),
        })
        .collect())
}

/// Loads the docs and schema snapshots the surface rule cross-checks.
pub fn load_docs(root: &Path) -> Result<SurfaceDocs, String> {
    let read = |rel: &str| fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"));
    let mut docs = SurfaceDocs {
        observability_md: read("docs/OBSERVABILITY.md")?,
        readme_md: read("README.md")?,
        schema_snapshots: Vec::new(),
    };
    let lint_dir = root.join("lint");
    let entries = fs::read_dir(&lint_dir).map_err(|e| format!("lint/: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("lint/: {e}"))?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if let Some(version) = name
            .strip_prefix("stats_schema_v")
            .and_then(|s| s.strip_suffix(".txt"))
            .and_then(|s| s.parse::<u32>().ok())
        {
            let text = fs::read_to_string(entry.path()).map_err(|e| format!("lint/{name}: {e}"))?;
            docs.schema_snapshots.push((version, text));
        }
    }
    docs.schema_snapshots.sort_by_key(|(v, _)| *v);
    Ok(docs)
}

/// Per-file `(rel_path, site_count)` pairs.
pub type FileCounts = Vec<(String, u64)>;

/// Observed per-file counts for the `--print-registry` bootstrap.
pub fn observed_counts(files: &[LexedFile]) -> (FileCounts, FileCounts) {
    let mut carveouts = Vec::new();
    let mut atomics = Vec::new();
    for f in files {
        let u = rules::unsafe_sites(&f.lexed).len() as u64;
        if u > 0 {
            carveouts.push((f.rel_path.clone(), u));
        }
        if f.rel_path.starts_with("crates/") && f.rel_path.contains("/src/") {
            let a = rules::atomic_ordering_sites(&f.lexed).len() as u64;
            if a > 0 {
                atomics.push((f.rel_path.clone(), a));
            }
        }
    }
    (carveouts, atomics)
}

/// One self-test scenario outcome.
#[derive(Debug)]
pub struct Scenario {
    /// Scenario name (stable, used by CI logs).
    pub name: &'static str,
    /// Pass/fail.
    pub passed: bool,
    /// What the scenario observed.
    pub detail: String,
}

/// Runs the seeded-violation self-test against the fixture files in
/// `fixture_dir` (`crates/lint/fixtures`). Every rule family must fire
/// on its fixture; the harness returns one [`Scenario`] per check.
pub fn self_test(fixture_dir: &Path) -> Result<Vec<Scenario>, String> {
    let load = |name: &str| -> Result<String, String> {
        fs::read_to_string(fixture_dir.join(name)).map_err(|e| format!("fixture {name}: {e}"))
    };
    let lexed = |rel: &str, text: &str| LexedFile {
        rel_path: rel.to_string(),
        lexed: lexer::lex(text),
    };
    let entry = |file: &str, count: u64| registry::Entry {
        file: file.to_string(),
        count,
        justification: "self-test".to_string(),
    };
    let mut out = Vec::new();
    let mut scenario = |name: &'static str, violations: &[Violation], needle: &str| {
        let passed = violations.iter().any(|v| v.message.contains(needle));
        out.push(Scenario {
            name,
            passed,
            detail: if passed {
                format!(
                    "fired: {}",
                    violations
                        .iter()
                        .find(|v| v.message.contains(needle))
                        .expect("present")
                )
            } else {
                format!("expected a violation containing `{needle}`, got {violations:?}")
            },
        });
    };

    // --- unsafe registry ---------------------------------------------
    let unregistered = lexed(
        "crates/fixture/src/unregistered.rs",
        &load("unsafe_unregistered.rs")?,
    );
    let empty = registry::Registry::default();
    scenario(
        "unsafe: unregistered block fails",
        &rules::check_unsafe(std::slice::from_ref(&unregistered), &empty),
        "no [[carveout]]",
    );

    let missing_safety = lexed(
        "crates/fixture/src/missing_safety.rs",
        &load("unsafe_missing_safety.rs")?,
    );
    let mut reg = registry::Registry::default();
    reg.carveouts
        .push(entry("crates/fixture/src/missing_safety.rs", 1));
    scenario(
        "unsafe: missing SAFETY comment fails",
        &rules::check_unsafe(std::slice::from_ref(&missing_safety), &reg),
        "SAFETY:",
    );

    let drift = lexed(
        "crates/fixture/src/drift.rs",
        &load("unsafe_count_drift.rs")?,
    );
    let mut reg = registry::Registry::default();
    reg.carveouts.push(entry("crates/fixture/src/drift.rs", 1));
    scenario(
        "unsafe: count drift fails",
        &rules::check_unsafe(std::slice::from_ref(&drift), &reg),
        "registry allows 1",
    );

    let mut reg = registry::Registry::default();
    reg.carveouts
        .push(entry("crates/fixture/src/deleted.rs", 1));
    scenario(
        "unsafe: stale registry entry fails",
        &rules::check_unsafe(&[], &reg),
        "stale [[carveout]]",
    );

    // --- atomics audit -----------------------------------------------
    let atomics_unreg = lexed(
        "crates/fixture/src/atomics_unregistered.rs",
        &load("atomics_unregistered.rs")?,
    );
    scenario(
        "atomics: unregistered module fails",
        &rules::check_atomics(std::slice::from_ref(&atomics_unreg), &empty),
        "no [[atomics]]",
    );

    let atomics_bare = lexed(
        "crates/fixture/src/atomics_missing_comment.rs",
        &load("atomics_missing_comment.rs")?,
    );
    let mut reg = registry::Registry::default();
    reg.atomics
        .push(entry("crates/fixture/src/atomics_missing_comment.rs", 1));
    scenario(
        "atomics: missing ORDERING comment fails",
        &rules::check_atomics(std::slice::from_ref(&atomics_bare), &reg),
        "ORDERING:",
    );

    let mut reg = registry::Registry::default();
    reg.atomics
        .push(entry("crates/fixture/src/atomics_unregistered.rs", 3));
    scenario(
        "atomics: count drift fails",
        &rules::check_atomics(std::slice::from_ref(&atomics_unreg), &reg),
        "re-audit",
    );

    // --- observable surface ------------------------------------------
    let surface_file = lexed(
        "crates/fixture/src/surface.rs",
        &load("surface_violations.rs")?,
    );
    let docs = SurfaceDocs {
        observability_md: load("docs_observability.md")?,
        readme_md: load("docs_readme.md")?,
        schema_snapshots: vec![
            (5, load("schema_v5_bad.txt")?),
            (6, load("schema_v6_bad.txt")?),
        ],
    };
    let v = surface::check_surface(std::slice::from_ref(&surface_file), &docs);
    scenario(
        "surface: undocumented metric family fails",
        &v,
        "is not documented",
    );
    scenario("surface: undocumented route fails", &v, "route literal");
    scenario(
        "surface: schema append-only violation fails",
        &v,
        "append-only violation",
    );
    scenario(
        "surface: tampered v5 snapshot fails",
        &v,
        "frozen v5 snapshot",
    );

    // --- hot path ----------------------------------------------------
    let hot = lexed(
        "crates/fixture/src/hotpath.rs",
        &load("hotpath_violations.rs")?,
    );
    let mut reg = registry::Registry::default();
    reg.hotpath.push(registry::Entry {
        file: "crates/fixture/src/hotpath.rs".to_string(),
        count: 0,
        justification: "self-test".to_string(),
    });
    let v = rules::check_hotpath(std::slice::from_ref(&hot), &reg);
    scenario(
        "hot-path: hashed-map iteration fails",
        &v,
        "hashed-map iteration",
    );
    scenario("hot-path: .to_vec() in a loop fails", &v, "to_vec");
    scenario("hot-path: collect::<Vec> in a loop fails", &v, "collect");

    // --- clean fixture stays silent ----------------------------------
    let clean = lexed("crates/fixture/src/clean.rs", &load("clean.rs")?);
    let mut reg = registry::Registry::default();
    reg.carveouts.push(entry("crates/fixture/src/clean.rs", 1));
    reg.atomics.push(entry("crates/fixture/src/clean.rs", 1));
    reg.hotpath.push(registry::Entry {
        file: "crates/fixture/src/clean.rs".to_string(),
        count: 0,
        justification: "self-test".to_string(),
    });
    let mut clean_violations = rules::check_unsafe(std::slice::from_ref(&clean), &reg);
    clean_violations.extend(rules::check_atomics(std::slice::from_ref(&clean), &reg));
    clean_violations.extend(rules::check_hotpath(std::slice::from_ref(&clean), &reg));
    out.push(Scenario {
        name: "clean fixture produces zero violations",
        passed: clean_violations.is_empty(),
        detail: if clean_violations.is_empty() {
            "silent".to_string()
        } else {
            format!("unexpected: {clean_violations:?}")
        },
    });

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> std::path::PathBuf {
        walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root above crates/lint")
    }

    #[test]
    fn the_real_tree_is_lint_clean() {
        let report = run(&workspace_root()).expect("lint runs");
        assert!(
            report.violations.is_empty(),
            "workspace lint violations:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.files_scanned > 50, "walk found the workspace");
        assert!(report.unsafe_sites >= 3, "the known carve-outs are seen");
        assert!(report.atomics_sites > 50, "the atomics audit has scope");
    }

    #[test]
    fn every_self_test_scenario_fires() {
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let scenarios = self_test(&fixtures).expect("fixtures load");
        assert!(scenarios.len() >= 12, "all scenario families present");
        for s in &scenarios {
            assert!(s.passed, "self-test `{}` failed: {}", s.name, s.detail);
        }
    }

    #[test]
    fn deleting_a_carveout_entry_fails_the_run() {
        // The acceptance check, in-process: parse the real registry,
        // drop one carve-out, re-run the unsafe rule on the real tree.
        let root = workspace_root();
        let text = fs::read_to_string(root.join("lint/unsafe_registry.toml")).unwrap();
        let mut reg = registry::parse(&text).unwrap();
        assert!(!reg.carveouts.is_empty());
        reg.carveouts.remove(0);
        let files = lex_tree(&root).unwrap();
        let v = rules::check_unsafe(&files, &reg);
        assert!(
            v.iter().any(|v| v.message.contains("no [[carveout]]")),
            "removing a registry entry must make the pass fail: {v:?}"
        );
    }

    #[test]
    fn deleting_a_v5_schema_key_fails_the_run() {
        let root = workspace_root();
        let mut docs = load_docs(&root).unwrap();
        let (_, v5) = docs
            .schema_snapshots
            .iter_mut()
            .find(|(v, _)| *v == 5)
            .expect("v5 snapshot committed");
        let mut keys: Vec<&str> = v5
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        assert!(keys.len() > 10);
        keys.remove(0);
        *v5 = keys.join("\n");
        let files = lex_tree(&root).unwrap();
        let v = surface::check_surface(&files, &docs);
        assert!(
            v.iter().any(|v| v.message.contains("frozen v5 snapshot")),
            "deleting a v5 key must break the fingerprint pin: {v:?}"
        );
    }
}
