//! The checked-in invariant registry: `lint/unsafe_registry.toml`.
//!
//! The registry is the reviewable half of the lint: every `unsafe`
//! carve-out, every atomics-bearing module, and every hot-path module
//! is an explicit entry with a justification. The lint's job is to keep
//! the registry and the tree in exact agreement — an unsafe block (or a
//! new atomic) anywhere else fails the build, and so does a stale entry
//! whose code no longer exists.
//!
//! The file format is the small TOML subset the registry needs —
//! `[[table]]` array-of-table headers, `key = "string"` and
//! `key = integer` pairs, `#` comments — parsed by hand like every
//! other format in this workspace.

use std::collections::BTreeMap;
use std::fmt;

/// One registry entry: a file, how many occurrences it is allowed, and
/// why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// Exact number of occurrences the file must contain.
    pub count: u64,
    /// Human justification; must be non-empty.
    pub justification: String,
}

/// The parsed registry: unsafe carve-outs, atomics modules, hot-path
/// modules.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    /// `[[carveout]]` entries — files allowed to contain `unsafe`.
    pub carveouts: Vec<Entry>,
    /// `[[atomics]]` entries — files allowed to use atomic
    /// `Ordering::*` operands.
    pub atomics: Vec<Entry>,
    /// `[[hotpath]]` entries — files under the allocation/map-iteration
    /// lint (`count` is unused and fixed at 0).
    pub hotpath: Vec<Entry>,
}

/// A registry parse or validation failure, with the 1-based line.
#[derive(Debug, PartialEq, Eq)]
pub struct RegistryError {
    /// 1-based line in the registry file (0 for whole-file errors).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "registry line {}: {}", self.line, self.message)
    }
}

fn err(line: u32, message: impl Into<String>) -> RegistryError {
    RegistryError {
        line,
        message: message.into(),
    }
}

/// Parses and validates registry TOML. Duplicate files within a
/// section, missing fields, and empty justifications are errors — the
/// registry must stay unambiguous for the rules to be exact.
pub fn parse(src: &str) -> Result<Registry, RegistryError> {
    let mut registry = Registry::default();
    let mut section: Option<String> = None;
    let mut fields: BTreeMap<String, String> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut section_line = 0u32;

    let mut flush = |section: &Option<String>,
                     fields: &mut BTreeMap<String, String>,
                     counts: &mut BTreeMap<String, u64>,
                     line: u32|
     -> Result<(), RegistryError> {
        let Some(name) = section else {
            return Ok(());
        };
        let file = fields
            .remove("file")
            .ok_or_else(|| err(line, format!("[[{name}]] entry is missing `file`")))?;
        let justification = fields
            .remove("justification")
            .ok_or_else(|| err(line, format!("[[{name}]] {file}: missing `justification`")))?;
        if justification.trim().is_empty() {
            return Err(err(line, format!("[[{name}]] {file}: empty justification")));
        }
        let count = counts.remove("count").unwrap_or(0);
        if name != "hotpath" && count == 0 {
            return Err(err(
                line,
                format!("[[{name}]] {file}: `count` must be present and >= 1"),
            ));
        }
        let entry = Entry {
            file,
            count,
            justification,
        };
        let list = match name.as_str() {
            "carveout" => &mut registry.carveouts,
            "atomics" => &mut registry.atomics,
            "hotpath" => &mut registry.hotpath,
            other => return Err(err(line, format!("unknown section [[{other}]]"))),
        };
        if list.iter().any(|e| e.file == entry.file) {
            return Err(err(
                line,
                format!("[[{name}]] {}: duplicate entry", entry.file),
            ));
        }
        list.push(entry);
        fields.clear();
        counts.clear();
        Ok(())
    };

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            flush(&section, &mut fields, &mut counts, section_line)?;
            section = Some(name.trim().to_string());
            section_line = line_no;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(
                line_no,
                format!("expected `key = value`, got `{line}`"),
            ));
        };
        if section.is_none() {
            return Err(err(line_no, "key outside any [[section]]"));
        }
        let key = key.trim();
        let value = value.trim();
        if let Some(stripped) = value.strip_prefix('"') {
            let Some(text) = stripped.strip_suffix('"') else {
                return Err(err(line_no, "unterminated string value"));
            };
            fields.insert(
                key.to_string(),
                text.replace("\\\"", "\"").replace("\\\\", "\\"),
            );
        } else {
            let n: u64 = value
                .parse()
                .map_err(|_| err(line_no, format!("`{key}`: expected integer or string")))?;
            counts.insert(key.to_string(), n);
        }
    }
    flush(&section, &mut fields, &mut counts, section_line)?;
    Ok(registry)
}

/// Renders a registry skeleton for the current tree (the
/// `--print-registry` bootstrap): observed files and counts, with
/// justifications to be filled in by the author.
pub fn render_skeleton(
    carveouts: &[(String, u64)],
    atomics: &[(String, u64)],
    hotpath: &[String],
) -> String {
    let mut out = String::from(
        "# lint/unsafe_registry.toml — regenerate with `oneq-lint --print-registry`\n",
    );
    for (file, count) in carveouts {
        out.push_str(&format!(
            "\n[[carveout]]\nfile = \"{file}\"\ncount = {count}\njustification = \"TODO\"\n"
        ));
    }
    for (file, count) in atomics {
        out.push_str(&format!(
            "\n[[atomics]]\nfile = \"{file}\"\ncount = {count}\njustification = \"TODO\"\n"
        ));
    }
    for file in hotpath {
        out.push_str(&format!(
            "\n[[hotpath]]\nfile = \"{file}\"\njustification = \"TODO\"\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# a comment
[[carveout]]
file = "crates/service/src/signal.rs"
count = 1
justification = "signal(2) FFI"

[[atomics]]
file = "crates/obs/src/hist.rs"
count = 6
justification = "relaxed histogram counters"

[[hotpath]]
file = "crates/hardware/src/grid.rs"
justification = "dense-grid invariant"
"#;

    #[test]
    fn parses_all_three_sections() {
        let reg = parse(GOOD).unwrap();
        assert_eq!(reg.carveouts.len(), 1);
        assert_eq!(reg.carveouts[0].count, 1);
        assert_eq!(reg.atomics[0].file, "crates/obs/src/hist.rs");
        assert_eq!(reg.hotpath[0].file, "crates/hardware/src/grid.rs");
    }

    #[test]
    fn missing_justification_is_an_error() {
        let bad = "[[carveout]]\nfile = \"a.rs\"\ncount = 1\n";
        assert!(parse(bad).unwrap_err().message.contains("justification"));
    }

    #[test]
    fn zero_count_is_an_error_outside_hotpath() {
        let bad = "[[atomics]]\nfile = \"a.rs\"\ncount = 0\njustification = \"x\"\n";
        assert!(parse(bad).unwrap_err().message.contains("count"));
    }

    #[test]
    fn duplicate_files_are_an_error() {
        let bad = "[[hotpath]]\nfile = \"a.rs\"\njustification = \"x\"\n\
                   [[hotpath]]\nfile = \"a.rs\"\njustification = \"y\"\n";
        assert!(parse(bad).unwrap_err().message.contains("duplicate"));
    }

    #[test]
    fn skeleton_round_trips_through_the_parser() {
        let text = render_skeleton(
            &[("crates/a.rs".into(), 2)],
            &[("crates/b.rs".into(), 7)],
            &["crates/c.rs".into()],
        );
        let reg = parse(&text).unwrap();
        assert_eq!(reg.carveouts[0].count, 2);
        assert_eq!(reg.atomics[0].count, 7);
        assert_eq!(reg.hotpath[0].file, "crates/c.rs");
    }
}
