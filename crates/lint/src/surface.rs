//! Rule family 3: the observable-surface registry.
//!
//! Statically extracts the daemon's externally visible names from
//! source — `oneqd_*` metric families, `/v1/*` route literals, and the
//! `/v1/stats` schema version — and cross-checks them against
//! `docs/OBSERVABILITY.md`, `README.md`, and the committed schema
//! snapshots under `lint/`. The append-only stats-schema rule
//! (`stats_schema_v6.txt` must be a strict superset of `v5`) is a
//! build failure here, not a review comment; the runtime twin
//! (`tests/stats_schema.rs`) pins the v6 snapshot against a live
//! daemon.

use std::collections::BTreeSet;

use crate::lexer::Tok;
use crate::rules::{LexedFile, Violation};

const RULE: &str = "surface-registry";

/// FNV-1a/64 fingerprint of the canonical `lint/stats_schema_v5.txt`
/// key set. v5 shipped and is frozen: deleting (or editing) any key in
/// the snapshot breaks this pin and fails the build. Regenerate only
/// for a deliberate, documented schema epoch change — the value is
/// printed by `oneq-lint --print-schema-fnv`.
pub const STATS_SCHEMA_V5_FNV: u64 = 0x41ef_174b_9842_bf42;

/// Everything the surface rule reads besides workspace sources.
#[derive(Debug, Default)]
pub struct SurfaceDocs {
    /// `docs/OBSERVABILITY.md` contents.
    pub observability_md: String,
    /// `README.md` contents.
    pub readme_md: String,
    /// `lint/stats_schema_vN.txt` snapshots as `(version, contents)`.
    pub schema_snapshots: Vec<(u32, String)>,
}

fn violation(file: &str, line: u32, message: String) -> Violation {
    Violation {
        rule: RULE,
        file: file.to_string(),
        line,
        message,
    }
}

/// FNV-1a/64 over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical form of a schema snapshot: comment- and blank-stripped
/// key lines, sorted, newline-joined.
pub fn canonical_schema(text: &str) -> String {
    let keys = schema_keys(text);
    keys.into_iter().collect::<Vec<_>>().join("\n")
}

/// The key set of a schema snapshot (one dotted path per line; `#`
/// comments and blank lines ignored).
pub fn schema_keys(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// True when `name` is a well-formed metric family name
/// (`oneqd_` + lowercase/digit/underscore, not ending in `_`).
fn is_metric_name(name: &str) -> bool {
    name.strip_prefix("oneqd_").is_some_and(|rest| {
        !rest.is_empty()
            && !rest.ends_with('_')
            && rest
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

/// Exposition-derived suffixes a scraper may name directly; stripping
/// one maps the series name back to its family.
const DERIVED_SUFFIXES: [&str; 3] = ["_bucket", "_count", "_sum"];

fn family_of(name: &str) -> &str {
    for suffix in DERIVED_SUFFIXES {
        if let Some(stripped) = name.strip_suffix(suffix) {
            if is_metric_name(stripped) {
                return stripped;
            }
        }
    }
    name
}

/// Extracts documented metric families from markdown: every
/// `oneqd_...` span, with one level of `{a,b,c}` alternation expanded
/// (`oneqd_cache_memory_{hits,misses}_total` names two families).
pub fn doc_metric_families(md: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes = md.as_bytes();
    let mut i = 0;
    while let Some(pos) = md[i..].find("oneqd_") {
        let start = i + pos;
        let mut end = start;
        while end < bytes.len()
            && matches!(bytes[end], b'a'..=b'z' | b'0'..=b'9' | b'_' | b'{' | b'}' | b',')
        {
            end += 1;
        }
        for expanded in expand_braces(&md[start..end]) {
            if is_metric_name(&expanded) {
                out.insert(expanded);
            }
        }
        i = end.max(start + 1);
    }
    out
}

/// Expands `{a,b,c}` alternation groups (recursively, left to right).
fn expand_braces(pattern: &str) -> Vec<String> {
    let Some(open) = pattern.find('{') else {
        return vec![pattern.to_string()];
    };
    let Some(close_rel) = pattern[open..].find('}') else {
        return vec![pattern.to_string()];
    };
    let close = open + close_rel;
    let mut out = Vec::new();
    for alt in pattern[open + 1..close].split(',') {
        let candidate = format!("{}{}{}", &pattern[..open], alt, &pattern[close + 1..]);
        out.extend(expand_braces(&candidate));
    }
    out
}

/// Extracts `/v1/...` route paths from free text (docs) or a string
/// literal: everything from `/v1/` up to the first character that
/// cannot be part of a path, query strings cut, trailing `/` trimmed.
pub fn extract_routes(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0;
    while let Some(pos) = text[i..].find("/v1/") {
        let start = i + pos;
        let rest = &text[start..];
        let end = rest
            .find(|c: char| {
                c.is_whitespace()
                    || matches!(
                        c,
                        '?' | '&'
                            | '='
                            | '#'
                            | '"'
                            | '\''
                            | '`'
                            | '\\'
                            | '{'
                            | '}'
                            | '|'
                            | ')'
                            | '('
                            | ','
                            | '<'
                            | '>'
                    )
            })
            .unwrap_or(rest.len());
        let route = rest[..end].trim_end_matches(['/', '.', ':', ';']);
        if route.len() > "/v1/".len() - 1 {
            out.insert(route.to_string());
        }
        i = start + 1;
    }
    out
}

/// String literals of a lexed file, with lines.
fn string_literals(file: &LexedFile) -> impl Iterator<Item = (u32, &str)> {
    file.lexed.tokens.iter().filter_map(|t| match &t.tok {
        Tok::Str(s) => Some((t.line, s.as_str())),
        _ => None,
    })
}

/// Runs every surface check. `files` is the full workspace walk.
pub fn check_surface(files: &[LexedFile], docs: &SurfaceDocs) -> Vec<Violation> {
    let mut out = Vec::new();
    check_metrics(files, docs, &mut out);
    check_routes(files, docs, &mut out);
    check_schema(files, docs, &mut out);
    out
}

fn check_metrics(files: &[LexedFile], docs: &SurfaceDocs, out: &mut Vec<Violation>) {
    let documented = doc_metric_families(&docs.observability_md);
    let mut in_source: BTreeSet<String> = BTreeSet::new();
    // Only library/binary sources define the exported surface; test
    // harnesses mint throwaway families (e.g. the obs crate's demo
    // registry) that are not part of it.
    for file in files
        .iter()
        .filter(|f| crate::rules::in_crate_sources(&f.rel_path))
    {
        for (line, lit) in string_literals(file) {
            if !is_metric_name(family_of(lit)) {
                continue;
            }
            let family = family_of(lit).to_string();
            if !documented.contains(&family) {
                out.push(violation(
                    &file.rel_path,
                    line,
                    format!(
                        "metric family `{family}` is not documented in docs/OBSERVABILITY.md's metric reference"
                    ),
                ));
            }
            in_source.insert(family);
        }
    }
    for family in &documented {
        if !in_source.contains(family) {
            out.push(violation(
                "docs/OBSERVABILITY.md",
                0,
                format!("documented metric family `{family}` no longer appears in any source file"),
            ));
        }
    }
}

fn check_routes(files: &[LexedFile], docs: &SurfaceDocs, out: &mut Vec<Violation>) {
    let mut documented = extract_routes(&docs.observability_md);
    documented.extend(extract_routes(&docs.readme_md));
    for file in files {
        for (line, lit) in string_literals(file) {
            for route in extract_routes(lit) {
                let known = documented.iter().any(|d| {
                    *d == route
                        || route.starts_with(&format!("{d}/"))
                        || d.starts_with(&format!("{route}/"))
                });
                if !known {
                    out.push(violation(
                        &file.rel_path,
                        line,
                        format!(
                            "route literal `{route}` is not documented in docs/OBSERVABILITY.md or README.md"
                        ),
                    ));
                }
            }
        }
    }
}

fn check_schema(files: &[LexedFile], docs: &SurfaceDocs, out: &mut Vec<Violation>) {
    let mut versions: Vec<u32> = docs.schema_snapshots.iter().map(|(v, _)| *v).collect();
    versions.sort_unstable();
    let Some(&newest) = versions.last() else {
        out.push(violation(
            "lint",
            0,
            "no lint/stats_schema_vN.txt snapshots found".to_string(),
        ));
        return;
    };

    // Append-only: each snapshot must be a strict superset of every
    // older one.
    for pair in versions.windows(2) {
        let (old_v, new_v) = (pair[0], pair[1]);
        let old = snapshot(docs, old_v);
        let new = snapshot(docs, new_v);
        for key in old.difference(&new) {
            out.push(violation(
                &format!("lint/stats_schema_v{new_v}.txt"),
                0,
                format!(
                    "append-only violation: key `{key}` from stats_schema_v{old_v}.txt is missing in v{new_v}"
                ),
            ));
        }
        if new.len() <= old.len() {
            out.push(violation(
                &format!("lint/stats_schema_v{new_v}.txt"),
                0,
                format!("v{new_v} must be a strict superset of v{old_v} (it adds no keys)"),
            ));
        }
    }

    // v5 is frozen: its canonical fingerprint is pinned in this source
    // file, so deleting or editing any key is a build failure.
    if versions.contains(&5) {
        let canonical = canonical_schema(
            &docs
                .schema_snapshots
                .iter()
                .find(|(v, _)| *v == 5)
                .map(|(_, t)| t.clone())
                .unwrap_or_default(),
        );
        let fnv = fnv1a64(canonical.as_bytes());
        if fnv != STATS_SCHEMA_V5_FNV {
            out.push(violation(
                "lint/stats_schema_v5.txt",
                0,
                format!(
                    "frozen v5 snapshot changed (fnv1a64 {fnv:#018x} != pinned {STATS_SCHEMA_V5_FNV:#018x}); v5 is append-only history and must not be edited"
                ),
            ));
        }
    } else {
        out.push(violation(
            "lint",
            0,
            "lint/stats_schema_v5.txt is missing".to_string(),
        ));
    }

    // Every leaf key of the newest snapshot must appear as a string
    // literal in the stats renderer, so the snapshot cannot name keys
    // the server stopped rendering.
    let server = files
        .iter()
        .find(|f| f.rel_path == "crates/service/src/server.rs");
    if let Some(server) = server {
        let literals: BTreeSet<&str> = string_literals(server).map(|(_, s)| s).collect();
        for key in snapshot(docs, newest) {
            let leaf = key.rsplit('.').next().unwrap_or(&key);
            let leaf = leaf.trim_end_matches("[]");
            if !literals.contains(leaf) {
                out.push(violation(
                    &format!("lint/stats_schema_v{newest}.txt"),
                    0,
                    format!(
                        "schema key `{key}`: leaf `{leaf}` is not a string literal in crates/service/src/server.rs"
                    ),
                ));
            }
        }
        // The schema literal the server sends must match the newest
        // committed snapshot version.
        let declared: Vec<u32> = literals
            .iter()
            .filter_map(|s| s.strip_prefix("oneqd-stats/v"))
            .filter_map(|v| v.parse().ok())
            .collect();
        if let Some(&max_declared) = declared.iter().max() {
            if max_declared != newest {
                out.push(violation(
                    "crates/service/src/server.rs",
                    0,
                    format!(
                        "server renders schema oneqd-stats/v{max_declared} but the newest committed snapshot is v{newest}; commit lint/stats_schema_v{max_declared}.txt"
                    ),
                ));
            }
        }
    }
}

fn snapshot(docs: &SurfaceDocs, version: u32) -> BTreeSet<String> {
    docs.schema_snapshots
        .iter()
        .find(|(v, _)| *v == version)
        .map(|(_, text)| schema_keys(text))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lexed_file(rel_path: &str, src: &str) -> LexedFile {
        LexedFile {
            rel_path: rel_path.to_string(),
            lexed: lex(src),
        }
    }

    #[test]
    fn brace_expansion_names_every_family() {
        let md = "| `oneqd_cache_memory_{hits,misses}_total` | and `oneqd_workers` |";
        let families = doc_metric_families(md);
        assert!(families.contains("oneqd_cache_memory_hits_total"));
        assert!(families.contains("oneqd_cache_memory_misses_total"));
        assert!(families.contains("oneqd_workers"));
        assert_eq!(families.len(), 3);
    }

    #[test]
    fn bare_prefix_mentions_are_not_families() {
        let md = "All metrics are prefixed `oneqd_`.";
        assert!(doc_metric_families(md).is_empty());
    }

    #[test]
    fn route_extraction_handles_queries_ids_and_raw_http() {
        let routes = extract_routes("GET /v1/stats HTTP/1.1\\r\\n");
        assert!(routes.contains("/v1/stats"), "{routes:?}");
        let routes = extract_routes("/v1/compile?file=a.qasm");
        assert!(routes.contains("/v1/compile"));
        let routes = extract_routes("`GET /v1/traces/{id}`");
        assert!(routes.contains("/v1/traces"), "{routes:?}");
    }

    #[test]
    fn undocumented_metric_and_route_fire() {
        // Names assembled so this test file itself stays lint-clean.
        let fake_metric = ["oneqd", "made_up_total"].join("_");
        let fake_route = ["/v1", "nonexistent"].join("/");
        let src = format!("let a = \"{fake_metric}\"; let b = \"{fake_route}\";");
        let files = vec![lexed_file("crates/x/src/lib.rs", &src)];
        let docs = SurfaceDocs {
            observability_md: "`oneqd_requests_total`".to_string(),
            readme_md: "see `/v1/stats`".to_string(),
            schema_snapshots: vec![(5, "a".into()), (6, "a\nb".into())],
        };
        let v = check_surface(&files, &docs);
        assert!(v.iter().any(|v| v.message.contains(&fake_metric)), "{v:?}");
        assert!(v.iter().any(|v| v.message.contains(&fake_route)), "{v:?}");
        // The documented-but-unused direction fires too.
        assert!(
            v.iter().any(|v| v.message.contains("oneqd_requests_total")),
            "{v:?}"
        );
    }

    #[test]
    fn schema_superset_rule_fires_on_a_dropped_key() {
        let docs = SurfaceDocs {
            observability_md: String::new(),
            readme_md: String::new(),
            schema_snapshots: vec![(5, "alpha\nbeta\n".into()), (6, "alpha\ngamma\n".into())],
        };
        let v = check_surface(&[], &docs);
        assert!(
            v.iter()
                .any(|v| v.message.contains("append-only violation") && v.message.contains("beta")),
            "{v:?}"
        );
    }

    #[test]
    fn schema_equal_sets_violate_strictness() {
        let docs = SurfaceDocs {
            observability_md: String::new(),
            readme_md: String::new(),
            schema_snapshots: vec![(5, "alpha\n".into()), (6, "alpha\n".into())],
        };
        let v = check_surface(&[], &docs);
        assert!(
            v.iter().any(|v| v.message.contains("strict superset")),
            "{v:?}"
        );
    }

    #[test]
    fn fnv_pin_detects_v5_edits() {
        let docs = SurfaceDocs {
            observability_md: String::new(),
            readme_md: String::new(),
            schema_snapshots: vec![(5, "tampered\n".into()), (6, "tampered\nmore\n".into())],
        };
        let v = check_surface(&[], &docs);
        assert!(
            v.iter().any(|v| v.message.contains("frozen v5 snapshot")),
            "{v:?}"
        );
    }

    #[test]
    fn canonicalization_ignores_comments_blanks_and_order() {
        let a = canonical_schema("# c\nbeta\n\nalpha\n");
        let b = canonical_schema("alpha\nbeta");
        assert_eq!(a, b);
    }
}
