//! Abstract syntax tree for the supported OpenQASM 2.0 subset, plus
//! parameter-expression evaluation.

use crate::error::Span;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::fmt;

/// A binary operator in a parameter expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `^` (right-associative power)
    Pow,
}

/// A unary function usable in parameter expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `sin`
    Sin,
    /// `cos`
    Cos,
    /// `tan`
    Tan,
    /// `exp`
    Exp,
    /// `ln`
    Ln,
    /// `sqrt`
    Sqrt,
}

impl Func {
    /// Looks a function name up.
    pub fn from_name(name: &str) -> Option<Func> {
        Some(match name {
            "sin" => Func::Sin,
            "cos" => Func::Cos,
            "tan" => Func::Tan,
            "exp" => Func::Exp,
            "ln" => Func::Ln,
            "sqrt" => Func::Sqrt,
            _ => return None,
        })
    }

    fn apply(self, x: f64) -> f64 {
        match self {
            Func::Sin => x.sin(),
            Func::Cos => x.cos(),
            Func::Tan => x.tan(),
            Func::Exp => x.exp(),
            Func::Ln => x.ln(),
            Func::Sqrt => x.sqrt(),
        }
    }
}

/// A parameter expression (gate angles).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Real literal.
    Real(f64),
    /// Integer literal (promoted to `f64` on evaluation).
    Int(u64),
    /// The constant `pi`.
    Pi,
    /// A formal gate parameter, resolved at expansion time.
    Param(String, Span),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function application.
    Call(Func, Box<Expr>),
}

impl Expr {
    /// Evaluates the expression with the given parameter bindings.
    ///
    /// # Errors
    ///
    /// Returns the span and name of the first unbound [`Expr::Param`].
    pub fn eval(&self, params: &HashMap<String, f64>) -> Result<f64, (Span, String)> {
        Ok(match self {
            Expr::Real(v) => *v,
            Expr::Int(v) => *v as f64,
            Expr::Pi => PI,
            Expr::Param(name, span) => match params.get(name) {
                Some(&v) => v,
                None => return Err((*span, name.clone())),
            },
            Expr::Neg(e) => -e.eval(params)?,
            Expr::Binary(op, a, b) => {
                let a = a.eval(params)?;
                let b = b.eval(params)?;
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Pow => a.powf(b),
                }
            }
            Expr::Call(f, e) => f.apply(e.eval(params)?),
        })
    }
}

/// A qubit (or classical-bit) argument at statement level: a whole register
/// or one indexed element.
#[derive(Debug, Clone, PartialEq)]
pub struct Argument {
    /// Register name.
    pub reg: String,
    /// `Some(i)` for `reg[i]`, `None` for the whole register.
    pub index: Option<usize>,
    /// Where the argument starts.
    pub span: Span,
}

impl fmt::Display for Argument {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}[{i}]", self.reg),
            None => write!(f, "{}", self.reg),
        }
    }
}

/// One operation inside a `gate` body. Arguments are the definition's
/// formal qubit names (OpenQASM 2.0 forbids indexing inside bodies).
#[derive(Debug, Clone, PartialEq)]
pub struct GateOp {
    /// Gate name being applied (or `barrier`, kept as a no-op).
    pub name: String,
    /// Parameter expressions (may reference the formal parameters).
    pub params: Vec<Expr>,
    /// Formal qubit argument names.
    pub args: Vec<String>,
    /// Where the operation starts.
    pub span: Span,
}

/// A user `gate` definition (a macro over its body).
#[derive(Debug, Clone, PartialEq)]
pub struct GateDef {
    /// Gate name.
    pub name: String,
    /// Formal parameter names.
    pub params: Vec<String>,
    /// Formal qubit argument names.
    pub qargs: Vec<String>,
    /// Body operations in program order.
    pub body: Vec<GateOp>,
    /// Where the definition starts.
    pub span: Span,
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `qreg name[n];`
    QReg {
        /// Register name.
        name: String,
        /// Number of qubits.
        size: usize,
        /// Statement span.
        span: Span,
    },
    /// `creg name[n];`
    CReg {
        /// Register name.
        name: String,
        /// Number of bits.
        size: usize,
        /// Statement span.
        span: Span,
    },
    /// `gate name(params) qargs { ... }`
    Gate(GateDef),
    /// `name(params) args;` — a gate application.
    Apply {
        /// Gate name.
        name: String,
        /// Parameter expressions (fully constant at top level).
        params: Vec<Expr>,
        /// Qubit arguments (registers broadcast).
        args: Vec<Argument>,
        /// Statement span.
        span: Span,
    },
    /// `barrier args;` — validated, no IR effect.
    Barrier {
        /// Qubit arguments.
        args: Vec<Argument>,
        /// Statement span.
        span: Span,
    },
    /// `measure src -> dst;` — validated, no IR effect (the OneQ pipeline
    /// measures every photon as part of the pattern).
    Measure {
        /// Quantum source.
        src: Argument,
        /// Classical destination.
        dst: Argument,
        /// Statement span.
        span: Span,
    },
}

/// A parsed program: the statement list plus whether `qelib1.inc` was
/// included (which unlocks the standard gate names).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statements in source order.
    pub stmts: Vec<Stmt>,
    /// `true` once `include "qelib1.inc";` was seen.
    pub includes_qelib1: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_constant_folds() {
        let e = Expr::Binary(BinOp::Div, Box::new(Expr::Pi), Box::new(Expr::Int(4)));
        assert_eq!(e.eval(&HashMap::new()).unwrap(), PI / 4.0);
    }

    #[test]
    fn eval_resolves_params() {
        let mut params = HashMap::new();
        params.insert("theta".to_string(), 0.5);
        let e = Expr::Neg(Box::new(Expr::Param("theta".into(), Span::new(1, 1))));
        assert_eq!(e.eval(&params).unwrap(), -0.5);
    }

    #[test]
    fn eval_unbound_param_reports_span() {
        let e = Expr::Param("phi".into(), Span::new(3, 7));
        let (span, name) = e.eval(&HashMap::new()).unwrap_err();
        assert_eq!(span, Span::new(3, 7));
        assert_eq!(name, "phi");
    }

    #[test]
    fn eval_pow_and_funcs() {
        let e = Expr::Binary(BinOp::Pow, Box::new(Expr::Int(2)), Box::new(Expr::Int(10)));
        assert_eq!(e.eval(&HashMap::new()).unwrap(), 1024.0);
        let s = Expr::Call(Func::Sqrt, Box::new(Expr::Int(9)));
        assert_eq!(s.eval(&HashMap::new()).unwrap(), 3.0);
        assert_eq!(Func::from_name("cos"), Some(Func::Cos));
        assert_eq!(Func::from_name("nope"), None);
    }

    #[test]
    fn argument_display() {
        let a = Argument {
            reg: "q".into(),
            index: Some(2),
            span: Span::new(1, 1),
        };
        assert_eq!(a.to_string(), "q[2]");
        let whole = Argument {
            reg: "q".into(),
            index: None,
            span: Span::new(1, 1),
        };
        assert_eq!(whole.to_string(), "q");
    }
}
