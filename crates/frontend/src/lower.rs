//! Semantic analysis and lowering into the `oneq_circuit` IR.
//!
//! The lowering walks a parsed [`Program`] statement by statement:
//!
//! * `qreg` declarations allocate contiguous wire ranges in declaration
//!   order (the flat index space of the output [`Circuit`]);
//! * `creg`, `measure` and `barrier` are validated but emit nothing — the
//!   OneQ pipeline measures every photon as part of the pattern anyway;
//! * `gate` definitions become macros, checked at definition time (every
//!   referenced gate must already exist with matching parameter and
//!   argument counts, so expansion can never recurse);
//! * gate applications broadcast over whole-register arguments and expand
//!   through macros down to *builtin* gates.
//!
//! Builtins map onto the IR as directly as possible — `h`/`x`/`y`/`z`/
//! `s`/`sdg`/`t`/`tdg`/`rz`/`rx`/`cz`/`cx`/`swap`/`cu1`/`cp`/`ccx` are
//! single IR gates — while `U`/`u1`/`u2`/`u3`/`ry`/`id` decompose into the
//! existing gate set:
//!
//! | QASM | IR (program order) |
//! |---|---|
//! | `u1(λ)` | `Rz(λ)` |
//! | `ry(θ)` | `Sdg; Rx(θ); S` |
//! | `u3(θ,φ,λ)`, `U(θ,φ,λ)` | `Rz(λ); Sdg; Rx(θ); S; Rz(φ)` |
//! | `u2(φ,λ)` | `u3(π/2, φ, λ)` |
//! | `id` | (nothing) |
//!
//! (`ry` uses `Y = S·X·S†`, so `Ry(θ) = S·Rx(θ)·S†`; `u3` is
//! `Rz(φ)·Ry(θ)·Rz(λ)` with the `Rz`s as phase gates, equal to the
//! standard `U` up to global phase.)
//!
//! Without `include "qelib1.inc";` only the OpenQASM primitives `U` and
//! `CX` exist; the include unlocks the named builtins above plus a prelude
//! of composite qelib1 gates (`cy`, `ch`, `crz`, `cu3`, `cswap`, `rzz`)
//! that are themselves defined as macros over the builtins — parsed with
//! this crate's own parser.

use crate::ast::{Argument, Expr, GateOp, Program, Stmt};
use crate::error::{ParseError, Span};
use crate::parser::parse_program;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::rc::Rc;

use oneq_circuit::{Circuit, Gate, Qubit};

/// qelib1 composite gates, defined over the builtins with the standard
/// qelib1.inc bodies. Parsed by this crate's own parser at lowering time.
const QELIB1_PRELUDE: &str = r#"OPENQASM 2.0;
gate cy a,b { sdg b; cx a,b; s b; }
gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b; t b; h b; s b; x b; s a; }
gate crz(lambda) a,b { u1(lambda/2) b; cx a,b; u1(-lambda/2) b; cx a,b; }
gate cu3(theta,phi,lambda) c,t { u1((lambda+phi)/2) c; u1((lambda-phi)/2) t; cx c,t; u3(-theta/2,0,-(phi+lambda)/2) t; cx c,t; u3(theta/2,phi,0) t; }
gate cswap a,b,c { cx c,b; ccx a,b,c; cx c,b; }
gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }
"#;

/// Gate names `include "qelib1.inc";` would provide, for the
/// "did you forget the include?" hint.
const QELIB1_NAMES: &[&str] = &[
    "u3", "u2", "u1", "p", "cx", "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry",
    "rz", "cz", "cy", "ch", "swap", "ccx", "cswap", "crz", "cu1", "cp", "cu3", "rzz",
];

/// A builtin gate: lowers to one or a few IR gates with no macro table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Builtin {
    U3,
    U2,
    U1,
    Cx,
    Id,
    H,
    X,
    Y,
    Z,
    S,
    Sdg,
    T,
    Tdg,
    Rx,
    Ry,
    Rz,
    Cz,
    Cp,
    Swap,
    Ccx,
}

impl Builtin {
    /// `(parameter count, qubit count)`.
    fn signature(self) -> (usize, usize) {
        match self {
            Builtin::U3 => (3, 1),
            Builtin::U2 => (2, 1),
            Builtin::U1 | Builtin::Rx | Builtin::Ry | Builtin::Rz => (1, 1),
            Builtin::Cx | Builtin::Cz | Builtin::Swap => (0, 2),
            Builtin::Cp => (1, 2),
            Builtin::Ccx => (0, 3),
            Builtin::Id
            | Builtin::H
            | Builtin::X
            | Builtin::Y
            | Builtin::Z
            | Builtin::S
            | Builtin::Sdg
            | Builtin::T
            | Builtin::Tdg => (0, 1),
        }
    }
}

/// A user (or prelude) gate definition ready for expansion.
#[derive(Debug)]
struct MacroDef {
    params: Vec<String>,
    qargs: Vec<String>,
    body: Vec<GateOp>,
}

#[derive(Debug, Clone)]
enum GateEntry {
    Builtin(Builtin),
    Macro(Rc<MacroDef>),
}

impl GateEntry {
    fn signature(&self) -> (usize, usize) {
        match self {
            GateEntry::Builtin(b) => b.signature(),
            GateEntry::Macro(m) => (m.params.len(), m.qargs.len()),
        }
    }
}

/// A declared register: contiguous wires `offset..offset + size`.
#[derive(Debug, Clone, Copy)]
struct RegInfo {
    offset: usize,
    size: usize,
}

/// The result of lowering a program.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The circuit over all declared qubits (qregs concatenated in
    /// declaration order).
    pub circuit: Circuit,
    /// Quantum registers as `(name, size)` in declaration order.
    pub qregs: Vec<(String, usize)>,
    /// Classical registers as `(name, size)` in declaration order.
    pub cregs: Vec<(String, usize)>,
}

/// Lowers a parsed program into the IR.
///
/// `source` must be the text `program` was parsed from; it is used to
/// render caret snippets in semantic errors.
///
/// # Errors
///
/// Returns a [`ParseError`] for unknown gates or registers, arity or
/// parameter-count mismatches, out-of-range indices, broadcast size
/// mismatches, duplicate qubit arguments, and redefinitions.
pub fn lower(program: &Program, source: &str) -> Result<Lowered, ParseError> {
    Lowerer::new(source, program.includes_qelib1).run(program)
}

/// An argument resolved against the register table.
#[derive(Debug, Clone, Copy)]
enum Resolved {
    One(usize),
    Whole { offset: usize, size: usize },
}

struct Lowerer<'s> {
    lines: Vec<&'s str>,
    gates: HashMap<String, GateEntry>,
    qregs: HashMap<String, RegInfo>,
    cregs: HashMap<String, RegInfo>,
    qreg_order: Vec<(String, usize)>,
    creg_order: Vec<(String, usize)>,
    n_qubits: usize,
    emitted: Vec<(Gate, Span)>,
    qelib1: bool,
}

impl<'s> Lowerer<'s> {
    fn new(source: &'s str, qelib1: bool) -> Self {
        let mut lw = Lowerer {
            lines: source.lines().collect(),
            gates: HashMap::new(),
            qregs: HashMap::new(),
            cregs: HashMap::new(),
            qreg_order: Vec::new(),
            creg_order: Vec::new(),
            n_qubits: 0,
            emitted: Vec::new(),
            qelib1,
        };
        lw.gates.insert("U".into(), GateEntry::Builtin(Builtin::U3));
        lw.gates
            .insert("CX".into(), GateEntry::Builtin(Builtin::Cx));
        if qelib1 {
            lw.install_qelib1();
        }
        lw
    }

    fn install_qelib1(&mut self) {
        for (name, b) in [
            ("u3", Builtin::U3),
            ("u2", Builtin::U2),
            ("u1", Builtin::U1),
            ("p", Builtin::U1),
            ("cx", Builtin::Cx),
            ("id", Builtin::Id),
            ("h", Builtin::H),
            ("x", Builtin::X),
            ("y", Builtin::Y),
            ("z", Builtin::Z),
            ("s", Builtin::S),
            ("sdg", Builtin::Sdg),
            ("t", Builtin::T),
            ("tdg", Builtin::Tdg),
            ("rx", Builtin::Rx),
            ("ry", Builtin::Ry),
            ("rz", Builtin::Rz),
            ("cz", Builtin::Cz),
            ("cu1", Builtin::Cp),
            ("cp", Builtin::Cp),
            ("swap", Builtin::Swap),
            ("ccx", Builtin::Ccx),
        ] {
            self.gates.insert(name.into(), GateEntry::Builtin(b));
        }
        let prelude = parse_program(QELIB1_PRELUDE).expect("embedded qelib1 prelude must parse");
        for stmt in &prelude.stmts {
            let Stmt::Gate(def) = stmt else {
                unreachable!("prelude contains only gate definitions");
            };
            // Prelude bodies reference only builtins, so definition-time
            // checking against the already-filled table must succeed.
            self.define_gate(def.name.clone(), def, QELIB1_PRELUDE)
                .expect("embedded qelib1 prelude must lower");
        }
    }

    fn error(&self, span: Span, message: impl Into<String>) -> ParseError {
        let text = self
            .lines
            .get(span.line.saturating_sub(1))
            .copied()
            .unwrap_or("");
        ParseError::new(message, span, text)
    }

    /// Like [`Lowerer::error`] but rendering the snippet from an alternate
    /// source (used while installing the embedded prelude).
    fn error_in(&self, span: Span, message: impl Into<String>, source: &str) -> ParseError {
        let text = source
            .lines()
            .nth(span.line.saturating_sub(1))
            .unwrap_or("");
        ParseError::new(message, span, text)
    }

    fn unknown_gate(&self, name: &str, span: Span) -> ParseError {
        let hint = if !self.qelib1 && QELIB1_NAMES.contains(&name) {
            "; did you forget `include \"qelib1.inc\";`?"
        } else {
            ""
        };
        self.error(span, format!("unknown gate `{name}`{hint}"))
    }

    fn run(mut self, program: &Program) -> Result<Lowered, ParseError> {
        for stmt in &program.stmts {
            match stmt {
                Stmt::QReg { name, size, span } => self.declare_qreg(name, *size, *span)?,
                Stmt::CReg { name, size, span } => self.declare_creg(name, *size, *span)?,
                Stmt::Gate(def) => {
                    // User definitions shadow nothing: redefinition of any
                    // known name (builtin or macro) is an error.
                    self.define_gate_checked(def)?;
                }
                Stmt::Apply {
                    name,
                    params,
                    args,
                    span,
                } => self.apply(name, params, args, *span)?,
                Stmt::Barrier { args, span: _ } => {
                    for arg in args {
                        self.resolve_quantum(arg)?;
                    }
                }
                Stmt::Measure { src, dst, span } => self.measure(src, dst, *span)?,
            }
        }
        let mut circuit = Circuit::new(self.n_qubits);
        for (gate, span) in self.emitted {
            if let Err(e) = circuit.push(gate) {
                // Duplicate qubits are caught during emission and offsets
                // are in range by construction, so this is unreachable in
                // practice; report it cleanly rather than panicking.
                let text = self
                    .lines
                    .get(span.line.saturating_sub(1))
                    .copied()
                    .unwrap_or("");
                return Err(ParseError::new(format!("invalid gate: {e}"), span, text));
            }
        }
        Ok(Lowered {
            circuit,
            qregs: self.qreg_order,
            cregs: self.creg_order,
        })
    }

    fn declare_qreg(&mut self, name: &str, size: usize, span: Span) -> Result<(), ParseError> {
        if self.qregs.contains_key(name) || self.cregs.contains_key(name) {
            return Err(self.error(span, format!("register `{name}` is already declared")));
        }
        self.qregs.insert(
            name.to_string(),
            RegInfo {
                offset: self.n_qubits,
                size,
            },
        );
        self.qreg_order.push((name.to_string(), size));
        self.n_qubits += size;
        Ok(())
    }

    fn declare_creg(&mut self, name: &str, size: usize, span: Span) -> Result<(), ParseError> {
        if self.qregs.contains_key(name) || self.cregs.contains_key(name) {
            return Err(self.error(span, format!("register `{name}` is already declared")));
        }
        self.cregs
            .insert(name.to_string(), RegInfo { offset: 0, size });
        self.creg_order.push((name.to_string(), size));
        Ok(())
    }

    fn define_gate_checked(&mut self, def: &crate::ast::GateDef) -> Result<(), ParseError> {
        if self.gates.contains_key(&def.name) {
            return Err(self.error(def.span, format!("gate `{}` is already defined", def.name)));
        }
        let name = def.name.clone();
        self.define_gate(name, def, "")
    }

    /// Validates a definition and installs it as a macro. `prelude_source`
    /// is non-empty while installing the embedded prelude (for snippets).
    fn define_gate(
        &mut self,
        name: String,
        def: &crate::ast::GateDef,
        prelude_source: &str,
    ) -> Result<(), ParseError> {
        let mk_err = |lw: &Self, span: Span, msg: String| -> ParseError {
            if prelude_source.is_empty() {
                lw.error(span, msg)
            } else {
                lw.error_in(span, msg, prelude_source)
            }
        };
        for (i, p) in def.params.iter().enumerate() {
            if def.params[i + 1..].contains(p) {
                return Err(mk_err(
                    self,
                    def.span,
                    format!("duplicate parameter `{p}` in gate `{name}`"),
                ));
            }
        }
        for (i, q) in def.qargs.iter().enumerate() {
            if def.qargs[i + 1..].contains(q) {
                return Err(mk_err(
                    self,
                    def.span,
                    format!("duplicate qubit argument `{q}` in gate `{name}`"),
                ));
            }
        }
        for op in &def.body {
            let entry = self
                .gates
                .get(&op.name)
                .ok_or_else(|| {
                    let hint = if !self.qelib1 && QELIB1_NAMES.contains(&op.name.as_str()) {
                        "; did you forget `include \"qelib1.inc\";`?"
                    } else {
                        ""
                    };
                    mk_err(
                        self,
                        op.span,
                        format!("unknown gate `{}` in body of `{name}`{hint}", op.name),
                    )
                })?
                .clone();
            let (n_params, n_qubits) = entry.signature();
            if op.params.len() != n_params {
                return Err(mk_err(
                    self,
                    op.span,
                    format!(
                        "gate `{}` takes {n_params} parameter(s), got {}",
                        op.name,
                        op.params.len()
                    ),
                ));
            }
            if op.args.len() != n_qubits {
                return Err(mk_err(
                    self,
                    op.span,
                    format!(
                        "gate `{}` acts on {n_qubits} qubit(s), got {}",
                        op.name,
                        op.args.len()
                    ),
                ));
            }
            for arg in &op.args {
                if !def.qargs.contains(arg) {
                    return Err(mk_err(
                        self,
                        op.span,
                        format!("`{arg}` is not a qubit argument of gate `{name}`"),
                    ));
                }
            }
            for (i, a) in op.args.iter().enumerate() {
                if op.args[i + 1..].contains(a) {
                    return Err(mk_err(
                        self,
                        op.span,
                        format!("gate `{}` applied to duplicate qubit `{a}`", op.name),
                    ));
                }
            }
            for expr in &op.params {
                check_expr_params(expr, &def.params).map_err(|(span, p)| {
                    mk_err(
                        self,
                        span,
                        format!("unknown identifier `{p}` in body of gate `{name}`"),
                    )
                })?;
            }
        }
        self.gates.insert(
            name,
            GateEntry::Macro(Rc::new(MacroDef {
                params: def.params.clone(),
                qargs: def.qargs.clone(),
                body: def.body.clone(),
            })),
        );
        Ok(())
    }

    fn resolve_quantum(&self, arg: &Argument) -> Result<Resolved, ParseError> {
        let info = self.qregs.get(&arg.reg).ok_or_else(|| {
            if self.cregs.contains_key(&arg.reg) {
                self.error(
                    arg.span,
                    format!(
                        "`{}` is a classical register; a quantum register is required",
                        arg.reg
                    ),
                )
            } else {
                self.error(arg.span, format!("unknown quantum register `{}`", arg.reg))
            }
        })?;
        match arg.index {
            Some(i) if i >= info.size => Err(self.error(
                arg.span,
                format!(
                    "index {i} out of range for register `{}` of size {}",
                    arg.reg, info.size
                ),
            )),
            Some(i) => Ok(Resolved::One(info.offset + i)),
            None => Ok(Resolved::Whole {
                offset: info.offset,
                size: info.size,
            }),
        }
    }

    fn resolve_classical(&self, arg: &Argument) -> Result<(usize, Option<usize>), ParseError> {
        let info = self.cregs.get(&arg.reg).ok_or_else(|| {
            if self.qregs.contains_key(&arg.reg) {
                self.error(
                    arg.span,
                    format!(
                        "`{}` is a quantum register; a classical register is required",
                        arg.reg
                    ),
                )
            } else {
                self.error(
                    arg.span,
                    format!("unknown classical register `{}`", arg.reg),
                )
            }
        })?;
        match arg.index {
            Some(i) if i >= info.size => Err(self.error(
                arg.span,
                format!(
                    "index {i} out of range for register `{}` of size {}",
                    arg.reg, info.size
                ),
            )),
            index => Ok((info.size, index)),
        }
    }

    fn measure(&mut self, src: &Argument, dst: &Argument, span: Span) -> Result<(), ParseError> {
        let q = self.resolve_quantum(src)?;
        let (c_size, c_index) = self.resolve_classical(dst)?;
        match (q, c_index) {
            (Resolved::Whole { size, .. }, None) if size != c_size => Err(self.error(
                span,
                format!(
                    "measure width mismatch: `{}` has {size} qubits, `{}` has {c_size} bits",
                    src.reg, dst.reg
                ),
            )),
            (Resolved::Whole { .. }, Some(_)) | (Resolved::One(_), None) => Err(self.error(
                span,
                "measure must map register -> register or bit -> bit".to_string(),
            )),
            _ => Ok(()),
        }
    }

    fn apply(
        &mut self,
        name: &str,
        params: &[Expr],
        args: &[Argument],
        span: Span,
    ) -> Result<(), ParseError> {
        let entry = self
            .gates
            .get(name)
            .ok_or_else(|| self.unknown_gate(name, span))?
            .clone();
        let (n_params, n_qubits) = entry.signature();
        if params.len() != n_params {
            return Err(self.error(
                span,
                format!(
                    "gate `{name}` takes {n_params} parameter(s), got {}",
                    params.len()
                ),
            ));
        }
        if args.len() != n_qubits {
            return Err(self.error(
                span,
                format!(
                    "gate `{name}` acts on {n_qubits} qubit(s), got {}",
                    args.len()
                ),
            ));
        }
        let values: Vec<f64> = params
            .iter()
            .map(|e| {
                e.eval(&HashMap::new()).map_err(|(pspan, p)| {
                    self.error(
                        pspan,
                        format!(
                            "unknown identifier `{p}` in parameter expression \
                             (only constants and `pi` are allowed here)"
                        ),
                    )
                })
            })
            .collect::<Result<_, _>>()?;
        let resolved: Vec<Resolved> = args
            .iter()
            .map(|a| self.resolve_quantum(a))
            .collect::<Result<_, _>>()?;

        // Broadcast: whole-register arguments must agree on size; single
        // qubits repeat across the broadcast.
        let mut width: Option<usize> = None;
        for (arg, r) in args.iter().zip(&resolved) {
            if let Resolved::Whole { size, .. } = r {
                match width {
                    None => width = Some(*size),
                    Some(w) if w != *size => {
                        return Err(self.error(
                            arg.span,
                            format!(
                                "broadcast size mismatch: register `{}` has {size} qubits, \
                                 expected {w}",
                                arg.reg
                            ),
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        for shot in 0..width.unwrap_or(1) {
            let qubits: Vec<usize> = resolved
                .iter()
                .map(|r| match *r {
                    Resolved::One(q) => q,
                    Resolved::Whole { offset, .. } => offset + shot,
                })
                .collect();
            for (i, &q) in qubits.iter().enumerate() {
                if qubits[i + 1..].contains(&q) {
                    return Err(self.error(
                        span,
                        format!("gate `{name}` applied to duplicate qubit (wire {q})"),
                    ));
                }
            }
            self.emit(&entry, &values, &qubits, span)?;
        }
        Ok(())
    }

    /// Emits one fully-resolved application (post-broadcast).
    fn emit(
        &mut self,
        entry: &GateEntry,
        params: &[f64],
        qubits: &[usize],
        span: Span,
    ) -> Result<(), ParseError> {
        match entry {
            GateEntry::Builtin(b) => {
                self.emit_builtin(*b, params, qubits, span);
                Ok(())
            }
            GateEntry::Macro(m) => {
                let env: HashMap<String, f64> = m
                    .params
                    .iter()
                    .cloned()
                    .zip(params.iter().copied())
                    .collect();
                let binding: HashMap<&str, usize> = m
                    .qargs
                    .iter()
                    .map(String::as_str)
                    .zip(qubits.iter().copied())
                    .collect();
                for op in &m.body {
                    // Definition-time checks guarantee these lookups
                    // succeed; expansion therefore cannot recurse (a body
                    // can only reference gates defined strictly earlier).
                    let inner = self
                        .gates
                        .get(&op.name)
                        .cloned()
                        .ok_or_else(|| self.unknown_gate(&op.name, op.span))?;
                    let values: Vec<f64> = op
                        .params
                        .iter()
                        .map(|e| {
                            e.eval(&env).map_err(|(pspan, p)| {
                                self.error(pspan, format!("unknown identifier `{p}`"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    let inner_qubits: Vec<usize> = op
                        .args
                        .iter()
                        .map(|a| {
                            binding.get(a.as_str()).copied().ok_or_else(|| {
                                self.error(op.span, format!("unbound qubit argument `{a}`"))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    self.emit(&inner, &values, &inner_qubits, span)?;
                }
                Ok(())
            }
        }
    }

    fn emit_builtin(&mut self, b: Builtin, params: &[f64], qs: &[usize], span: Span) {
        if b == Builtin::U2 {
            // u2(φ,λ) = u3(π/2, φ, λ).
            return self.emit_builtin(Builtin::U3, &[PI / 2.0, params[0], params[1]], qs, span);
        }
        let q = |i: usize| Qubit::new(qs[i]);
        let mut push = |gate: Gate| self.emitted.push((gate, span));
        match b {
            Builtin::H => push(Gate::H(q(0))),
            Builtin::X => push(Gate::X(q(0))),
            Builtin::Y => push(Gate::Y(q(0))),
            Builtin::Z => push(Gate::Z(q(0))),
            Builtin::S => push(Gate::S(q(0))),
            Builtin::Sdg => push(Gate::Sdg(q(0))),
            Builtin::T => push(Gate::T(q(0))),
            Builtin::Tdg => push(Gate::Tdg(q(0))),
            Builtin::Rx => push(Gate::Rx(q(0), params[0])),
            Builtin::Rz | Builtin::U1 => push(Gate::Rz(q(0), params[0])),
            Builtin::Id => {}
            Builtin::Ry => {
                // Ry(θ) = S · Rx(θ) · S† (from Y = S·X·S†), program order
                // rightmost-first.
                push(Gate::Sdg(q(0)));
                push(Gate::Rx(q(0), params[0]));
                push(Gate::S(q(0)));
            }
            Builtin::U3 => {
                // U(θ,φ,λ) = Rz(φ)·Ry(θ)·Rz(λ) up to global phase.
                let (theta, phi, lambda) = (params[0], params[1], params[2]);
                push(Gate::Rz(q(0), lambda));
                push(Gate::Sdg(q(0)));
                push(Gate::Rx(q(0), theta));
                push(Gate::S(q(0)));
                push(Gate::Rz(q(0), phi));
            }
            Builtin::U2 => unreachable!("U2 delegates to U3 above"),
            Builtin::Cx => push(Gate::Cnot {
                control: q(0),
                target: q(1),
            }),
            Builtin::Cz => push(Gate::Cz(q(0), q(1))),
            Builtin::Cp => push(Gate::Cp(q(0), q(1), params[0])),
            Builtin::Swap => push(Gate::Swap(q(0), q(1))),
            Builtin::Ccx => push(Gate::Ccx {
                c1: q(0),
                c2: q(1),
                target: q(2),
            }),
        }
    }
}

/// Walks an expression checking that every `Param` is in `allowed`.
fn check_expr_params(expr: &Expr, allowed: &[String]) -> Result<(), (Span, String)> {
    match expr {
        Expr::Param(name, span) => {
            if allowed.contains(name) {
                Ok(())
            } else {
                Err((*span, name.clone()))
            }
        }
        Expr::Neg(e) | Expr::Call(_, e) => check_expr_params(e, allowed),
        Expr::Binary(_, a, b) => {
            check_expr_params(a, allowed)?;
            check_expr_params(b, allowed)
        }
        Expr::Real(_) | Expr::Int(_) | Expr::Pi => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn lower_src(src: &str) -> Result<Lowered, ParseError> {
        lower(&parse_program(src)?, src)
    }

    fn gates(src: &str) -> Vec<Gate> {
        lower_src(src)
            .expect("program should lower")
            .circuit
            .gates()
            .to_vec()
    }

    const HDR: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

    #[test]
    fn direct_builtins_map_one_to_one() {
        let src = format!(
            "{HDR}qreg q[3];\nh q[0];\nx q[1];\ncz q[0], q[1];\ncx q[0], q[2];\n\
             swap q[1], q[2];\nccx q[0], q[1], q[2];\ncu1(pi/2) q[0], q[1];\n\
             rz(0.5) q[2];\nrx(0.25) q[0];"
        );
        let g = gates(&src);
        assert_eq!(g.len(), 9);
        assert_eq!(g[0], Gate::H(Qubit::new(0)));
        assert_eq!(
            g[3],
            Gate::Cnot {
                control: Qubit::new(0),
                target: Qubit::new(2)
            }
        );
        assert_eq!(g[6], Gate::Cp(Qubit::new(0), Qubit::new(1), PI / 2.0));
        assert_eq!(g[7], Gate::Rz(Qubit::new(2), 0.5));
    }

    #[test]
    fn primitives_work_without_include() {
        let g = gates("OPENQASM 2.0;\nqreg q[2];\nU(0,0,pi) q[0];\nCX q[0], q[1];");
        assert!(matches!(g.last(), Some(Gate::Cnot { .. })));
    }

    #[test]
    fn named_gates_require_include() {
        let err = lower_src("OPENQASM 2.0;\nqreg q[1];\nh q[0];").unwrap_err();
        assert!(err.message().contains("include \"qelib1.inc\""), "{err}");
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn broadcast_over_register() {
        let g = gates(&format!("{HDR}qreg q[4];\nh q;"));
        assert_eq!(g.len(), 4);
        assert_eq!(g[3], Gate::H(Qubit::new(3)));
    }

    #[test]
    fn broadcast_register_pair_and_mixed() {
        let g = gates(&format!("{HDR}qreg a[3];\nqreg b[3];\ncx a, b;"));
        assert_eq!(g.len(), 3);
        assert_eq!(
            g[2],
            Gate::Cnot {
                control: Qubit::new(2),
                target: Qubit::new(5)
            }
        );
        // Single control broadcast against a register target.
        let g = gates(&format!("{HDR}qreg a[2];\nqreg b[2];\ncx a[0], b;"));
        assert_eq!(g.len(), 2);
        assert_eq!(
            g[1],
            Gate::Cnot {
                control: Qubit::new(0),
                target: Qubit::new(3)
            }
        );
    }

    #[test]
    fn broadcast_size_mismatch_is_rejected() {
        let err = lower_src(&format!("{HDR}qreg a[2];\nqreg b[3];\ncx a, b;")).unwrap_err();
        assert!(err.message().contains("broadcast size mismatch"));
    }

    #[test]
    fn macro_expansion_substitutes_params_and_qubits() {
        let g = gates(&format!(
            "{HDR}qreg q[2];\n\
             gate pair(theta) a,b {{ rz(theta/2) a; cx a,b; rz(-theta/2) b; }}\n\
             pair(pi) q[1], q[0];"
        ));
        assert_eq!(g.len(), 3);
        assert_eq!(g[0], Gate::Rz(Qubit::new(1), PI / 2.0));
        assert_eq!(
            g[1],
            Gate::Cnot {
                control: Qubit::new(1),
                target: Qubit::new(0)
            }
        );
        assert_eq!(g[2], Gate::Rz(Qubit::new(0), -(PI / 2.0)));
    }

    #[test]
    fn macros_can_build_on_macros() {
        let g = gates(&format!(
            "{HDR}qreg q[3];\n\
             gate maj a,b,c {{ cx c,b; cx c,a; ccx a,b,c; }}\n\
             gate twomaj a,b,c {{ maj a,b,c; maj a,b,c; }}\n\
             twomaj q[0], q[1], q[2];"
        ));
        assert_eq!(g.len(), 6);
        assert!(matches!(g[2], Gate::Ccx { .. }));
    }

    #[test]
    fn prelude_gates_expand() {
        let g = gates(&format!("{HDR}qreg q[2];\ncrz(pi/2) q[0], q[1];"));
        // u1(λ/2) b; cx; u1(-λ/2) b; cx  ->  4 IR gates.
        assert_eq!(g.len(), 4);
        assert_eq!(g[0], Gate::Rz(Qubit::new(1), PI / 4.0));
        let g = gates(&format!("{HDR}qreg q[3];\ncswap q[0], q[1], q[2];"));
        assert_eq!(g.len(), 3);
        assert!(matches!(g[1], Gate::Ccx { .. }));
    }

    #[test]
    fn u_family_decomposes() {
        let g = gates(&format!("{HDR}qreg q[1];\nu1(0.3) q[0];"));
        assert_eq!(g, vec![Gate::Rz(Qubit::new(0), 0.3)]);
        let g = gates(&format!("{HDR}qreg q[1];\nry(0.3) q[0];"));
        assert_eq!(
            g,
            vec![
                Gate::Sdg(Qubit::new(0)),
                Gate::Rx(Qubit::new(0), 0.3),
                Gate::S(Qubit::new(0))
            ]
        );
        let g = gates(&format!("{HDR}qreg q[1];\nu3(0.1,0.2,0.3) q[0];"));
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], Gate::Rz(Qubit::new(0), 0.3));
        assert_eq!(g[4], Gate::Rz(Qubit::new(0), 0.2));
        let g = gates(&format!("{HDR}qreg q[1];\nid q[0];"));
        assert!(g.is_empty());
    }

    #[test]
    fn measure_barrier_creg_are_graceful_noops() {
        let lowered = lower_src(&format!(
            "{HDR}qreg q[2];\ncreg c[2];\nh q;\nbarrier q;\nmeasure q -> c;"
        ))
        .unwrap();
        assert_eq!(lowered.circuit.gate_count(), 2);
        assert_eq!(lowered.qregs, vec![("q".to_string(), 2)]);
        assert_eq!(lowered.cregs, vec![("c".to_string(), 2)]);
    }

    #[test]
    fn measure_width_mismatch_is_rejected() {
        let err = lower_src(&format!("{HDR}qreg q[2];\ncreg c[3];\nmeasure q -> c;")).unwrap_err();
        assert!(err.message().contains("width mismatch"));
    }

    #[test]
    fn measure_mixed_forms_are_rejected() {
        let err =
            lower_src(&format!("{HDR}qreg q[2];\ncreg c[2];\nmeasure q -> c[0];")).unwrap_err();
        assert!(err.message().contains("register -> register"));
    }

    #[test]
    fn index_out_of_range_reports_span() {
        let err = lower_src(&format!("{HDR}qreg q[2];\nh q[5];")).unwrap_err();
        assert!(err.message().contains("out of range"));
        assert_eq!(err.line(), 4);
        assert_eq!(err.col(), 3);
    }

    #[test]
    fn unknown_register_and_wrong_kind() {
        let err = lower_src(&format!("{HDR}h nope[0];")).unwrap_err();
        assert!(err.message().contains("unknown quantum register"));
        let err = lower_src(&format!("{HDR}creg c[2];\nh c[0];")).unwrap_err();
        assert!(err.message().contains("classical register"));
    }

    #[test]
    fn arity_and_param_count_mismatches() {
        let err = lower_src(&format!("{HDR}qreg q[2];\nh q[0], q[1];")).unwrap_err();
        assert!(err.message().contains("acts on 1 qubit(s)"));
        let err = lower_src(&format!("{HDR}qreg q[1];\nrz q[0];")).unwrap_err();
        assert!(err.message().contains("takes 1 parameter(s)"));
    }

    #[test]
    fn duplicate_qubit_is_rejected() {
        let err = lower_src(&format!("{HDR}qreg q[2];\ncx q[0], q[0];")).unwrap_err();
        assert!(err.message().contains("duplicate qubit"));
    }

    #[test]
    fn redefinition_is_rejected() {
        let err = lower_src(&format!("{HDR}gate h a {{ x a; }}")).unwrap_err();
        assert!(err.message().contains("already defined"));
        let err = lower_src(&format!("{HDR}qreg q[2];\nqreg q[3];")).unwrap_err();
        assert!(err.message().contains("already declared"));
    }

    #[test]
    fn gate_body_unknown_name_is_definition_time_error() {
        let err = lower_src(&format!("{HDR}gate g a {{ mystery a; }}")).unwrap_err();
        assert!(err.message().contains("unknown gate `mystery`"));
    }

    #[test]
    fn gate_body_unknown_param_is_definition_time_error() {
        let err = lower_src(&format!("{HDR}gate g(theta) a {{ rz(phi) a; }}")).unwrap_err();
        assert!(err.message().contains("unknown identifier `phi`"));
    }

    #[test]
    fn top_level_param_identifier_is_rejected() {
        let err = lower_src(&format!("{HDR}qreg q[1];\nrz(theta) q[0];")).unwrap_err();
        assert!(err.message().contains("only constants and `pi`"));
    }

    #[test]
    fn qubits_accumulate_across_qregs() {
        let lowered = lower_src(&format!("{HDR}qreg a[2];\nqreg b[3];\nx b[0];")).unwrap();
        assert_eq!(lowered.circuit.n_qubits(), 5);
        assert_eq!(lowered.circuit.gates()[0], Gate::X(Qubit::new(2)));
    }
}
