//! Hand-written OpenQASM 2.0 lexer.
//!
//! Produces a flat token stream with 1-based line/column spans. The lexer
//! keeps a copy of every source line so downstream errors can render caret
//! snippets without re-reading the file.

use crate::error::{ParseError, Span};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`qreg`, `h`, `my_gate`, `U`, `CX`, ...).
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Real literal (decimal point and/or exponent).
    Real(f64),
    /// String literal (the text between the quotes).
    Str(String),
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// `->`
    Arrow,
    /// `==`
    EqEq,
    /// End of input (always the final token).
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Real(v) => write!(f, "real `{v}`"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts (1-based).
    pub span: Span,
}

/// The token stream plus the source lines (for error snippets).
#[derive(Debug, Clone)]
pub struct TokenStream {
    /// Tokens in source order; the last is always [`TokenKind::Eof`].
    pub tokens: Vec<Token>,
    /// Source split into lines, without terminators.
    pub lines: Vec<String>,
}

impl TokenStream {
    /// The source line a span points into (empty if out of range).
    pub fn line_text(&self, span: Span) -> &str {
        self.lines
            .get(span.line.saturating_sub(1))
            .map_or("", |s| s.as_str())
    }

    /// Builds a [`ParseError`] at `span` with the matching source line.
    pub fn error_at(&self, span: Span, message: impl Into<String>) -> ParseError {
        ParseError::new(message, span, self.line_text(span))
    }
}

/// Lexes `source` into a token stream.
///
/// # Errors
///
/// Returns a [`ParseError`] on unterminated strings, malformed numbers,
/// stray characters, or a lone `=`/`-` that does not form `==`/`->`.
pub fn lex(source: &str) -> Result<TokenStream, ParseError> {
    let lines: Vec<String> = source.lines().map(str::to_string).collect();
    let mut lx = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        lines,
        tokens: Vec::new(),
    };
    lx.run()?;
    Ok(TokenStream {
        tokens: lx.tokens,
        lines: lx.lines,
    })
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    lines: Vec<String>,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, span: Span, message: impl Into<String>) -> ParseError {
        let text = self
            .lines
            .get(span.line.saturating_sub(1))
            .map_or("", |s| s.as_str());
        ParseError::new(message, span, text)
    }

    fn push(&mut self, kind: TokenKind, span: Span) {
        self.tokens.push(Token { kind, span });
    }

    fn run(&mut self) -> Result<(), ParseError> {
        while let Some(c) = self.peek() {
            let span = Span::new(self.line, self.col);
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '/' if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                ';' => self.single(TokenKind::Semicolon, span),
                ',' => self.single(TokenKind::Comma, span),
                '(' => self.single(TokenKind::LParen, span),
                ')' => self.single(TokenKind::RParen, span),
                '[' => self.single(TokenKind::LBracket, span),
                ']' => self.single(TokenKind::RBracket, span),
                '{' => self.single(TokenKind::LBrace, span),
                '}' => self.single(TokenKind::RBrace, span),
                '+' => self.single(TokenKind::Plus, span),
                '*' => self.single(TokenKind::Star, span),
                '/' => self.single(TokenKind::Slash, span),
                '^' => self.single(TokenKind::Caret, span),
                '-' => {
                    self.bump();
                    if self.peek() == Some('>') {
                        self.bump();
                        self.push(TokenKind::Arrow, span);
                    } else {
                        self.push(TokenKind::Minus, span);
                    }
                }
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::EqEq, span);
                    } else {
                        return Err(self.error(span, "stray `=`; did you mean `==`?"));
                    }
                }
                '"' => self.string(span)?,
                c if c.is_ascii_digit() || c == '.' => self.number(span)?,
                c if c.is_ascii_alphabetic() || c == '_' => self.ident(span),
                c => {
                    return Err(self.error(span, format!("unexpected character `{c}`")));
                }
            }
        }
        let span = Span::new(self.line, self.col);
        self.push(TokenKind::Eof, span);
        Ok(())
    }

    fn single(&mut self, kind: TokenKind, span: Span) {
        self.bump();
        self.push(kind, span);
    }

    fn string(&mut self, span: Span) -> Result<(), ParseError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.peek() {
                Some('"') => {
                    self.bump();
                    self.push(TokenKind::Str(s), span);
                    return Ok(());
                }
                Some('\n') | None => {
                    return Err(self.error(span, "unterminated string literal"));
                }
                Some(c) => {
                    s.push(c);
                    self.bump();
                }
            }
        }
    }

    fn ident(&mut self, span: Span) {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident(s), span);
    }

    fn number(&mut self, span: Span) -> Result<(), ParseError> {
        let mut s = String::new();
        let mut is_real = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else if c == '.' && !is_real {
                is_real = true;
                s.push(c);
                self.bump();
            } else if (c == 'e' || c == 'E') && !s.is_empty() {
                // Exponent: consumed only if followed by digits (with an
                // optional sign); otherwise it starts an identifier.
                let mut look = self.pos + 1;
                if matches!(self.chars.get(look), Some('+') | Some('-')) {
                    look += 1;
                }
                if !matches!(self.chars.get(look), Some(d) if d.is_ascii_digit()) {
                    break;
                }
                is_real = true;
                s.push(c);
                self.bump();
                if matches!(self.peek(), Some('+') | Some('-')) {
                    s.push(self.bump().expect("peeked sign"));
                }
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    s.push(self.bump().expect("peeked digit"));
                }
            } else {
                break;
            }
        }
        if s == "." {
            return Err(self.error(span, "expected digits around `.`"));
        }
        if is_real {
            let v: f64 = s
                .parse()
                .map_err(|_| self.error(span, format!("malformed real literal `{s}`")))?;
            self.push(TokenKind::Real(v), span);
        } else {
            let v: u64 = s
                .parse()
                .map_err(|_| self.error(span, format!("integer literal `{s}` overflows")))?;
            self.push(TokenKind::Int(v), span);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .unwrap()
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_header_line() {
        assert_eq!(
            kinds("OPENQASM 2.0;"),
            vec![
                TokenKind::Ident("OPENQASM".into()),
                TokenKind::Real(2.0),
                TokenKind::Semicolon,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_are_one_based() {
        let ts = lex("qreg q[4];\nh q[0];").unwrap();
        assert_eq!(ts.tokens[0].span, Span::new(1, 1));
        let h = ts
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("h".into()))
            .unwrap();
        assert_eq!(h.span, Span::new(2, 1));
        assert_eq!(ts.line_text(h.span), "h q[0];");
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("// header\nh q; // trailing"),
            vec![
                TokenKind::Ident("h".into()),
                TokenKind::Ident("q".into()),
                TokenKind::Semicolon,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn arrow_and_eqeq() {
        assert_eq!(
            kinds("-> == -"),
            vec![
                TokenKind::Arrow,
                TokenKind::EqEq,
                TokenKind::Minus,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_reals_and_exponents() {
        assert_eq!(
            kinds("3 0.25 2e3 1.5e-2"),
            vec![
                TokenKind::Int(3),
                TokenKind::Real(0.25),
                TokenKind::Real(2000.0),
                TokenKind::Real(0.015),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn exponent_without_digits_is_identifier_boundary() {
        // `2e` is the integer 2 followed by identifier `e`.
        assert_eq!(
            kinds("2e"),
            vec![
                TokenKind::Int(2),
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_lex_and_unterminated_fails() {
        assert_eq!(
            kinds("include \"qelib1.inc\";"),
            vec![
                TokenKind::Ident("include".into()),
                TokenKind::Str("qelib1.inc".into()),
                TokenKind::Semicolon,
                TokenKind::Eof
            ]
        );
        let err = lex("\"oops").unwrap_err();
        assert!(err.message().contains("unterminated"));
        assert_eq!((err.line(), err.col()), (1, 1));
    }

    #[test]
    fn stray_characters_error_with_position() {
        let err = lex("h q;\n  @").unwrap_err();
        assert!(err.message().contains('@'));
        assert_eq!((err.line(), err.col()), (2, 3));
    }

    #[test]
    fn stray_equals_is_rejected() {
        let err = lex("a = b").unwrap_err();
        assert!(err.message().contains("=="));
    }
}
