//! Source-span error reporting.
//!
//! Every failure mode of the frontend — lexing, parsing, semantic analysis,
//! lowering — is reported as a [`ParseError`] carrying the 1-based
//! line/column of the offending token plus the source line itself, so the
//! [`std::fmt::Display`] impl can render a compiler-style caret snippet:
//!
//! ```text
//! error: expected ';' after statement
//!   --> adder.qasm:3:10
//!    |
//!  3 | qreg q[4]
//!    |          ^
//! ```

use std::fmt;

/// A location in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(line: usize, col: usize) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A frontend error: what went wrong, where, and the source line it
/// happened on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    span: Span,
    line_text: String,
    file: Option<String>,
}

impl ParseError {
    /// Creates an error at `span`; `line_text` is the full source line the
    /// span points into (used for the caret snippet).
    pub fn new(message: impl Into<String>, span: Span, line_text: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
            span,
            line_text: line_text.into(),
            file: None,
        }
    }

    /// Attaches a file name, shown in the rendered snippet.
    #[must_use]
    pub fn with_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }

    /// The error message (no location).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// 1-based line of the error.
    pub fn line(&self) -> usize {
        self.span.line
    }

    /// 1-based column of the error.
    pub fn col(&self) -> usize {
        self.span.col
    }

    /// The source location.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The file name, if one was attached.
    pub fn file(&self) -> Option<&str> {
        self.file.as_deref()
    }

    /// One-line rendering: `file:line:col: message` (no snippet). Useful
    /// for logs and machine-readable output.
    pub fn to_line(&self) -> String {
        match &self.file {
            Some(f) => format!("{f}:{}: {}", self.span, self.message),
            None => format!("{}: {}", self.span, self.message),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error: {}", self.message)?;
        let file = self.file.as_deref().unwrap_or("<qasm>");
        writeln!(f, "  --> {file}:{}", self.span)?;
        // Gutter width follows the line number so the pipes align.
        let num = self.span.line.to_string();
        let pad = " ".repeat(num.len());
        writeln!(f, " {pad} |")?;
        writeln!(f, " {num} | {}", self.line_text)?;
        // The caret lands under column `col` (1-based). Tabs in the source
        // line are echoed into the pad so the caret stays aligned.
        let mut caret_pad = String::new();
        for ch in self.line_text.chars().take(self.span.col.saturating_sub(1)) {
            caret_pad.push(if ch == '\t' { '\t' } else { ' ' });
        }
        write!(f, " {pad} | {caret_pad}^")
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_caret_under_column() {
        let e = ParseError::new("expected ';'", Span::new(3, 10), "qreg q[4]");
        let s = e.to_string();
        assert!(s.contains("error: expected ';'"));
        assert!(s.contains("--> <qasm>:3:10"));
        assert!(s.contains(" 3 | qreg q[4]"));
        let caret_line = s.lines().last().unwrap();
        // " " + 1-char gutter pad + " | " + 9 pad columns + caret.
        assert_eq!(caret_line, "   |          ^");
    }

    #[test]
    fn with_file_shows_in_both_renderings() {
        let e = ParseError::new("boom", Span::new(1, 1), "x").with_file("f.qasm");
        assert!(e.to_string().contains("--> f.qasm:1:1"));
        assert_eq!(e.to_line(), "f.qasm:1:1: boom");
        assert_eq!(e.file(), Some("f.qasm"));
    }

    #[test]
    fn accessors_expose_span() {
        let e = ParseError::new("m", Span::new(7, 2), "line");
        assert_eq!((e.line(), e.col()), (7, 2));
        assert_eq!(e.span(), Span::new(7, 2));
        assert_eq!(e.message(), "m");
        assert_eq!(e.to_line(), "7:2: m");
    }
}
