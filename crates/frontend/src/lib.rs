//! # oneq-frontend
//!
//! OpenQASM 2.0 frontend for the OneQ compiler (ISCA'23 reproduction):
//! a hand-written [`lexer`], a recursive-descent [`parser`], and a
//! semantic-analysis + lowering pass ([`lower`]) that turns `.qasm`
//! programs into the [`oneq_circuit::Circuit`] IR the pipeline compiles.
//!
//! Supported subset: `OPENQASM 2.0;`, `include "qelib1.inc";`,
//! `qreg`/`creg`, user `gate` definitions (macros with parameter
//! expressions over `pi`), gate applications with whole-register
//! broadcasting, `barrier` and `measure` (validated, no IR effect).
//! `opaque`, `if` and `reset` are rejected with targeted messages.
//! Every error is a [`ParseError`] carrying a 1-based line/column span and
//! rendering a compiler-style caret snippet via `Display`.
//!
//! # Example
//!
//! ```
//! let circuit = oneq_frontend::parse_circuit(
//!     r#"OPENQASM 2.0;
//!        include "qelib1.inc";
//!        qreg q[2];
//!        h q[0];
//!        cx q[0], q[1];"#,
//! )
//! .unwrap();
//! assert_eq!(circuit.n_qubits(), 2);
//! assert_eq!(circuit.gate_count(), 2);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use error::{ParseError, Span};
pub use lower::Lowered;

use oneq_circuit::Circuit;

/// Parses and lowers an OpenQASM 2.0 program into a [`Circuit`].
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error with its
/// source span.
pub fn parse_circuit(source: &str) -> Result<Circuit, ParseError> {
    parse_lowered(source).map(|l| l.circuit)
}

/// Like [`parse_circuit`], but keeps the register tables alongside the
/// circuit.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error with its
/// source span.
pub fn parse_lowered(source: &str) -> Result<Lowered, ParseError> {
    let program = parser::parse_program(source)?;
    lower::lower(&program, source)
}

/// Like [`parse_circuit`], attaching `file` to any error (shown in the
/// rendered snippet and in [`ParseError::to_line`]).
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error with its
/// source span and the file name attached.
pub fn parse_circuit_named(source: &str, file: &str) -> Result<Circuit, ParseError> {
    parse_circuit(source).map_err(|e| e.with_file(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_parse_and_lower() {
        let c = parse_circuit(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q;\nccx q[0], q[1], q[2];",
        )
        .unwrap();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.gate_count(), 4);
    }

    #[test]
    fn named_errors_carry_the_file() {
        let err =
            parse_circuit_named("OPENQASM 2.0;\nqreg q[1];\nh q[0];", "bad.qasm").unwrap_err();
        assert_eq!(err.file(), Some("bad.qasm"));
        assert!(err.to_line().starts_with("bad.qasm:3:1: "));
        assert!(err.to_string().contains("--> bad.qasm:3:1"));
    }

    #[test]
    fn lowered_circuit_feeds_the_decomposer() {
        let c = parse_circuit(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0], q[1];\nt q[1];",
        )
        .unwrap();
        let j = oneq_circuit::decompose::to_jcz(&c);
        assert!(j.gates().iter().all(oneq_circuit::Gate::is_j_or_cz));
    }
}
