//! Recursive-descent parser for the supported OpenQASM 2.0 subset.
//!
//! Grammar (after the mandatory `OPENQASM 2.0;` header):
//!
//! ```text
//! statement := "include" string ";"
//!            | "qreg" id "[" int "]" ";"
//!            | "creg" id "[" int "]" ";"
//!            | "gate" id [ "(" [ids] ")" ] ids "{" {gop} "}"
//!            | "barrier" args ";"
//!            | "measure" arg "->" arg ";"
//!            | id [ "(" exprs ")" ] args ";"          // gate application
//! gop       := id [ "(" exprs ")" ] ids ";" | "barrier" ids ";"
//! arg       := id [ "[" int "]" ]
//! expr      := term  { ("+"|"-") term }               // precedence climbing
//! term      := unary { ("*"|"/") unary }
//! unary     := "-" unary | pow
//! pow       := atom [ "^" unary ]                     // right-associative
//! atom      := real | int | "pi" | id | id "(" expr ")" | "(" expr ")"
//! ```
//!
//! Unsupported OpenQASM 2.0 constructs — `opaque`, `if`, `reset`, includes
//! other than `qelib1.inc` — are rejected with a targeted message rather
//! than a generic syntax error.

use crate::ast::{Argument, BinOp, Expr, Func, GateDef, GateOp, Program, Stmt};
use crate::error::{ParseError, Span};
use crate::lexer::{lex, Token, TokenKind, TokenStream};

/// Parses `source` into a [`Program`] (syntax only; see
/// [`crate::lower`] for semantic analysis).
///
/// # Errors
///
/// Returns the first lexical or syntactic error, with source span.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let ts = lex(source)?;
    Parser { ts, pos: 0 }.program()
}

struct Parser {
    ts: TokenStream,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.ts.tokens[self.pos.min(self.ts.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos + 1 < self.ts.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, span: Span, message: impl Into<String>) -> ParseError {
        self.ts.error_at(span, message)
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, ParseError> {
        let t = self.peek().clone();
        if &t.kind == kind {
            Ok(self.bump())
        } else {
            Err(self.error(t.span, format!("expected {what}, found {}", t.kind)))
        }
    }

    fn expect_semicolon(&mut self) -> Result<(), ParseError> {
        self.expect(&TokenKind::Semicolon, "`;` after statement")?;
        Ok(())
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, t.span))
            }
            other => Err(self.error(t.span, format!("expected {what}, found {other}"))),
        }
    }

    fn expect_index(&mut self, what: &str) -> Result<usize, ParseError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Int(v) => {
                self.bump();
                usize::try_from(v)
                    .map_err(|_| self.error(t.span, format!("{what} `{v}` is out of range")))
            }
            other => Err(self.error(t.span, format!("expected {what}, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        self.header()?;
        let mut program = Program {
            stmts: Vec::new(),
            includes_qelib1: false,
        };
        while self.peek().kind != TokenKind::Eof {
            if let Some(stmt) = self.statement(&mut program)? {
                program.stmts.push(stmt);
            }
        }
        Ok(program)
    }

    fn header(&mut self) -> Result<(), ParseError> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Ident(k) if k == "OPENQASM" => {
                self.bump();
            }
            _ => {
                return Err(self.error(
                    t.span,
                    "expected `OPENQASM 2.0;` header as the first statement",
                ))
            }
        }
        let v = self.peek().clone();
        match v.kind {
            TokenKind::Real(2.0) => {
                self.bump();
            }
            TokenKind::Real(x) => {
                return Err(self.error(
                    v.span,
                    format!("unsupported OpenQASM version {x}; only 2.0 is supported"),
                ));
            }
            ref other => {
                return Err(self.error(v.span, format!("expected version `2.0`, found {other}")));
            }
        }
        self.expect_semicolon()
    }

    /// Parses one top-level statement. `include` statements mutate
    /// `program` directly and yield `None`.
    fn statement(&mut self, program: &mut Program) -> Result<Option<Stmt>, ParseError> {
        let t = self.peek().clone();
        let TokenKind::Ident(ref word) = t.kind else {
            return Err(self.error(t.span, format!("expected a statement, found {}", t.kind)));
        };
        match word.as_str() {
            "include" => {
                self.include(program)?;
                Ok(None)
            }
            "qreg" | "creg" => self.register(word.clone(), t.span).map(Some),
            "gate" => self.gate_def(t.span).map(Some),
            "barrier" => {
                self.bump();
                let args = self.argument_list()?;
                self.expect_semicolon()?;
                Ok(Some(Stmt::Barrier { args, span: t.span }))
            }
            "measure" => {
                self.bump();
                let src = self.argument()?;
                self.expect(&TokenKind::Arrow, "`->` in measure statement")?;
                let dst = self.argument()?;
                self.expect_semicolon()?;
                Ok(Some(Stmt::Measure {
                    src,
                    dst,
                    span: t.span,
                }))
            }
            "opaque" => Err(self.error(
                t.span,
                "unsupported construct: `opaque` gates have no body to lower; \
                 define the gate with `gate ... { ... }` instead",
            )),
            "if" => Err(self.error(
                t.span,
                "unsupported construct: classically-controlled `if` statements \
                 (the OneQ pipeline compiles straight-line circuits)",
            )),
            "reset" => Err(self.error(
                t.span,
                "unsupported construct: `reset` (mid-circuit re-initialization \
                 has no one-way equivalent in this pipeline)",
            )),
            _ => self.apply(t.span).map(Some),
        }
    }

    fn include(&mut self, program: &mut Program) -> Result<(), ParseError> {
        self.bump(); // `include`
        let t = self.peek().clone();
        let TokenKind::Str(ref path) = t.kind else {
            return Err(self.error(t.span, format!("expected include path, found {}", t.kind)));
        };
        if path != "qelib1.inc" {
            return Err(self.error(
                t.span,
                format!("unsupported include \"{path}\"; only \"qelib1.inc\" is available"),
            ));
        }
        program.includes_qelib1 = true;
        self.bump();
        self.expect_semicolon()
    }

    fn register(&mut self, keyword: String, span: Span) -> Result<Stmt, ParseError> {
        self.bump(); // `qreg` / `creg`
        let (name, _) = self.expect_ident("register name")?;
        self.expect(&TokenKind::LBracket, "`[` after register name")?;
        let size_span = self.peek().span;
        let size = self.expect_index("register size")?;
        if size == 0 {
            return Err(self.error(size_span, format!("register `{name}` must not be empty")));
        }
        self.expect(&TokenKind::RBracket, "`]` after register size")?;
        self.expect_semicolon()?;
        if keyword == "qreg" {
            Ok(Stmt::QReg { name, size, span })
        } else {
            Ok(Stmt::CReg { name, size, span })
        }
    }

    fn gate_def(&mut self, span: Span) -> Result<Stmt, ParseError> {
        self.bump(); // `gate`
        let (name, _) = self.expect_ident("gate name")?;
        let params = if self.peek().kind == TokenKind::LParen {
            self.bump();
            let names = if self.peek().kind == TokenKind::RParen {
                Vec::new()
            } else {
                self.ident_list("parameter name")?
            };
            self.expect(&TokenKind::RParen, "`)` after gate parameters")?;
            names
        } else {
            Vec::new()
        };
        let qargs = self.ident_list("qubit argument name")?;
        self.expect(&TokenKind::LBrace, "`{` before gate body")?;
        let mut body = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            if self.peek().kind == TokenKind::Eof {
                let t = self.peek().clone();
                return Err(self.error(t.span, format!("unclosed body of gate `{name}`")));
            }
            if let Some(op) = self.gate_op(&name)? {
                body.push(op);
            }
        }
        self.bump(); // `}`
        Ok(Stmt::Gate(GateDef {
            name,
            params,
            qargs,
            body,
            span,
        }))
    }

    /// One operation inside a gate body; `barrier` yields `None`.
    fn gate_op(&mut self, gate: &str) -> Result<Option<GateOp>, ParseError> {
        let t = self.peek().clone();
        let (word, span) = self.expect_ident("gate application")?;
        match word.as_str() {
            "barrier" => {
                // Barriers are scheduling hints; the lowering keeps program
                // order anyway, so they are validated and dropped.
                self.ident_list("qubit argument name")?;
                self.expect_semicolon()?;
                Ok(None)
            }
            "measure" | "reset" | "if" | "gate" | "qreg" | "creg" | "opaque" | "include" => {
                Err(self.error(
                    t.span,
                    format!("`{word}` is not allowed inside the body of gate `{gate}`"),
                ))
            }
            _ => {
                let params = self.call_params()?;
                let args = self.ident_list("qubit argument name")?;
                self.expect_semicolon()?;
                Ok(Some(GateOp {
                    name: word,
                    params,
                    args,
                    span,
                }))
            }
        }
    }

    fn apply(&mut self, span: Span) -> Result<Stmt, ParseError> {
        let (name, _) = self.expect_ident("gate name")?;
        let params = self.call_params()?;
        let args = self.argument_list()?;
        self.expect_semicolon()?;
        Ok(Stmt::Apply {
            name,
            params,
            args,
            span,
        })
    }

    /// `( expr, ... )` if present; empty otherwise.
    fn call_params(&mut self) -> Result<Vec<Expr>, ParseError> {
        if self.peek().kind != TokenKind::LParen {
            return Ok(Vec::new());
        }
        self.bump();
        let mut params = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                params.push(self.expr()?);
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)` after gate parameters")?;
        Ok(params)
    }

    fn ident_list(&mut self, what: &str) -> Result<Vec<String>, ParseError> {
        let mut names = vec![self.expect_ident(what)?.0];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            names.push(self.expect_ident(what)?.0);
        }
        Ok(names)
    }

    fn argument(&mut self) -> Result<Argument, ParseError> {
        let (reg, span) = self.expect_ident("register name")?;
        let index = if self.peek().kind == TokenKind::LBracket {
            self.bump();
            let i = self.expect_index("register index")?;
            self.expect(&TokenKind::RBracket, "`]` after register index")?;
            Some(i)
        } else {
            None
        };
        Ok(Argument { reg, index, span })
    }

    fn argument_list(&mut self) -> Result<Vec<Argument>, ParseError> {
        let mut args = vec![self.argument()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            args.push(self.argument()?);
        }
        Ok(args)
    }

    // --- parameter expressions -------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek().kind == TokenKind::Minus {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.pow()
    }

    fn pow(&mut self) -> Result<Expr, ParseError> {
        let base = self.atom()?;
        if self.peek().kind == TokenKind::Caret {
            self.bump();
            let exp = self.unary()?;
            return Ok(Expr::Binary(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Real(v) => {
                self.bump();
                Ok(Expr::Real(v))
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)` closing the expression")?;
                Ok(e)
            }
            TokenKind::Ident(ref name) if name == "pi" => {
                self.bump();
                Ok(Expr::Pi)
            }
            TokenKind::Ident(ref name) => {
                if let Some(f) = Func::from_name(name) {
                    self.bump();
                    self.expect(&TokenKind::LParen, "`(` after function name")?;
                    let e = self.expr()?;
                    self.expect(&TokenKind::RParen, "`)` after function argument")?;
                    Ok(Expr::Call(f, Box::new(e)))
                } else {
                    let name = name.clone();
                    self.bump();
                    Ok(Expr::Param(name, t.span))
                }
            }
            ref other => Err(self.error(t.span, format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::f64::consts::PI;

    fn parse_ok(src: &str) -> Program {
        parse_program(src).expect("program should parse")
    }

    #[test]
    fn minimal_program_parses() {
        let p = parse_ok("OPENQASM 2.0;\nqreg q[3];\n");
        assert_eq!(p.stmts.len(), 1);
        assert!(matches!(
            p.stmts[0],
            Stmt::QReg { ref name, size: 3, .. } if name == "q"
        ));
        assert!(!p.includes_qelib1);
    }

    #[test]
    fn include_qelib1_sets_flag() {
        let p = parse_ok("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
        assert!(p.includes_qelib1);
        assert!(p.stmts.is_empty());
    }

    #[test]
    fn other_includes_are_rejected() {
        let err = parse_program("OPENQASM 2.0;\ninclude \"other.inc\";").unwrap_err();
        assert!(err.message().contains("other.inc"));
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = parse_program("qreg q[1];").unwrap_err();
        assert!(err.message().contains("OPENQASM 2.0"));
        assert_eq!((err.line(), err.col()), (1, 1));
    }

    #[test]
    fn qasm3_is_rejected_with_version() {
        let err = parse_program("OPENQASM 3.0;").unwrap_err();
        assert!(err.message().contains("only 2.0"));
    }

    #[test]
    fn missing_semicolon_points_at_next_token() {
        let err = parse_program("OPENQASM 2.0;\nqreg q[4]\nqreg r[2];").unwrap_err();
        assert!(err.message().contains("`;`"));
        assert_eq!((err.line(), err.col()), (3, 1));
    }

    #[test]
    fn apply_with_params_and_indices() {
        let p = parse_ok("OPENQASM 2.0;\nqreg q[2];\ncu1(pi/4) q[1], q[0];");
        let Stmt::Apply {
            ref name,
            ref params,
            ref args,
            ..
        } = p.stmts[1]
        else {
            panic!("expected apply");
        };
        assert_eq!(name, "cu1");
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].eval(&HashMap::new()).unwrap(), PI / 4.0);
        assert_eq!(args[0].to_string(), "q[1]");
        assert_eq!(args[1].to_string(), "q[0]");
    }

    #[test]
    fn gate_definition_roundtrip() {
        let p = parse_ok(
            "OPENQASM 2.0;\n\
             gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }\n",
        );
        let Stmt::Gate(ref def) = p.stmts[0] else {
            panic!("expected gate def");
        };
        assert_eq!(def.name, "majority");
        assert!(def.params.is_empty());
        assert_eq!(def.qargs, vec!["a", "b", "c"]);
        assert_eq!(def.body.len(), 3);
        assert_eq!(def.body[2].name, "ccx");
    }

    #[test]
    fn parameterized_gate_definition() {
        let p = parse_ok(
            "OPENQASM 2.0;\n\
             gate rot(theta) a { rx(theta/2) a; rx(theta/2) a; }\n",
        );
        let Stmt::Gate(ref def) = p.stmts[0] else {
            panic!("expected gate def");
        };
        assert_eq!(def.params, vec!["theta"]);
        let mut env = HashMap::new();
        env.insert("theta".to_string(), PI);
        assert_eq!(def.body[0].params[0].eval(&env).unwrap(), PI / 2.0);
    }

    #[test]
    fn barrier_in_gate_body_is_dropped() {
        let p = parse_ok("OPENQASM 2.0;\ngate g a,b { cx a,b; barrier a,b; cx a,b; }");
        let Stmt::Gate(ref def) = p.stmts[0] else {
            panic!("expected gate def");
        };
        assert_eq!(def.body.len(), 2);
    }

    #[test]
    fn measure_and_barrier_statements() {
        let p =
            parse_ok("OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nbarrier q;\nmeasure q[0] -> c[0];");
        assert!(matches!(p.stmts[2], Stmt::Barrier { .. }));
        assert!(matches!(p.stmts[3], Stmt::Measure { .. }));
    }

    #[test]
    fn unsupported_constructs_have_targeted_messages() {
        for (src, needle) in [
            ("OPENQASM 2.0;\nopaque magic q;", "opaque"),
            (
                "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c==1) x q[0];",
                "if",
            ),
            ("OPENQASM 2.0;\nqreg q[1];\nreset q[0];", "reset"),
        ] {
            let err = parse_program(src).unwrap_err();
            assert!(err.message().contains(needle), "{src}: {}", err.message());
        }
    }

    #[test]
    fn expression_precedence() {
        let p = parse_ok("OPENQASM 2.0;\nqreg q[1];\nrz(1+2*3) q[0];");
        let Stmt::Apply { ref params, .. } = p.stmts[1] else {
            panic!()
        };
        assert_eq!(params[0].eval(&HashMap::new()).unwrap(), 7.0);
        let p = parse_ok("OPENQASM 2.0;\nqreg q[1];\nrz(-2^2) q[0];");
        let Stmt::Apply { ref params, .. } = p.stmts[1] else {
            panic!()
        };
        assert_eq!(params[0].eval(&HashMap::new()).unwrap(), -4.0);
        let p = parse_ok("OPENQASM 2.0;\nqreg q[1];\nrz((1+2)*sin(0)) q[0];");
        let Stmt::Apply { ref params, .. } = p.stmts[1] else {
            panic!()
        };
        assert_eq!(params[0].eval(&HashMap::new()).unwrap(), 0.0);
    }

    #[test]
    fn empty_register_is_rejected() {
        let err = parse_program("OPENQASM 2.0;\nqreg q[0];").unwrap_err();
        assert!(err.message().contains("must not be empty"));
        assert_eq!((err.line(), err.col()), (2, 8));
    }

    #[test]
    fn unclosed_gate_body_is_reported() {
        let err = parse_program("OPENQASM 2.0;\ngate g a { cx a,a;").unwrap_err();
        assert!(err.message().contains("unclosed body"));
    }
}
