//! Causal-flow executability analysis (paper §4, Lemma 1).
//!
//! MBQC's classical feed-forward induces a partial order between
//! measurements. The paper's Lemma 1 states the executability condition:
//!
//! > A measurement on a qubit is executable if all its X-dependent qubits
//! > are measured and all the Z-dependent qubits of all its X-dependent
//! > qubits are measured.
//!
//! Z-dependencies alone never block execution (a π shift of the basis is a
//! re-interpretation of the outcome), and Pauli-basis measurements are
//! never blocked at all: sign flips and π shifts map X/Y/Z bases to
//! themselves, which is why all Clifford gates execute simultaneously
//! (paper §2.2.2). The *dependency layers* produced here are the unit the
//! partitioner schedules (paper §4).

use crate::pattern::Pattern;
use oneq_graph::NodeId;

/// The effective blocking dependency set of `node` per Lemma 1, after
/// Clifford pruning: empty for Pauli-basis and output nodes, otherwise the
/// X-dependencies plus the Z-dependencies of those X-dependencies.
pub fn blocking_deps(pattern: &Pattern, node: NodeId) -> Vec<NodeId> {
    if !pattern.basis(node).is_adaptive() {
        return Vec::new();
    }
    let mut deps: Vec<NodeId> = Vec::new();
    for &x in pattern.x_deps(node) {
        if !deps.contains(&x) {
            deps.push(x);
        }
        for &z in pattern.z_deps(x) {
            if z != node && !deps.contains(&z) {
                deps.push(z);
            }
        }
    }
    deps
}

/// Groups the measured nodes of `pattern` into *dependency layers*: layer
/// `k` holds measurements that become executable once layers `< k` are
/// done. Output nodes are not included.
///
/// # Panics
///
/// Panics if the dependency relation is cyclic, which cannot happen for
/// patterns produced by [`crate::translate::from_circuit`] (circuits always
/// induce a causal flow).
///
/// # Example
///
/// ```
/// use oneq_circuit::Circuit;
/// use oneq_mbqc::{flow, translate};
///
/// let mut c = Circuit::new(1);
/// c.t(0).t(0); // two dependent non-Clifford measurements
/// let p = translate::from_circuit(&c);
/// let layers = flow::dependency_layers(&p);
/// assert!(layers.len() >= 2);
/// ```
pub fn dependency_layers(pattern: &Pattern) -> Vec<Vec<NodeId>> {
    let measured = pattern.measured_nodes();
    if measured.is_empty() {
        return Vec::new();
    }
    let is_measured: Vec<bool> = {
        let mut v = vec![false; pattern.node_count()];
        for &n in &measured {
            v[n.index()] = true;
        }
        v
    };

    // layer[n] = Some(k) once assigned.
    let mut layer: Vec<Option<usize>> = vec![None; pattern.node_count()];
    let mut remaining: Vec<NodeId> = measured.clone();
    let mut iterations = 0usize;
    while !remaining.is_empty() {
        iterations += 1;
        assert!(
            iterations <= pattern.node_count() + 1,
            "cyclic measurement dependencies: pattern has no causal flow"
        );
        let mut next_remaining = Vec::new();
        let mut progressed = false;
        for &n in &remaining {
            let deps = blocking_deps(pattern, n);
            let mut ready = true;
            let mut level = 0usize;
            for d in deps {
                // Dependencies on output nodes never occur (outputs are
                // unmeasured); dependencies on unmeasured non-output nodes
                // are impossible by construction.
                if !is_measured[d.index()] {
                    continue;
                }
                match layer[d.index()] {
                    Some(k) => level = level.max(k + 1),
                    None => {
                        ready = false;
                        break;
                    }
                }
            }
            if ready {
                layer[n.index()] = Some(level);
                progressed = true;
            } else {
                next_remaining.push(n);
            }
        }
        assert!(
            progressed || next_remaining.is_empty(),
            "cyclic measurement dependencies: pattern has no causal flow"
        );
        remaining = next_remaining;
    }

    let max_layer = layer.iter().flatten().copied().max().unwrap_or(0);
    let mut layers: Vec<Vec<NodeId>> = vec![Vec::new(); max_layer + 1];
    for &n in &measured {
        let k = layer[n.index()].expect("all measured nodes were layered");
        layers[k].push(n);
    }
    layers
}

/// A total measurement order compatible with the dependency layers.
pub fn measurement_order(pattern: &Pattern) -> Vec<NodeId> {
    dependency_layers(pattern).into_iter().flatten().collect()
}

/// *Scheduled* layers: the dependency layers of [`dependency_layers`] with
/// each measurement postponed to at least its causal-flow predecessor's
/// layer.
///
/// Lemma 1 gives the **earliest** time a measurement may run; running it
/// later is always legal (paper §4: "dependency layers within the same
/// partition do not have to be scheduled strictly according to their
/// executability orders"). Pinning every node at its earliest time tears
/// wires apart — a wire alternates Pauli and adaptive measurements, so its
/// Pauli nodes would all sit in layer 0 while their neighbours sit
/// arbitrarily late, and almost every wire edge would cross partitions.
/// Postponing each node to its wire predecessor's layer keeps wires
/// layer-monotone and the partition graphs local, which is what makes the
/// compact layouts of paper §6 possible.
pub fn scheduled_layers(pattern: &Pattern) -> Vec<Vec<NodeId>> {
    let earliest = dependency_layers(pattern);
    if earliest.is_empty() {
        return Vec::new();
    }
    let mut layer = vec![0usize; pattern.node_count()];
    for (k, l) in earliest.iter().enumerate() {
        for &n in l {
            layer[n.index()] = k;
        }
    }
    // Wire predecessor: u with flow(u) = v.
    let mut pred: Vec<Option<NodeId>> = vec![None; pattern.node_count()];
    for u in pattern.nodes() {
        if let Some(v) = pattern.flow(u) {
            pred[v.index()] = Some(u);
        }
    }
    // Blocking dependencies and wire predecessors are always created
    // earlier than the node itself, so a single forward id-order sweep
    // reaches the fixpoint of
    //   layer(v) >= layer(pred(v))          (wire monotonicity)
    //   layer(v) >  layer(d) for blocking d (Lemma 1 stays satisfied).
    let measured = pattern.measured_nodes();
    for &v in &measured {
        if let Some(u) = pred[v.index()] {
            if pattern.basis(u).is_measured() {
                layer[v.index()] = layer[v.index()].max(layer[u.index()]);
            }
        }
        for d in blocking_deps(pattern, v) {
            if pattern.basis(d).is_measured() {
                layer[v.index()] = layer[v.index()].max(layer[d.index()] + 1);
            }
        }
    }
    let max_layer = measured
        .iter()
        .map(|&n| layer[n.index()])
        .max()
        .unwrap_or(0);
    let mut layers = vec![Vec::new(); max_layer + 1];
    for &n in &measured {
        layers[layer[n.index()]].push(n);
    }
    layers.retain(|l| !l.is_empty());
    layers
}

/// Summary statistics of a pattern's feed-forward structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowStats {
    /// Number of measured qubits.
    pub measured: usize,
    /// Number of adaptive (blocking) measurements.
    pub adaptive: usize,
    /// Number of dependency layers.
    pub layers: usize,
}

/// Computes [`FlowStats`] for a pattern.
pub fn stats(pattern: &Pattern) -> FlowStats {
    FlowStats {
        measured: pattern.measured_nodes().len(),
        adaptive: pattern.adaptive_count(),
        layers: dependency_layers(pattern).len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate;
    use oneq_circuit::{benchmarks, Circuit};

    #[test]
    fn clifford_circuit_is_single_layer() {
        // BV is all-Clifford: every measurement is executable immediately.
        let c = benchmarks::bv(&[true, true, false, true]);
        let p = translate::from_circuit(&c);
        let layers = dependency_layers(&p);
        assert_eq!(layers.len(), 1, "Clifford measurements form one layer");
        let total: usize = layers.iter().map(Vec::len).sum();
        assert_eq!(total, p.measured_nodes().len());
    }

    #[test]
    fn sequential_t_gates_collapse_to_two_layers() {
        // T gates commute: their adaptive measurements X-depend only on the
        // intervening Pauli (X-basis) nodes, so they parallelize.
        let mut c = Circuit::new(1);
        c.t(0).t(0).t(0);
        let p = translate::from_circuit(&c);
        let layers = dependency_layers(&p);
        assert_eq!(layers.len(), 2, "got {} layers", layers.len());
    }

    #[test]
    fn chained_non_clifford_js_stack_layers() {
        // Raw J(0.3) gates produce a chain of adaptive measurements, each
        // X-depending on the previous one: layers grow linearly.
        let mut c = Circuit::new(1);
        c.j(0, 0.3).j(0, 0.3).j(0, 0.3);
        let p = translate::from_circuit(&c);
        let layers = dependency_layers(&p);
        assert_eq!(layers.len(), 3, "got {} layers", layers.len());
    }

    #[test]
    fn parallel_t_gates_share_a_layer() {
        let mut c = Circuit::new(3);
        c.t(0).t(1).t(2);
        let p = translate::from_circuit(&c);
        let layers = dependency_layers(&p);
        // The three adaptive measurements are independent.
        assert!(layers.len() <= 2, "got {} layers", layers.len());
    }

    #[test]
    fn layers_partition_measured_nodes() {
        let c = benchmarks::qft(4);
        let p = translate::from_circuit(&c);
        let layers = dependency_layers(&p);
        let mut seen = std::collections::HashSet::new();
        for l in &layers {
            for &n in l {
                assert!(seen.insert(n), "node appears in two layers");
            }
        }
        assert_eq!(seen.len(), p.measured_nodes().len());
    }

    #[test]
    fn layer_respects_lemma_one() {
        let c = benchmarks::qft(5);
        let p = translate::from_circuit(&c);
        let layers = dependency_layers(&p);
        let mut level = vec![usize::MAX; p.node_count()];
        for (k, l) in layers.iter().enumerate() {
            for &n in l {
                level[n.index()] = k;
            }
        }
        for (k, l) in layers.iter().enumerate() {
            for &n in l {
                for d in blocking_deps(&p, n) {
                    if level[d.index()] != usize::MAX {
                        assert!(
                            level[d.index()] < k,
                            "dependency {d} of {n} not in an earlier layer"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pauli_nodes_have_no_blocking_deps() {
        let c = benchmarks::bv(&[true, false]);
        let p = translate::from_circuit(&c);
        for n in p.measured_nodes() {
            assert!(blocking_deps(&p, n).is_empty());
        }
    }

    #[test]
    fn empty_pattern_has_no_layers() {
        let p = Pattern::new();
        assert!(dependency_layers(&p).is_empty());
    }

    #[test]
    fn measurement_order_is_consistent() {
        let c = benchmarks::qft(3);
        let p = translate::from_circuit(&c);
        let order = measurement_order(&p);
        assert_eq!(order.len(), p.measured_nodes().len());
    }

    #[test]
    fn scheduled_layers_cover_measured_nodes() {
        let c = benchmarks::qft(4);
        let p = translate::from_circuit(&c);
        let layers = scheduled_layers(&p);
        let total: usize = layers.iter().map(Vec::len).sum();
        assert_eq!(total, p.measured_nodes().len());
        assert!(layers.iter().all(|l| !l.is_empty()));
    }

    #[test]
    fn scheduled_layers_never_precede_earliest() {
        let c = benchmarks::qft(5);
        let p = translate::from_circuit(&c);
        let earliest = dependency_layers(&p);
        let scheduled = scheduled_layers(&p);
        let mut e = vec![usize::MAX; p.node_count()];
        let mut s = vec![usize::MAX; p.node_count()];
        for (k, l) in earliest.iter().enumerate() {
            for &n in l {
                e[n.index()] = k;
            }
        }
        for (k, l) in scheduled.iter().enumerate() {
            for &n in l {
                s[n.index()] = k;
            }
        }
        for n in p.measured_nodes() {
            assert!(
                s[n.index()] >= e[n.index()],
                "postponement only moves measurements later"
            );
        }
    }

    #[test]
    fn scheduled_layers_are_wire_monotone() {
        let c = benchmarks::qft(4);
        let p = translate::from_circuit(&c);
        let scheduled = scheduled_layers(&p);
        let mut s = vec![usize::MAX; p.node_count()];
        for (k, l) in scheduled.iter().enumerate() {
            for &n in l {
                s[n.index()] = k;
            }
        }
        for u in p.measured_nodes() {
            if let Some(v) = p.flow(u) {
                if p.basis(v).is_measured() {
                    assert!(
                        s[v.index()] >= s[u.index()],
                        "wire successor {v} scheduled before {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn scheduled_layers_still_respect_lemma_one() {
        let c = benchmarks::qft(5);
        let p = translate::from_circuit(&c);
        let scheduled = scheduled_layers(&p);
        let mut s = vec![usize::MAX; p.node_count()];
        for (k, l) in scheduled.iter().enumerate() {
            for &n in l {
                s[n.index()] = k;
            }
        }
        for n in p.measured_nodes() {
            for d in blocking_deps(&p, n) {
                if s[d.index()] != usize::MAX {
                    assert!(s[d.index()] < s[n.index()]);
                }
            }
        }
    }

    #[test]
    fn clifford_scheduled_layers_follow_wires() {
        // BV: one dependency layer, but scheduling still spreads wires
        // monotonically without creating extra layers.
        let c = benchmarks::bv(&[true, false, true]);
        let p = translate::from_circuit(&c);
        assert_eq!(scheduled_layers(&p).len(), 1);
    }

    #[test]
    fn stats_reports_counts() {
        let c = benchmarks::qft(3);
        let p = translate::from_circuit(&c);
        let s = stats(&p);
        assert_eq!(s.measured, p.measured_nodes().len());
        assert!(s.adaptive > 0);
        assert!(s.layers >= 1);
    }

    use crate::pattern::Pattern;
}
