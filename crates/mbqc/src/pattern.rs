//! Measurement patterns over graph states.

use crate::basis::Basis;
use oneq_graph::{Graph, GraphError, NodeId};
use std::fmt;

/// Errors produced when assembling patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternError {
    /// An underlying graph mutation failed.
    Graph(GraphError),
    /// A node id was out of range for this pattern.
    InvalidNode(NodeId),
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::Graph(e) => write!(f, "graph error: {e}"),
            PatternError::InvalidNode(n) => write!(f, "node {n} does not exist in the pattern"),
        }
    }
}

impl std::error::Error for PatternError {}

impl From<GraphError> for PatternError {
    fn from(e: GraphError) -> Self {
        PatternError::Graph(e)
    }
}

/// A measurement pattern: a graph state plus per-qubit measurement bases
/// and the classical feed-forward structure (paper §2.2.1).
///
/// Each node is a graph-state qubit. `x_deps(i)` lists the qubits whose
/// measurement outcomes flip the sign of `i`'s measurement angle
/// (X-dependencies); `z_deps(i)` lists the qubits whose outcomes shift it
/// by π (Z-dependencies). Input and output node lists identify the logical
/// wires.
///
/// # Example
///
/// ```
/// use oneq_mbqc::{Basis, Pattern};
///
/// let mut p = Pattern::new();
/// let a = p.add_node(Basis::x());
/// let b = p.add_node(Basis::Output);
/// p.add_entangling_edge(a, b)?;
/// p.add_x_dependency(b, a)?;
/// assert_eq!(p.node_count(), 2);
/// assert_eq!(p.x_deps(b), &[a]);
/// # Ok::<(), oneq_mbqc::PatternError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Pattern {
    graph: Graph,
    basis: Vec<Basis>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    x_deps: Vec<Vec<NodeId>>,
    z_deps: Vec<Vec<NodeId>>,
    /// Causal-flow successor per node: the qubit receiving the X-correction
    /// when this node is measured.
    flow: Vec<Option<NodeId>>,
}

impl Pattern {
    /// Creates an empty pattern.
    pub fn new() -> Self {
        Pattern::default()
    }

    /// Adds a qubit with the given basis and returns its node id.
    pub fn add_node(&mut self, basis: Basis) -> NodeId {
        let id = self.graph.add_node();
        self.basis.push(basis);
        self.x_deps.push(Vec::new());
        self.z_deps.push(Vec::new());
        self.flow.push(None);
        id
    }

    /// Adds (or, since CZ is involutive, *toggles*) an entangling edge.
    ///
    /// Two CZs between the same pair cancel, so inserting an existing edge
    /// removes it.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid endpoints or self-loops.
    pub fn add_entangling_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), PatternError> {
        if self.graph.has_edge(a, b) {
            self.graph.remove_edge(a, b);
            Ok(())
        } else {
            self.graph.add_edge(a, b)?;
            Ok(())
        }
    }

    /// Declares `n` an input node.
    pub fn mark_input(&mut self, n: NodeId) {
        self.inputs.push(n);
    }

    /// Declares `n` an output node (its basis should be [`Basis::Output`]).
    pub fn mark_output(&mut self, n: NodeId) {
        self.outputs.push(n);
    }

    /// Records that `node`'s angle sign depends on `on`'s outcome.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::InvalidNode`] for unknown ids.
    pub fn add_x_dependency(&mut self, node: NodeId, on: NodeId) -> Result<(), PatternError> {
        self.check(node)?;
        self.check(on)?;
        if !self.x_deps[node.index()].contains(&on) {
            self.x_deps[node.index()].push(on);
        }
        Ok(())
    }

    /// Records that `node`'s angle shifts by π depending on `on`'s outcome.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::InvalidNode`] for unknown ids.
    pub fn add_z_dependency(&mut self, node: NodeId, on: NodeId) -> Result<(), PatternError> {
        self.check(node)?;
        self.check(on)?;
        if !self.z_deps[node.index()].contains(&on) {
            self.z_deps[node.index()].push(on);
        }
        Ok(())
    }

    /// Sets the causal-flow successor of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::InvalidNode`] for unknown ids.
    pub fn set_flow(&mut self, node: NodeId, successor: NodeId) -> Result<(), PatternError> {
        self.check(node)?;
        self.check(successor)?;
        self.flow[node.index()] = Some(successor);
        Ok(())
    }

    /// Reassigns the basis of an existing node (crate-internal: the
    /// translation fixes a wire node's basis when the wire advances).
    pub(crate) fn set_basis_internal(&mut self, n: NodeId, basis: Basis) {
        self.basis[n.index()] = basis;
    }

    fn check(&self, n: NodeId) -> Result<(), PatternError> {
        if self.graph.contains_node(n) {
            Ok(())
        } else {
            Err(PatternError::InvalidNode(n))
        }
    }

    /// The underlying graph state.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of graph-state qubits.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of entangling edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The measurement basis of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn basis(&self, n: NodeId) -> Basis {
        self.basis[n.index()]
    }

    /// Input nodes in wire order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Output nodes in wire order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// X-dependencies of `n` (outcomes that flip its angle sign).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn x_deps(&self, n: NodeId) -> &[NodeId] {
        &self.x_deps[n.index()]
    }

    /// Z-dependencies of `n` (outcomes that shift its angle by π).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn z_deps(&self, n: NodeId) -> &[NodeId] {
        &self.z_deps[n.index()]
    }

    /// The causal-flow successor of `n`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn flow(&self, n: NodeId) -> Option<NodeId> {
        self.flow[n.index()]
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.nodes()
    }

    /// Nodes that are actually measured (everything except outputs).
    pub fn measured_nodes(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|&n| self.basis(n).is_measured())
            .collect()
    }

    /// Number of adaptive (non-Pauli equatorial) measurements.
    pub fn adaptive_count(&self) -> usize {
        self.nodes()
            .filter(|&n| self.basis(n).is_adaptive())
            .count()
    }

    /// Maximum node degree of the graph state — the quantity that forces
    /// node synthesis on low-degree resource states (paper challenge 2).
    pub fn max_degree(&self) -> usize {
        self.graph.max_degree()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Pattern(nodes={}, edges={}, inputs={}, outputs={}, adaptive={})",
            self.node_count(),
            self.edge_count(),
            self.inputs.len(),
            self.outputs.len(),
            self.adaptive_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_pattern() {
        let mut p = Pattern::new();
        let a = p.add_node(Basis::x());
        let b = p.add_node(Basis::Equatorial(0.7));
        let c = p.add_node(Basis::Output);
        p.add_entangling_edge(a, b).unwrap();
        p.add_entangling_edge(b, c).unwrap();
        p.mark_input(a);
        p.mark_output(c);
        p.add_x_dependency(b, a).unwrap();
        p.add_x_dependency(c, b).unwrap();
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.edge_count(), 2);
        assert_eq!(p.inputs(), &[a]);
        assert_eq!(p.outputs(), &[c]);
        assert_eq!(p.x_deps(b), &[a]);
        assert_eq!(p.measured_nodes(), vec![a, b]);
        assert_eq!(p.adaptive_count(), 1);
    }

    #[test]
    fn double_cz_cancels() {
        let mut p = Pattern::new();
        let a = p.add_node(Basis::x());
        let b = p.add_node(Basis::x());
        p.add_entangling_edge(a, b).unwrap();
        assert_eq!(p.edge_count(), 1);
        p.add_entangling_edge(a, b).unwrap();
        assert_eq!(p.edge_count(), 0);
    }

    #[test]
    fn dependencies_are_deduplicated() {
        let mut p = Pattern::new();
        let a = p.add_node(Basis::x());
        let b = p.add_node(Basis::Equatorial(0.3));
        p.add_x_dependency(b, a).unwrap();
        p.add_x_dependency(b, a).unwrap();
        assert_eq!(p.x_deps(b).len(), 1);
        p.add_z_dependency(b, a).unwrap();
        p.add_z_dependency(b, a).unwrap();
        assert_eq!(p.z_deps(b).len(), 1);
    }

    #[test]
    fn invalid_node_errors() {
        let mut p = Pattern::new();
        let a = p.add_node(Basis::x());
        let ghost = NodeId::new(9);
        assert!(matches!(
            p.add_x_dependency(a, ghost),
            Err(PatternError::InvalidNode(_))
        ));
        assert!(matches!(
            p.set_flow(ghost, a),
            Err(PatternError::InvalidNode(_))
        ));
    }

    #[test]
    fn flow_roundtrip() {
        let mut p = Pattern::new();
        let a = p.add_node(Basis::x());
        let b = p.add_node(Basis::Output);
        p.set_flow(a, b).unwrap();
        assert_eq!(p.flow(a), Some(b));
        assert_eq!(p.flow(b), None);
    }

    #[test]
    fn display_summarizes() {
        let mut p = Pattern::new();
        p.add_node(Basis::x());
        let s = format!("{p}");
        assert!(s.contains("nodes=1"));
    }
}
