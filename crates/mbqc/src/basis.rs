//! Measurement bases for MBQC patterns.

use oneq_circuit::Angle;
use std::f64::consts::PI;
use std::fmt;

/// The measurement basis assigned to a graph-state qubit.
///
/// Computation uses equatorial measurements `E(α)` (X–Y plane of the Bloch
/// sphere at angle `α`); `E(0)` is the X basis and `E(±π/2)` the Y basis.
/// Z-basis measurements remove a qubit from the graph state (used for
/// redundant qubits and unused resource-state photons). Output qubits are
/// not measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Basis {
    /// Equatorial measurement at the given angle (radians).
    Equatorial(Angle),
    /// Z-basis measurement: deletes the qubit from the graph state.
    Z,
    /// The qubit carries the output and is not measured.
    Output,
}

impl Basis {
    /// X-basis measurement, `E(0)`.
    pub fn x() -> Self {
        Basis::Equatorial(0.0)
    }

    /// Y-basis measurement, `E(π/2)`.
    pub fn y() -> Self {
        Basis::Equatorial(PI / 2.0)
    }

    /// `true` when this is a Pauli (X, Y or Z) measurement. Pauli
    /// measurements never require adaptivity: sign flips and π shifts map
    /// the basis to itself up to outcome reinterpretation (paper §4).
    pub fn is_pauli(&self) -> bool {
        match self {
            Basis::Equatorial(a) => oneq_circuit::is_clifford_angle(*a),
            Basis::Z => true,
            Basis::Output => false,
        }
    }

    /// `true` when measuring in this basis may need to wait for other
    /// outcomes (a non-Pauli equatorial measurement).
    pub fn is_adaptive(&self) -> bool {
        matches!(self, Basis::Equatorial(_)) && !self.is_pauli()
    }

    /// The measurement angle for equatorial bases.
    pub fn angle(&self) -> Option<Angle> {
        match self {
            Basis::Equatorial(a) => Some(*a),
            _ => None,
        }
    }

    /// `true` when the qubit is actually measured.
    pub fn is_measured(&self) -> bool {
        !matches!(self, Basis::Output)
    }

    /// The adapted angle after the corrections `X^s Z^t`:
    /// `E(α) X^s Z^t = E((-1)^s α + tπ)` (paper §2.2.1).
    pub fn adapted(&self, s: bool, t: bool) -> Basis {
        match self {
            Basis::Equatorial(a) => {
                let sign = if s { -1.0 } else { 1.0 };
                let shift = if t { PI } else { 0.0 };
                Basis::Equatorial(sign * a + shift)
            }
            other => *other,
        }
    }
}

impl fmt::Display for Basis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Basis::Equatorial(a) => write!(f, "E({a:.4})"),
            Basis::Z => write!(f, "Z"),
            Basis::Output => write!(f, "out"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_classification() {
        assert!(Basis::x().is_pauli());
        assert!(Basis::y().is_pauli());
        assert!(Basis::Z.is_pauli());
        assert!(Basis::Equatorial(PI).is_pauli());
        assert!(!Basis::Equatorial(PI / 4.0).is_pauli());
        assert!(!Basis::Output.is_pauli());
    }

    #[test]
    fn adaptivity() {
        assert!(Basis::Equatorial(0.3).is_adaptive());
        assert!(!Basis::x().is_adaptive());
        assert!(!Basis::Z.is_adaptive());
        assert!(!Basis::Output.is_adaptive());
    }

    #[test]
    fn adapted_angle_arithmetic() {
        let b = Basis::Equatorial(0.5);
        assert_eq!(b.adapted(false, false), Basis::Equatorial(0.5));
        assert_eq!(b.adapted(true, false), Basis::Equatorial(-0.5));
        match b.adapted(false, true) {
            Basis::Equatorial(a) => assert!((a - (0.5 + PI)).abs() < 1e-12),
            _ => panic!("expected equatorial"),
        }
        match b.adapted(true, true) {
            Basis::Equatorial(a) => assert!((a - (-0.5 + PI)).abs() < 1e-12),
            _ => panic!("expected equatorial"),
        }
        assert_eq!(Basis::Z.adapted(true, true), Basis::Z);
    }

    #[test]
    fn measured_flag() {
        assert!(Basis::x().is_measured());
        assert!(Basis::Z.is_measured());
        assert!(!Basis::Output.is_measured());
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Basis::Z), "Z");
        assert_eq!(format!("{}", Basis::Output), "out");
        assert!(format!("{}", Basis::x()).starts_with("E("));
    }
}
