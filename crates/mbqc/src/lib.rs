//! # oneq-mbqc
//!
//! Measurement-based quantum computing (MBQC) substrate for the OneQ
//! compiler (ISCA'23 reproduction).
//!
//! MBQC drives computation by single-qubit projective measurements on an
//! entangled *graph state* instead of by gates (paper §2.2). This crate
//! provides:
//!
//! * measurement bases ([`Basis`]): equatorial `E(α)`, the Pauli special
//!   cases, and Z-basis removal measurements,
//! * the measurement pattern / graph state representation ([`Pattern`])
//!   with X- and Z-dependency tracking,
//! * the circuit→pattern translation over the `{J(α), CZ}` set
//!   ([`translate::from_circuit`], paper §2.2.1 / ref \[46\]),
//! * causal-flow analysis: executability layers per the paper's Lemma 1
//!   ([`flow::dependency_layers`], paper §4).
//!
//! # Example
//!
//! ```
//! use oneq_circuit::Circuit;
//! use oneq_mbqc::{flow, translate};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cnot(0, 1).t(1);
//! let pattern = translate::from_circuit(&c);
//! // One node per input plus one per J gate.
//! assert!(pattern.node_count() >= 2);
//! let layers = flow::dependency_layers(&pattern);
//! assert!(!layers.is_empty());
//! ```

#![warn(missing_docs)]

mod basis;
pub mod flow;
mod pattern;
pub mod translate;

pub use basis::Basis;
pub use pattern::{Pattern, PatternError};
