//! Circuit → measurement-pattern translation over `{J(α), CZ}`.
//!
//! The construction (paper §2.2.1, ref \[46\]): every circuit qubit starts as
//! an input node. A `J(α)` on wire `q` appends a fresh node `v` linked to
//! the wire's current node `u`, assigns `u` the measurement `E(-α)` and
//! makes `u → v` the causal flow (so `v` X-depends on `u`). A `CZ` becomes
//! an entangling edge between the two wires' current nodes (two CZs
//! cancel). The wires' final nodes are the outputs.
//!
//! Z-dependencies follow from the flow: measuring `u` applies `X^{s_u}` to
//! `f(u)` and `Z^{s_u}` to every other neighbor of `f(u)`; they are
//! derived after the full graph is known.

use crate::basis::Basis;
use crate::pattern::Pattern;
use oneq_circuit::{Circuit, Gate};
use oneq_graph::NodeId;

/// Translates `circuit` into a measurement pattern.
///
/// The circuit is first lowered to `{J(α), CZ}` via
/// [`oneq_circuit::decompose::to_jcz`]. The resulting pattern has one node
/// per circuit qubit (input) plus one node per J gate.
///
/// # Example
///
/// ```
/// use oneq_circuit::Circuit;
/// use oneq_mbqc::translate;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cz(0, 1);
/// let p = translate::from_circuit(&c);
/// assert_eq!(p.node_count(), 3); // 2 inputs + 1 J node
/// assert_eq!(p.outputs().len(), 2);
/// ```
pub fn from_circuit(circuit: &Circuit) -> Pattern {
    let lowered = oneq_circuit::decompose::to_jcz(circuit);
    from_jcz_circuit(&lowered)
}

/// Translates a circuit that is already in `{J(α), CZ}` form.
///
/// # Panics
///
/// Panics if the circuit contains any other gate kind.
pub fn from_jcz_circuit(circuit: &Circuit) -> Pattern {
    let n = circuit.n_qubits();
    let mut pattern = Pattern::new();

    // One input node per wire; basis fixed when the wire advances.
    let mut current: Vec<NodeId> = (0..n).map(|_| pattern.add_node(Basis::Output)).collect();
    for &input in &current {
        pattern.mark_input(input);
    }

    for gate in circuit.gates() {
        match *gate {
            Gate::J(q, alpha) => {
                let u = current[q.index()];
                let v = pattern.add_node(Basis::Output);
                pattern
                    .add_entangling_edge(u, v)
                    .expect("fresh node edge is valid");
                // u is now measured: J(α) is implemented by E(-α) on u.
                set_basis(&mut pattern, u, Basis::Equatorial(-alpha));
                pattern.set_flow(u, v).expect("nodes exist");
                pattern.add_x_dependency(v, u).expect("nodes exist");
                current[q.index()] = v;
            }
            Gate::Cz(a, b) => {
                let (u, v) = (current[a.index()], current[b.index()]);
                pattern
                    .add_entangling_edge(u, v)
                    .expect("wire nodes are distinct");
            }
            ref other => panic!("circuit must be in {{J, CZ}} form, found {other}"),
        }
    }

    for &out in &current {
        pattern.mark_output(out);
    }

    // Derive Z-dependencies from the flow: measuring u corrects X on f(u)
    // and Z on the other neighbors of f(u).
    let measured: Vec<NodeId> = pattern.measured_nodes();
    for u in measured {
        if let Some(fu) = pattern.flow(u) {
            let neighbors: Vec<NodeId> = pattern.graph().neighbors(fu).to_vec();
            for w in neighbors {
                if w != u {
                    pattern.add_z_dependency(w, u).expect("nodes exist");
                }
            }
        }
    }

    pattern
}

// `Pattern` keeps bases private; re-assignment happens through this helper
// which rebuilds the slot in place.
fn set_basis(pattern: &mut Pattern, node: NodeId, basis: Basis) {
    pattern.set_basis_internal(node, basis);
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneq_circuit::benchmarks;
    use std::f64::consts::PI;

    #[test]
    fn single_h_makes_two_node_chain() {
        let mut c = Circuit::new(1);
        c.h(0);
        let p = from_circuit(&c);
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.edge_count(), 1);
        assert_eq!(p.inputs().len(), 1);
        assert_eq!(p.outputs().len(), 1);
        let input = p.inputs()[0];
        assert_eq!(p.basis(input), Basis::Equatorial(-0.0));
        assert!(p.basis(p.outputs()[0]) == Basis::Output);
    }

    #[test]
    fn j_angle_is_negated() {
        let mut c = Circuit::new(1);
        c.j(0, PI / 4.0);
        let p = from_circuit(&c);
        let input = p.inputs()[0];
        assert_eq!(p.basis(input).angle(), Some(-PI / 4.0));
    }

    #[test]
    fn cz_only_circuit_has_no_measured_nodes() {
        let mut c = Circuit::new(2);
        c.cz(0, 1);
        let p = from_circuit(&c);
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.edge_count(), 1);
        assert!(p.measured_nodes().is_empty());
        // Inputs double as outputs ("in/out" nodes, paper Fig. 3).
        assert_eq!(p.inputs(), p.outputs());
    }

    #[test]
    fn node_count_is_inputs_plus_j_gates() {
        let c = benchmarks::qft(4);
        let lowered = oneq_circuit::decompose::to_jcz(&c);
        let js = lowered
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::J(_, _)))
            .count();
        let p = from_jcz_circuit(&lowered);
        assert_eq!(p.node_count(), 4 + js);
    }

    #[test]
    fn x_dependency_follows_wire() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let p = from_circuit(&c);
        // Chain: input - v1 - v2; v1 x-depends on input, v2 on v1.
        for n in p.nodes() {
            if let Some(f) = p.flow(n) {
                assert_eq!(p.x_deps(f), &[n]);
            }
        }
    }

    #[test]
    fn z_dependency_from_cz_neighbor() {
        // H on both wires then CZ: measuring input a corrects Z on wire b's
        // current node (neighbor of f(a)).
        let mut c = Circuit::new(2);
        c.h(0).h(1).cz(0, 1);
        let p = from_circuit(&c);
        let (a_in, b_in) = (p.inputs()[0], p.inputs()[1]);
        let (a_out, b_out) = (p.outputs()[0], p.outputs()[1]);
        assert!(p.graph().has_edge(a_out, b_out));
        assert!(p.z_deps(b_out).contains(&a_in));
        assert!(p.z_deps(a_out).contains(&b_in));
    }

    #[test]
    fn high_degree_node_from_many_czs() {
        // One wire doing CZ with 3 others after an H each -> degree-4 node
        // (3 CZ edges + 1 wire edge), mirroring node G of paper Fig. 6.
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        c.cz(0, 1).cz(0, 2).cz(0, 3);
        let p = from_circuit(&c);
        assert_eq!(p.max_degree(), 4);
    }

    #[test]
    fn double_cz_cancels_in_pattern() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).cz(0, 1);
        let p = from_circuit(&c);
        assert_eq!(p.edge_count(), 0);
    }

    #[test]
    fn adaptive_counts_match_non_clifford_js() {
        let c = benchmarks::qft(4);
        let p = from_circuit(&c);
        assert!(p.adaptive_count() > 0);
        // BV is all-Clifford: no adaptive measurements at all.
        let bv = benchmarks::bv(&[true, false, true]);
        let p = from_circuit(&bv);
        assert_eq!(p.adaptive_count(), 0);
    }

    #[test]
    #[should_panic(expected = "J, CZ")]
    fn from_jcz_rejects_other_gates() {
        let mut c = Circuit::new(1);
        c.h(0);
        from_jcz_circuit(&c);
    }
}
