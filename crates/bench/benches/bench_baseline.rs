//! Baseline interpreter performance (routing + column scheduling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oneq_bench::{BenchKind, SEED};
use oneq_hardware::ResourceKind;

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline");
    group.sample_size(20);
    for kind in BenchKind::ALL {
        let circuit = kind.circuit(16, SEED);
        group.bench_with_input(
            BenchmarkId::new("evaluate", format!("{}-16", kind.name())),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    oneq_baseline::evaluate(std::hint::black_box(circuit), ResourceKind::LINE3)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
