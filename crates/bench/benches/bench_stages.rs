//! Per-stage compiler performance on QFT-16: translation, dependency
//! analysis, partitioning, fusion-graph generation and mapping.

use criterion::{criterion_group, criterion_main, Criterion};
use oneq::fusion_graph;
use oneq::mapping::{map_graph, MappingOptions};
use oneq::partition::{partition, PartitionOptions};
use oneq_bench::{BenchKind, SEED};
use oneq_hardware::{LayerGeometry, ResourceKind};
use oneq_mbqc::{flow, translate};

fn bench_stages(c: &mut Criterion) {
    let circuit = BenchKind::Qft.circuit(16, SEED);
    let pattern = translate::from_circuit(&circuit);
    let parts = partition(&pattern, &PartitionOptions::default());
    let biggest = parts
        .partitions
        .iter()
        .max_by_key(|p| p.global_nodes.len())
        .expect("QFT has partitions")
        .clone();
    let fg = fusion_graph::generate(&biggest.subgraph, &biggest.full_degree, ResourceKind::LINE3);
    let geometry = LayerGeometry::square(16);

    let mut group = c.benchmark_group("stages-qft16");
    group.sample_size(20);
    group.bench_function("translate", |b| {
        b.iter(|| translate::from_circuit(std::hint::black_box(&circuit)))
    });
    group.bench_function("dependency_layers", |b| {
        b.iter(|| flow::dependency_layers(std::hint::black_box(&pattern)))
    });
    group.bench_function("partition", |b| {
        b.iter(|| partition(std::hint::black_box(&pattern), &PartitionOptions::default()))
    });
    group.bench_function("fusion_graph", |b| {
        b.iter(|| {
            fusion_graph::generate(
                std::hint::black_box(&biggest.subgraph),
                &biggest.full_degree,
                ResourceKind::LINE3,
            )
        })
    });
    group.bench_function("mapping", |b| {
        b.iter(|| {
            map_graph(
                std::hint::black_box(fg.graph()),
                geometry,
                &MappingOptions::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
