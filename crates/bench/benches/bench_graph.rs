//! Graph-substrate performance: planarity testing, embedding extraction,
//! maximal planar subgraph and biconnectivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oneq_graph::{biconnected, generators, mps, planarity};

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    group.sample_size(30);

    for side in [8usize, 16] {
        let grid = generators::grid(side, side);
        group.bench_with_input(
            BenchmarkId::new("planarity_grid", format!("{side}x{side}")),
            &grid,
            |b, g| b.iter(|| planarity::is_planar(std::hint::black_box(g))),
        );
    }

    let k6 = generators::complete(6);
    group.bench_function("mps_k6", |b| {
        b.iter(|| mps::maximal_planar_subgraph(std::hint::black_box(&k6)))
    });

    let grid = generators::grid(20, 20);
    group.bench_function("biconnected_grid20", |b| {
        b.iter(|| biconnected::analyze(std::hint::black_box(&grid)))
    });

    let wheel = {
        let mut g = generators::cycle(64);
        let hub = g.add_node();
        for i in 0..64 {
            g.add_edge(hub, oneq_graph::NodeId::new(i)).unwrap();
        }
        g
    };
    group.bench_function("embedding_wheel64", |b| {
        b.iter(|| planarity::planar_embedding(std::hint::black_box(&wheel)))
    });

    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
