//! End-to-end compiler performance per benchmark program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oneq::{Compiler, CompilerOptions};
use oneq_bench::{BenchKind, SEED};
use oneq_hardware::LayerGeometry;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(20);
    for kind in BenchKind::ALL {
        let circuit = kind.circuit(16, SEED);
        let baseline = oneq_baseline::evaluate(&circuit, oneq_hardware::ResourceKind::LINE3);
        let options = CompilerOptions::new(LayerGeometry::square(baseline.physical_side));
        group.bench_with_input(
            BenchmarkId::new("oneq", format!("{}-16", kind.name())),
            &circuit,
            |b, circuit| b.iter(|| Compiler::new(options).compile(std::hint::black_box(circuit))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
