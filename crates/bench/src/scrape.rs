//! Scraping `oneqd`'s observability surfaces from client-side tools.
//!
//! `loadgen` (the throughput harness) and `oneq-top` (the live cockpit)
//! both read the daemon's `/v1/metrics` Prometheus text exposition and
//! `/v1/stats` JSON; this module holds the one parser each of those
//! formats gets. The histogram helpers understand the server's exact
//! rendering — nine-fractional-digit `le` boundaries, cumulative bucket
//! counts, and the OpenMetrics-style ` # {request_id="..."}` exemplar
//! suffix a bucket sample line may carry since `oneqd-stats/v6`.

use std::collections::BTreeMap;

/// Parses one exact-decimal `le` boundary (the server renders
/// `sec.nnnnnnnnn` with exactly nine fractional digits) back to
/// nanoseconds; `+Inf` maps to `u64::MAX`.
pub fn le_to_ns(le: &str) -> Option<u64> {
    if le == "+Inf" {
        return Some(u64::MAX);
    }
    let (secs, frac) = le.split_once('.')?;
    if frac.len() != 9 {
        return None;
    }
    let secs: u64 = secs.parse().ok()?;
    let frac: u64 = frac.parse().ok()?;
    secs.checked_mul(1_000_000_000)?.checked_add(frac)
}

/// Cumulative histogram buckets scraped from `/v1/metrics` for one
/// family, keyed by the value of `label_key` (e.g. `stage="mapping"`):
/// each series is `(le_ns, cumulative_count)` in ascending `le` order,
/// ending with the `+Inf` bucket at `u64::MAX`. Exemplar annotations
/// after the count are ignored.
pub fn parse_bucket_series(
    text: &str,
    family: &str,
    label_key: &str,
) -> BTreeMap<String, Vec<(u64, u64)>> {
    let mut series: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
    let prefix = format!("{family}_bucket{{");
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(&prefix) else {
            continue;
        };
        let Some((labels, value)) = rest.split_once("} ") else {
            continue;
        };
        // A sample line may end with ` # {request_id="..."} <v> <ts>`;
        // the count is everything before that marker.
        let value = value.split(" # ").next().unwrap_or(value);
        let mut key = None;
        let mut le = None;
        for pair in labels.split(',') {
            let Some((name, quoted)) = pair.split_once("=\"") else {
                continue;
            };
            let v = quoted.trim_end_matches('"');
            if name == label_key {
                key = Some(v.to_string());
            } else if name == "le" {
                le = le_to_ns(v);
            }
        }
        let (Some(key), Some(le), Ok(count)) = (key, le, value.trim().parse::<u64>()) else {
            continue;
        };
        series.entry(key).or_default().push((le, count));
    }
    series
}

/// Subtracts a start-of-window scrape from an end-of-window scrape,
/// bucket by bucket (a series absent from `before` simply started at
/// zero). The result is still cumulative, covering exactly the window.
pub fn diff_cumulative(before: Option<&[(u64, u64)]>, after: &[(u64, u64)]) -> Vec<(u64, u64)> {
    after
        .iter()
        .map(|&(le, cum)| {
            let base = before
                .and_then(|b| b.iter().find(|(ble, _)| *ble == le))
                .map_or(0, |&(_, c)| c);
            (le, cum.saturating_sub(base))
        })
        .collect()
}

/// Nearest-rank percentile over a cumulative bucket series (possibly
/// windowed through [`diff_cumulative`]). Returns the `le` upper bound
/// of the bucket holding the rank; when the rank only lands in `+Inf`,
/// the largest finite boundary is reported.
pub fn bucket_percentile(buckets: &[(u64, u64)], total: u64, p: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut last_finite = 0;
    for &(le, cum) in buckets {
        if le != u64::MAX {
            last_finite = le;
        }
        if cum >= rank {
            return if le == u64::MAX { last_finite } else { le };
        }
    }
    last_finite
}

/// Reads the first `"key": <digits>` occurrence out of a stats snapshot.
/// New `oneqd-stats` keys are only ever appended after existing ones, so
/// first-occurrence reads stay stable across schema versions.
pub fn stats_u64(stats: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    stats
        .find(&pat)
        .map(|i| {
            stats[i + pat.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .and_then(|digits| digits.parse().ok())
        .unwrap_or(0)
}

/// Reads the first `"key": "value"` string occurrence out of a stats
/// snapshot. Good enough for the identifier-shaped values the cockpit
/// reads (request ids, routes, outcome labels — none contain escapes).
pub fn stats_str<'a>(stats: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let at = stats.find(&pat)? + pat.len();
    let end = stats[at..].find('"')?;
    Some(&stats[at..at + end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_boundaries_round_trip_to_nanoseconds() {
        assert_eq!(le_to_ns("0.000000100"), Some(100));
        assert_eq!(le_to_ns("2.000000001"), Some(2_000_000_001));
        assert_eq!(le_to_ns("+Inf"), Some(u64::MAX));
        assert_eq!(le_to_ns("0.5"), None, "short fractions are not ours");
        assert_eq!(le_to_ns("nope"), None);
    }

    #[test]
    fn bucket_parser_reads_plain_and_exemplar_annotated_lines() {
        let text = "\
# TYPE oneqd_compile_stage_seconds histogram\n\
oneqd_compile_stage_seconds_bucket{stage=\"mapping\",le=\"0.000001000\"} 3\n\
oneqd_compile_stage_seconds_bucket{stage=\"mapping\",le=\"0.000002000\"} 5 # {request_id=\"r-9\"} 0.000001500 1754000000.123\n\
oneqd_compile_stage_seconds_bucket{stage=\"mapping\",le=\"+Inf\"} 6\n\
oneqd_compile_stage_seconds_bucket{stage=\"parse\",le=\"+Inf\"} 2\n";
        let series = parse_bucket_series(text, "oneqd_compile_stage_seconds", "stage");
        assert_eq!(
            series["mapping"],
            vec![(1_000, 3), (2_000, 5), (u64::MAX, 6)],
            "exemplar-annotated bucket line parsed like any other"
        );
        assert_eq!(series["parse"], vec![(u64::MAX, 2)]);
    }

    #[test]
    fn windowed_percentiles_come_from_the_diffed_series() {
        let before = vec![(1_000, 10), (2_000, 10), (u64::MAX, 10)];
        let after = vec![(1_000, 10), (2_000, 14), (u64::MAX, 14)];
        let diffed = diff_cumulative(Some(&before), &after);
        assert_eq!(diffed, vec![(1_000, 0), (2_000, 4), (u64::MAX, 4)]);
        let total = diffed.last().unwrap().1;
        assert_eq!(bucket_percentile(&diffed, total, 50.0), 2_000);
        assert_eq!(bucket_percentile(&diffed, total, 99.0), 2_000);
        assert_eq!(bucket_percentile(&[], 0, 50.0), 0);
    }

    #[test]
    fn stats_readers_take_the_first_occurrence() {
        let stats = "{\"schema\": \"oneqd-stats/v6\", \"requests\": 41, \
                     \"slowest\": [{\"request_id\": \"r-1\", \"total_ns\": 9}, \
                     {\"request_id\": \"r-2\", \"total_ns\": 3}]}";
        assert_eq!(stats_u64(stats, "requests"), 41);
        assert_eq!(stats_u64(stats, "total_ns"), 9);
        assert_eq!(stats_u64(stats, "absent"), 0);
        assert_eq!(stats_str(stats, "request_id"), Some("r-1"));
        assert_eq!(stats_str(stats, "schema"), Some("oneqd-stats/v6"));
        assert_eq!(stats_str(stats, "absent"), None);
    }
}
