//! `gen_qasm_fixtures`: (re)generates the `.qasm` fixture corpus under
//! `tests/fixtures/qasm/` from the built-in paper-benchmark constructors.
//!
//! The corpus is the ground truth for the frontend's fixture-parity tests
//! and the `oneqc` CI batch run. Because the files are produced by
//! [`oneq_bench::qasm_fixtures`] + [`Circuit::to_qasm`]
//! (round-trip-exact angle formatting), the `frontend_fixtures` test can
//! assert byte equality against a fresh render — the fixtures can never
//! silently drift from the constructors.
//!
//! Usage:
//!
//! ```text
//! cargo run -p oneq-bench --bin gen_qasm_fixtures [-- --check]
//! ```
//!
//! `--check` verifies the files on disk instead of writing them (exit 1 on
//! any mismatch), which is what CI uses.
//!
//! [`Circuit::to_qasm`]: oneq_circuit::Circuit::to_qasm

use oneq_bench::{qasm_fixture_dir, qasm_fixtures, render_qasm_fixture};

fn main() {
    let check = std::env::args().skip(1).any(|a| a == "--check");
    let dir = qasm_fixture_dir();
    if !check {
        std::fs::create_dir_all(&dir).expect("create tests/fixtures/qasm");
    }
    let mut stale = 0usize;
    for (name, circuit) in qasm_fixtures() {
        let path = dir.join(format!("{name}.qasm"));
        let rendered = render_qasm_fixture(name, &circuit);
        if check {
            match std::fs::read_to_string(&path) {
                Ok(on_disk) if on_disk == rendered => {
                    println!("ok      {}", path.display());
                }
                Ok(_) => {
                    eprintln!("STALE   {}", path.display());
                    stale += 1;
                }
                Err(e) => {
                    eprintln!("MISSING {} ({e})", path.display());
                    stale += 1;
                }
            }
        } else {
            std::fs::write(&path, rendered).expect("write fixture");
            println!("wrote   {}", path.display());
        }
    }
    if check {
        stale += report_orphans(&dir);
    }
    if stale > 0 {
        eprintln!(
            "{stale} fixture(s) out of date; run \
             `cargo run -p oneq-bench --bin gen_qasm_fixtures` and delete any orphans"
        );
        std::process::exit(1);
    }
}

/// Flags `.qasm` files in the fixture directory that no constructor in
/// [`qasm_fixtures`] produces — a renamed or removed fixture would
/// otherwise linger on disk and keep passing the corpus gates.
fn report_orphans(dir: &std::path::Path) -> usize {
    let expected: std::collections::HashSet<String> = qasm_fixtures()
        .iter()
        .map(|(name, _)| format!("{name}.qasm"))
        .collect();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0; // a missing directory is already reported per-fixture
    };
    let mut orphans = 0usize;
    for entry in entries.flatten() {
        let path = entry.path();
        let is_qasm = path.extension().is_some_and(|e| e == "qasm");
        let known = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| expected.contains(n));
        if is_qasm && !known {
            eprintln!("ORPHAN  {}", path.display());
            orphans += 1;
        }
    }
    orphans
}
