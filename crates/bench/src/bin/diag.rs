//! Developer diagnostic: per-stage breakdown for one benchmark.

use oneq::{Compiler, CompilerOptions};
use oneq_bench::{BenchKind, SEED};
use oneq_hardware::LayerGeometry;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = match args.get(1).map(String::as_str) {
        Some("qft") => BenchKind::Qft,
        Some("qaoa") => BenchKind::Qaoa,
        Some("rca") => BenchKind::Rca,
        _ => BenchKind::Bv,
    };
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);
    let side: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(43);

    let circuit = bench.circuit(n, SEED);
    let program =
        Compiler::new(CompilerOptions::new(LayerGeometry::square(side))).compile(&circuit);
    println!("{}-{n} on {side}x{side}:", bench.name());
    println!("  depth {}  fusions {}", program.depth, program.fusions);
    println!("  stats: {:#?}", program.stats);
    println!("  layouts: {}", program.layouts.len());
    for (i, l) in program.layouts.iter().enumerate().take(8) {
        println!(
            "    layout {i}: {} nodes, {} routing cells, bbox {}",
            l.placed_count(),
            l.routing_cells(),
            l.occupied_area()
        );
    }
}
