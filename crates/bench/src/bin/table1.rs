//! Regenerates **Table 1**: benchmark programs with qubit count, gate
//! count, cluster area and physical area required by the baseline.

use oneq_bench::{format_table, BenchKind, SEED};
use oneq_hardware::ResourceKind;

fn main() {
    let mut rows = Vec::new();
    for kind in BenchKind::ALL {
        for &n in kind.paper_sizes() {
            let circuit = kind.circuit(n, SEED);
            let result = oneq_baseline::evaluate(&circuit, ResourceKind::LINE3);
            rows.push(vec![
                format!("{}-{}", kind.name(), n),
                n.to_string(),
                circuit.gate_count().to_string(),
                format!("{0}x{0}", result.cluster_side),
                format!("{0}x{0}", result.physical_side),
            ]);
        }
    }
    println!("Table 1: benchmark programs (paper §7.1)");
    println!(
        "{}",
        format_table(
            &["name", "#qubit", "#gates", "cluster area", "physical area"],
            &rows
        )
    );
}
