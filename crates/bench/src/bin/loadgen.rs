//! `loadgen`: the service-throughput harness.
//!
//! Replays the `.qasm` fixture corpus against an `oneqd` instance at a
//! configurable concurrency and writes `BENCH_service.json` with
//! throughput, latency percentiles, and the cache-hit rate — the served
//! counterpart of `sweep`'s `BENCH_pipeline.json`, extending the repo's
//! measured perf trajectory onto the requests/sec axis.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin loadgen [-- OPTIONS]
//!
//!   --addr HOST:PORT   target an already-running oneqd; without it,
//!                      loadgen self-hosts an in-process server on an
//!                      ephemeral loopback port
//!   --corpus DIR       .qasm directory (default tests/fixtures/qasm)
//!   --requests N       total requests to send (default 64)
//!   --concurrency N    client worker threads (default 4)
//!   --out PATH         output path (default BENCH_service.json)
//! ```
//!
//! Requests round-robin the sorted corpus, so with N ≥ 2 × files the
//! steady state exercises the content-addressed cache; per-request cache
//! outcomes are read from the `X-Oneqd-Cache` response header.
//!
//! Exit code: 0 on success, 1 when any request failed (transport error or
//! non-200), 2 on usage errors, 3 when the corpus holds no `.qasm` files.

use oneq_service::http;
use oneq_service::json;
use oneq_service::pool::run_indexed;
use oneq_service::server::{Server, ServerConfig, ServerHandle};
use std::fmt::Write as _;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

struct Options {
    addr: Option<String>,
    corpus: PathBuf,
    requests: usize,
    concurrency: usize,
    out: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--corpus DIR] [--requests N] \
         [--concurrency N] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opt = Options {
        addr: None,
        corpus: PathBuf::from("tests/fixtures/qasm"),
        requests: 64,
        concurrency: 4,
        out: PathBuf::from("BENCH_service.json"),
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("loadgen: {flag} needs a value");
            usage();
        })
    };
    let num = |s: String, flag: &str| -> usize {
        match s.parse::<usize>() {
            Ok(v) if v >= 1 => v,
            _ => {
                eprintln!("loadgen: {flag} expects a number >= 1, got `{s}`");
                usage();
            }
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => opt.addr = Some(value(&mut i, "--addr")),
            "--corpus" => opt.corpus = PathBuf::from(value(&mut i, "--corpus")),
            "--requests" => opt.requests = num(value(&mut i, "--requests"), "--requests"),
            "--concurrency" => {
                opt.concurrency = num(value(&mut i, "--concurrency"), "--concurrency")
            }
            "--out" => opt.out = PathBuf::from(value(&mut i, "--out")),
            "--help" | "-h" => usage(),
            flag => {
                eprintln!("loadgen: unknown flag {flag}");
                usage();
            }
        }
        i += 1;
    }
    opt
}

/// The sorted `.qasm` files of the corpus directory, via the shared
/// discovery helper (`oneq_service::corpus`).
fn corpus_files(dir: &Path) -> Vec<PathBuf> {
    oneq_service::corpus::qasm_files_flat(dir).unwrap_or_else(|e| {
        eprintln!("loadgen: cannot read corpus {}: {e}", dir.display());
        std::process::exit(3);
    })
}

struct Sample {
    latency_ns: u128,
    ok: bool,
    cache_hit: bool,
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let opt = parse_args();
    let files = corpus_files(&opt.corpus);
    if files.is_empty() {
        eprintln!(
            "loadgen: no .qasm files found under {}",
            opt.corpus.display()
        );
        std::process::exit(3);
    }
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|path| {
            let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("loadgen: cannot read {}: {e}", path.display());
                std::process::exit(3);
            });
            (path.display().to_string(), source)
        })
        .collect();

    // Self-host unless an external daemon was given. The handle must
    // outlive the run; dropping it shuts the server down.
    let mut self_hosted: Option<ServerHandle> = None;
    let addr: SocketAddr = match &opt.addr {
        // `to_socket_addrs` resolves hostnames too (`localhost:7878`),
        // matching oneqd's own `--addr` handling.
        Some(addr) => addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut addrs| addrs.next())
            .unwrap_or_else(|| {
                eprintln!("loadgen: cannot resolve --addr `{addr}` (expected HOST:PORT)");
                usage();
            }),
        None => {
            let server = Server::bind("127.0.0.1:0", ServerConfig::default())
                .expect("bind ephemeral loopback port");
            let handle = server.spawn().expect("spawn in-process oneqd");
            let addr = handle.addr();
            self_hosted = Some(handle);
            addr
        }
    };
    println!(
        "loadgen: {} requests over {} file(s) at concurrency {} -> {} ({})",
        opt.requests,
        sources.len(),
        opt.concurrency,
        addr,
        if self_hosted.is_some() {
            "self-hosted"
        } else {
            "external"
        }
    );

    let timeout = Duration::from_secs(60);
    let indices: Vec<usize> = (0..opt.requests).collect();
    let t0 = Instant::now();
    let samples = run_indexed(opt.concurrency, &indices, |_, &i| {
        let (label, source) = &sources[i % sources.len()];
        let target = format!("/compile?file={}", http::percent_encode(label));
        let start = Instant::now();
        let response = http::request(addr, "POST", &target, source.as_bytes(), timeout);
        let latency_ns = start.elapsed().as_nanos();
        match response {
            Ok(resp) => Sample {
                latency_ns,
                ok: resp.status == 200,
                cache_hit: resp.header("x-oneqd-cache") == Some("hit"),
            },
            Err(_) => Sample {
                latency_ns,
                ok: false,
                cache_hit: false,
            },
        }
    });
    let wall_ns = t0.elapsed().as_nanos();

    // One final /stats snapshot, embedded verbatim (it is already JSON).
    let server_stats = http::request(addr, "GET", "/stats", b"", timeout)
        .ok()
        .filter(|r| r.status == 200)
        .map(|r| String::from_utf8_lossy(&r.body).trim().to_string());
    if let Some(handle) = self_hosted {
        let _ = handle.shutdown();
    }

    let ok = samples.iter().filter(|s| s.ok).count();
    let errors = samples.len() - ok;
    let cache_hits = samples.iter().filter(|s| s.cache_hit).count();
    let mut latencies: Vec<u128> = samples.iter().map(|s| s.latency_ns).collect();
    latencies.sort_unstable();
    let mean_ns = latencies.iter().sum::<u128>() as f64 / latencies.len().max(1) as f64;
    let throughput_rps = samples.len() as f64 / (wall_ns as f64 / 1e9);
    let hit_rate = cache_hits as f64 / samples.len().max(1) as f64;

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"oneq-bench-service/v1\",");
    let _ = writeln!(
        out,
        "  \"corpus\": \"{}\",",
        json::escape(&opt.corpus.display().to_string())
    );
    let _ = writeln!(out, "  \"files\": {},", sources.len());
    let _ = writeln!(out, "  \"requests\": {},", samples.len());
    let _ = writeln!(out, "  \"concurrency\": {},", opt.concurrency);
    let _ = writeln!(out, "  \"self_hosted\": {},", opt.addr.is_none());
    let _ = writeln!(out, "  \"ok\": {ok},");
    let _ = writeln!(out, "  \"errors\": {errors},");
    let _ = writeln!(out, "  \"cache_hits\": {cache_hits},");
    let _ = writeln!(out, "  \"cache_hit_rate\": {},", json::fmt_f64(hit_rate));
    let _ = writeln!(out, "  \"wall_ns\": {wall_ns},");
    let _ = writeln!(
        out,
        "  \"throughput_rps\": {},",
        json::fmt_f64(throughput_rps)
    );
    let _ = writeln!(
        out,
        "  \"latency_ns\": {{\"min\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
         \"max\": {}, \"mean\": {}}},",
        latencies.first().copied().unwrap_or(0),
        percentile(&latencies, 50.0),
        percentile(&latencies, 90.0),
        percentile(&latencies, 99.0),
        latencies.last().copied().unwrap_or(0),
        json::fmt_f64(mean_ns),
    );
    match &server_stats {
        Some(stats) => {
            let _ = writeln!(out, "  \"server_stats\": {stats}");
        }
        None => {
            let _ = writeln!(out, "  \"server_stats\": null");
        }
    }
    out.push_str("}\n");

    std::fs::write(&opt.out, &out).unwrap_or_else(|e| {
        eprintln!("loadgen: cannot write {}: {e}", opt.out.display());
        std::process::exit(2);
    });
    println!(
        "loadgen: {ok}/{} ok, {cache_hits} cache hits ({:.1}%), {:.1} req/s, \
         p50 {:.2} ms, p99 {:.2} ms -> {}",
        samples.len(),
        100.0 * hit_rate,
        throughput_rps,
        percentile(&latencies, 50.0) as f64 / 1e6,
        percentile(&latencies, 99.0) as f64 / 1e6,
        opt.out.display()
    );
    if errors > 0 {
        std::process::exit(1);
    }
}
