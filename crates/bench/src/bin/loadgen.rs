//! `loadgen`: the service-throughput harness.
//!
//! Replays the `.qasm` fixture corpus against an `oneqd` instance at a
//! configurable concurrency and writes `BENCH_service.json` with
//! throughput, latency percentiles, and per-request cache outcomes — the
//! served counterpart of `sweep`'s `BENCH_pipeline.json`, extending the
//! repo's measured perf trajectory onto the requests/sec axis.
//!
//! Since the `/v1` redesign it measures *both* connection disciplines:
//! the default `--mode both` run replays the same workload once over
//! one-shot `Connection: close` requests and once over persistent
//! keep-alive sessions (one [`ClientConn`] per worker), and records the
//! two side by side plus their throughput ratio — the number that shows
//! what removing per-request TCP setup buys.
//!
//! Self-hosted cacheable runs additionally measure the persistent disk
//! tier across a restart: a cold server on a fresh `--cache-dir`
//! compiles the corpus from scratch, a second server on the same
//! directory replays it as `disk` hits, and the `"warm_restart"` block
//! records both passes plus their `warm_speedup` ratio.
//!
//! `--connections N` switches on the *adversarial event-loop mode* that
//! exercises the daemon's readiness-driven core: N keep-alive sockets
//! are opened and held simultaneously (proving open connections cost a
//! file descriptor, not a thread), `--slow-clients K` byte-tricklers
//! loiter mid-request until the server evicts them by deadline, and the
//! measured requests are spread across the whole fleet with every
//! response checked byte-for-byte against the warmup pass. The run is
//! recorded in the `"event_loop"` block (`null` otherwise). Given
//! `--connections` without an explicit `--mode`, the close/keep-alive
//! comparison and the warm-restart benchmark are skipped.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin loadgen [-- OPTIONS]
//!
//!   --addr HOST:PORT   target an already-running oneqd; without it,
//!                      loadgen self-hosts an in-process server on an
//!                      ephemeral loopback port
//!   --corpus DIR       .qasm directory (default tests/fixtures/qasm)
//!   --requests N       requests per mode (default 64)
//!   --concurrency N    client worker threads (default 4)
//!   --mode M           both|keep-alive|close (default both)
//!   --connections N    adversarial mode: hold N concurrent keep-alive
//!                      sockets open for the whole run
//!   --slow-clients K   adversarial mode: K slow-loris clients trickling
//!                      one byte at a time until evicted (default 0)
//!   --out PATH         output path (default BENCH_service.json)
//!
//! plus the shared compile knobs (--side, --rows, --cols, --extension,
//! --resource, --timings, --bypass), parsed by the same
//! `CompileRequest::from_args` the other entrypoints use and forwarded
//! to the daemon as /v1/compile query parameters.
//! ```
//!
//! Requests round-robin the sorted corpus, so with N ≥ 2 × files the
//! steady state exercises the content-addressed cache; per-request cache
//! outcomes are read from the `X-Oneqd-Cache` response header.
//!
//! Exit code: 0 on success, 1 when any request failed (transport error or
//! non-200), 2 on usage errors, 3 when the corpus holds no `.qasm` files.

use oneq_bench::scrape::{bucket_percentile, diff_cumulative, parse_bucket_series, stats_u64};
use oneq_service::http::{self, ClientConn};
use oneq_service::json;
use oneq_service::pool::run_indexed_with;
use oneq_service::request::CompileRequest;
use oneq_service::server::{
    Server, ServerConfig, ServerHandle, OUTCOME_BYPASS, OUTCOME_COALESCED, OUTCOME_DISK,
    OUTCOME_MEMORY, OUTCOME_MISS,
};
use std::fmt::Write as _;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    KeepAlive,
    Close,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::KeepAlive => "keep-alive",
            Mode::Close => "close",
        }
    }

    fn json_key(self) -> &'static str {
        match self {
            Mode::KeepAlive => "keep_alive",
            Mode::Close => "close",
        }
    }
}

struct Options {
    addr: Option<String>,
    corpus: PathBuf,
    requests: usize,
    concurrency: usize,
    modes: Vec<Mode>,
    /// Adversarial event-loop mode: hold this many keep-alive sockets
    /// open at once while the measured requests run.
    connections: Option<usize>,
    /// Slow-loris clients trickling bytes until evicted (adversarial
    /// mode only).
    slow_clients: usize,
    template: CompileRequest,
    out: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--corpus DIR] [--requests N] \
         [--concurrency N] [--mode both|keep-alive|close] [--connections N] \
         [--slow-clients K] [--out PATH] \
         [compile knobs: --side N | --rows R --cols C, --extension N, \
         --resource KIND, --timings, --bypass]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (template, rest) = CompileRequest::from_args(&args).unwrap_or_else(|msg| {
        eprintln!("loadgen: {msg}");
        usage();
    });
    let mut opt = Options {
        addr: None,
        corpus: PathBuf::from("tests/fixtures/qasm"),
        requests: 64,
        concurrency: 4,
        modes: vec![Mode::Close, Mode::KeepAlive],
        connections: None,
        slow_clients: 0,
        template,
        out: PathBuf::from("BENCH_service.json"),
    };
    let mut explicit_mode = false;
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        rest.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("loadgen: {flag} needs a value");
            usage();
        })
    };
    let num = |s: String, flag: &str| -> usize {
        match s.parse::<usize>() {
            Ok(v) if v >= 1 => v,
            _ => {
                eprintln!("loadgen: {flag} expects a number >= 1, got `{s}`");
                usage();
            }
        }
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--addr" => opt.addr = Some(value(&mut i, "--addr")),
            "--corpus" => opt.corpus = PathBuf::from(value(&mut i, "--corpus")),
            "--requests" => opt.requests = num(value(&mut i, "--requests"), "--requests"),
            "--concurrency" => {
                opt.concurrency = num(value(&mut i, "--concurrency"), "--concurrency")
            }
            "--mode" => {
                explicit_mode = true;
                opt.modes = match value(&mut i, "--mode").as_str() {
                    "both" => vec![Mode::Close, Mode::KeepAlive],
                    "keep-alive" => vec![Mode::KeepAlive],
                    "close" => vec![Mode::Close],
                    other => {
                        eprintln!("loadgen: --mode expects both|keep-alive|close, got `{other}`");
                        usage();
                    }
                }
            }
            "--connections" => {
                opt.connections = Some(num(value(&mut i, "--connections"), "--connections"));
            }
            "--slow-clients" => {
                let s = value(&mut i, "--slow-clients");
                opt.slow_clients = s.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("loadgen: --slow-clients expects a number >= 0, got `{s}`");
                    usage();
                });
            }
            "--out" => opt.out = PathBuf::from(value(&mut i, "--out")),
            "--help" | "-h" => usage(),
            flag => {
                eprintln!("loadgen: unknown flag {flag}");
                usage();
            }
        }
        i += 1;
    }
    // An adversarial run without an explicit --mode is adversarial-only:
    // the two-discipline comparison would just pad the run, and its
    // results would be polluted by the held-open fleet anyway.
    if opt.connections.is_some() && !explicit_mode {
        opt.modes.clear();
    }
    if opt.slow_clients > 0 && opt.connections.is_none() {
        eprintln!("loadgen: --slow-clients needs --connections (adversarial mode)");
        usage();
    }
    opt
}

/// The sorted `.qasm` files of the corpus directory, via the shared
/// discovery helper (`oneq_service::corpus`).
fn corpus_files(dir: &Path) -> Vec<PathBuf> {
    oneq_service::corpus::qasm_files_flat(dir).unwrap_or_else(|e| {
        eprintln!("loadgen: cannot read corpus {}: {e}", dir.display());
        std::process::exit(3);
    })
}

struct Sample {
    latency_ns: u128,
    ok: bool,
    /// `X-Oneqd-Cache` outcome, or `"error"` for a failed request.
    outcome: &'static str,
}

/// Maps an `X-Oneqd-Cache` header onto the server's own outcome
/// vocabulary (shared constants, so a renamed or new label is a compile
/// error here instead of silently counting as transport failure).
fn classify_outcome(header: Option<&str>) -> &'static str {
    match header {
        Some(h) if h == OUTCOME_MEMORY => OUTCOME_MEMORY,
        Some(h) if h == OUTCOME_DISK => OUTCOME_DISK,
        Some(h) if h == OUTCOME_MISS => OUTCOME_MISS,
        Some(h) if h == OUTCOME_COALESCED => OUTCOME_COALESCED,
        Some(h) if h == OUTCOME_BYPASS => OUTCOME_BYPASS,
        _ => "error",
    }
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Per-mode measurement: samples plus the run's wall clock. Latencies
/// are sorted once at construction; the console summary and the JSON
/// emitter read the same vector, so they cannot disagree.
struct ModeRun {
    mode: Mode,
    samples: Vec<Sample>,
    sorted_latency_ns: Vec<u128>,
    wall_ns: u128,
}

impl ModeRun {
    fn new(mode: Mode, samples: Vec<Sample>, wall_ns: u128) -> ModeRun {
        let mut sorted_latency_ns: Vec<u128> = samples.iter().map(|s| s.latency_ns).collect();
        sorted_latency_ns.sort_unstable();
        ModeRun {
            mode,
            samples,
            sorted_latency_ns,
            wall_ns,
        }
    }

    fn ok(&self) -> usize {
        self.samples.iter().filter(|s| s.ok).count()
    }

    fn errors(&self) -> usize {
        self.samples.len() - self.ok()
    }

    fn outcome_count(&self, outcome: &str) -> usize {
        self.samples.iter().filter(|s| s.outcome == outcome).count()
    }

    fn throughput_rps(&self) -> f64 {
        self.samples.len() as f64 / (self.wall_ns as f64 / 1e9)
    }
}

const TIMEOUT: Duration = Duration::from_secs(60);

/// One pass of the warm-restart benchmark: a fresh in-process server on
/// `cache_dir`, every corpus file compiled once sequentially, then a
/// clean shutdown (which releases the spill directory's advisory lock
/// for the next pass).
struct RestartPass {
    wall_ns: u128,
    ok: usize,
    outcomes: Vec<&'static str>,
}

impl RestartPass {
    fn outcome_count(&self, outcome: &str) -> usize {
        self.outcomes.iter().filter(|o| **o == outcome).count()
    }

    fn json(&self) -> String {
        format!(
            "{{\"ok\": {}, \"wall_ns\": {}, \
             \"cache\": {{\"memory\": {}, \"disk\": {}, \"miss\": {}}}}}",
            self.ok,
            self.wall_ns,
            self.outcome_count(OUTCOME_MEMORY),
            self.outcome_count(OUTCOME_DISK),
            self.outcome_count(OUTCOME_MISS),
        )
    }
}

fn restart_pass(cache_dir: &Path, targets: &[(String, Vec<u8>)]) -> Option<RestartPass> {
    let config = ServerConfig {
        cache_dir: Some(cache_dir.to_path_buf()),
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", config).ok()?.spawn().ok()?;
    let addr = handle.addr();
    let t0 = Instant::now();
    let mut ok = 0;
    let mut outcomes = Vec::with_capacity(targets.len());
    for (target, body) in targets {
        match http::request(addr, "POST", target, body, TIMEOUT) {
            Ok(resp) => {
                if resp.status == 200 {
                    ok += 1;
                }
                outcomes.push(classify_outcome(resp.header("x-oneqd-cache")));
            }
            Err(_) => outcomes.push("error"),
        }
    }
    let wall_ns = t0.elapsed().as_nanos();
    let _ = handle.shutdown();
    Some(RestartPass {
        wall_ns,
        ok,
        outcomes,
    })
}

/// Measures what the persistent disk tier buys across a process
/// restart: a cold server on a fresh spill directory compiles the whole
/// corpus from scratch, then a second server on the *same* directory
/// answers the identical workload from disk. Returns the rendered JSON
/// block for the `"warm_restart"` key, or `None` when the benchmark
/// does not apply (external daemon, or a non-cacheable template where
/// nothing would ever reach the disk tier).
fn run_warm_restart(opt: &Options, targets: &[(String, Vec<u8>)]) -> Option<String> {
    if opt.addr.is_some() || !opt.template.cacheable() || opt.modes.is_empty() {
        return None;
    }
    let cache_dir = std::env::temp_dir().join(format!("oneq-loadgen-spill-{}", std::process::id()));
    // A stale directory from a previous crashed run would turn the cold
    // pass into a warm one; start from nothing.
    let _ = std::fs::remove_dir_all(&cache_dir);
    let result = (|| {
        let cold = restart_pass(&cache_dir, targets)?;
        let warm = restart_pass(&cache_dir, targets)?;
        let speedup = if warm.wall_ns > 0 {
            cold.wall_ns as f64 / warm.wall_ns as f64
        } else {
            0.0
        };
        println!(
            "loadgen[warm-restart]: cold {:.2} ms ({} miss) -> warm {:.2} ms \
             ({} disk hit), {:.2}x",
            cold.wall_ns as f64 / 1e6,
            cold.outcome_count(OUTCOME_MISS),
            warm.wall_ns as f64 / 1e6,
            warm.outcome_count(OUTCOME_DISK),
            speedup,
        );
        Some(format!(
            "{{\"files\": {}, \"cold\": {}, \"warm\": {}, \"warm_speedup\": {}}}",
            targets.len(),
            cold.json(),
            warm.json(),
            json::fmt_f64(speedup),
        ))
    })();
    let _ = std::fs::remove_dir_all(&cache_dir);
    result
}

/// One `/v1/stats` snapshot as text, or `None` on any failure.
fn fetch_stats(addr: SocketAddr) -> Option<String> {
    http::request(addr, "GET", "/v1/stats", b"", TIMEOUT)
        .ok()
        .filter(|r| r.status == 200)
        .map(|r| String::from_utf8_lossy(&r.body).into_owned())
}

/// One `/v1/metrics` scrape (Prometheus text exposition), or `None` on
/// any failure.
fn fetch_metrics(addr: SocketAddr) -> Option<String> {
    http::request(addr, "GET", "/v1/metrics", b"", TIMEOUT)
        .ok()
        .filter(|r| r.status == 200)
        .map(|r| String::from_utf8_lossy(&r.body).into_owned())
}

/// The `"server_metrics"` block: per-stage compile and per-tier cache
/// lookup percentiles computed from the *server's own* histograms, as
/// the growth of `/v1/metrics` between a scrape at harness start and one
/// at harness end. `None` when either scrape failed.
fn server_metrics_json(before: &str, after: &str) -> String {
    let mut out = String::from("{");
    for (i, (family, label_key, block)) in [
        ("oneqd_compile_stage_seconds", "stage", "stages"),
        ("oneqd_cache_lookup_seconds", "tier", "tiers"),
    ]
    .iter()
    .enumerate()
    {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{block}\": {{");
        let before = parse_bucket_series(before, family, label_key);
        let after = parse_bucket_series(after, family, label_key);
        let mut first = true;
        for (key, after_buckets) in &after {
            // Diff against the start-of-run scrape (a series absent
            // there simply started at zero), keeping the result
            // cumulative over exactly this harness run.
            let diffed = diff_cumulative(before.get(key).map(Vec::as_slice), after_buckets);
            let total = diffed.last().map_or(0, |&(_, cum)| cum);
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
                 \"p99_ns\": {}, \"p999_ns\": {}}}",
                json::escape(key),
                total,
                bucket_percentile(&diffed, total, 50.0),
                bucket_percentile(&diffed, total, 90.0),
                bucket_percentile(&diffed, total, 99.0),
                bucket_percentile(&diffed, total, 99.9),
            );
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// A slow-loris client: connects, then trickles one byte of a request
/// every 250 ms without ever completing it. Returns `true` when the
/// server hung up on us — the eviction the event loop's per-state
/// deadline exists to deliver.
fn slow_client(addr: SocketAddr) -> bool {
    use std::io::{Read as _, Write as _};
    let Ok(mut stream) = std::net::TcpStream::connect(addr) else {
        return false;
    };
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return false;
    }
    // Never finished: no blank line, one byte per step. Long enough that
    // any sane --io-timeout-ms expires well before we run out of bytes.
    let preamble = b"POST /v1/compile?side=3 HTTP/1.1\r\nx-slow: yes\r\n";
    let mut probe = [0u8; 16];
    for byte in preamble {
        if stream.write_all(std::slice::from_ref(byte)).is_err() {
            return true; // already hung up; the write surfaced it
        }
        // A live server stays silent (read times out); an eviction shows
        // up as EOF or reset.
        match stream.read(&mut probe) {
            Ok(0) => return true,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return true,
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    // Preamble exhausted without an observed hangup: wait out the
    // server's deadline directly.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    !matches!(stream.read(&mut probe), Ok(n) if n > 0)
}

/// Per-worker tallies from the adversarial run.
#[derive(Default)]
struct Tally {
    ok: usize,
    errors: usize,
    timeouts: usize,
    resets: usize,
    reconnects: usize,
}

/// The adversarial event-loop measurement: what happened while
/// `connections` keep-alive sockets were held open simultaneously.
struct EventLoopRun {
    connections: usize,
    connected: usize,
    slow_clients: usize,
    /// The server's own `conns.open` gauge observed while the fleet was
    /// up — the proof the daemon held them all at once.
    open_during_run: u64,
    requests: usize,
    tally: Tally,
    wall_ns: u128,
    /// Growth of the server's `evicted_slow_read` counter over the run.
    slow_evicted: u64,
}

impl EventLoopRun {
    fn throughput_rps(&self) -> f64 {
        self.requests as f64 / (self.wall_ns as f64 / 1e9).max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            "{{\"connections\": {}, \"connected\": {}, \"slow_clients\": {}, \
             \"open_during_run\": {}, \"requests\": {}, \"ok\": {}, \
             \"errors\": {}, \"timeouts\": {}, \"resets\": {}, \
             \"reconnects\": {}, \"wall_ns\": {}, \"throughput_rps\": {}, \
             \"slow_evicted\": {}}}",
            self.connections,
            self.connected,
            self.slow_clients,
            self.open_during_run,
            self.requests,
            self.tally.ok,
            self.tally.errors,
            self.tally.timeouts,
            self.tally.resets,
            self.tally.reconnects,
            self.wall_ns,
            json::fmt_f64(self.throughput_rps()),
            self.slow_evicted,
        )
    }
}

/// Runs the adversarial event-loop mode: opens `connections` keep-alive
/// sockets and holds every one open for the whole run, launches
/// `opt.slow_clients` tricklers, then spreads `opt.requests` requests
/// across the entire fleet from `opt.concurrency` workers — each response
/// must be 200 and (for cacheable templates) byte-identical to the warmup
/// pass.
fn run_event_loop(
    addr: SocketAddr,
    targets: &[(String, Vec<u8>)],
    expected: &[Vec<u8>],
    connections: usize,
    opt: &Options,
) -> EventLoopRun {
    let slow_clients = opt.slow_clients;
    let requests = opt.requests;
    let concurrency = opt.concurrency;
    let check_bytes = opt.template.cacheable();
    let slow_before = fetch_stats(addr)
        .as_deref()
        .map_or(0, |s| stats_u64(s, "evicted_slow_read"));
    let slow_handles: Vec<_> = (0..slow_clients)
        .map(|_| std::thread::spawn(move || slow_client(addr)))
        .collect();

    let mut fleet: Vec<ClientConn> = Vec::with_capacity(connections);
    for _ in 0..connections {
        if let Ok(conn) = ClientConn::connect(addr, TIMEOUT) {
            fleet.push(conn);
        }
    }
    let connected = fleet.len();
    // Give the event loop one gauge-refresh cycle, then read its own
    // view of how many sockets it holds.
    std::thread::sleep(Duration::from_millis(60));
    let open_during_run = fetch_stats(addr)
        .as_deref()
        .map_or(0, |s| stats_u64(s, "open"));

    let workers = concurrency.min(connected.max(1));
    let t0 = Instant::now();
    let mut tally = Tally::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut rest = fleet.as_mut_slice();
        for w in 0..workers {
            // Each worker owns an even slice of the fleet and an even
            // share of the request budget.
            let share_len = rest.len() / (workers - w);
            let (share, remainder) = rest.split_at_mut(share_len);
            rest = remainder;
            let my_requests = requests / workers + usize::from(w < requests % workers);
            handles.push(scope.spawn(move || {
                let mut t = Tally::default();
                for r in 0..my_requests {
                    if share.is_empty() {
                        t.errors += 1;
                        continue;
                    }
                    let slot = &mut share[r % share.len()];
                    let target_i = (w + r * workers) % targets.len();
                    let (target, body) = &targets[target_i];
                    match slot.send("POST", target, body) {
                        Ok(resp) => {
                            let identical = !check_bytes || resp.body == expected[target_i];
                            if resp.status == 200 && identical {
                                t.ok += 1;
                            } else {
                                t.errors += 1;
                            }
                            // The server retires sockets after its
                            // keep-alive budget; replace retired ones so
                            // the fleet stays at full strength.
                            if !resp.keep_alive() {
                                if let Ok(fresh) = ClientConn::connect(addr, TIMEOUT) {
                                    *slot = fresh;
                                    t.reconnects += 1;
                                }
                            }
                        }
                        Err(e) => {
                            t.errors += 1;
                            match http::classify_io_error(&e) {
                                http::IoFailureKind::Timeout => t.timeouts += 1,
                                http::IoFailureKind::Reset => t.resets += 1,
                                http::IoFailureKind::Other => {}
                            }
                            if let Ok(fresh) = ClientConn::connect(addr, TIMEOUT) {
                                *slot = fresh;
                                t.reconnects += 1;
                            }
                        }
                    }
                }
                t
            }));
        }
        for handle in handles {
            let t = handle.join().expect("event-loop worker panicked");
            tally.ok += t.ok;
            tally.errors += t.errors;
            tally.timeouts += t.timeouts;
            tally.resets += t.resets;
            tally.reconnects += t.reconnects;
        }
    });
    let wall_ns = t0.elapsed().as_nanos();

    // The tricklers end on their own once the server evicts them; their
    // return values and the server counter must agree.
    let trickled_out = slow_handles
        .into_iter()
        .filter_map(|h| h.join().ok())
        .filter(|evicted| *evicted)
        .count();
    drop(fleet);
    let slow_evicted = fetch_stats(addr)
        .as_deref()
        .map_or(0, |s| stats_u64(s, "evicted_slow_read"))
        .saturating_sub(slow_before);
    if slow_clients > 0 {
        println!(
            "loadgen[event-loop]: {trickled_out}/{slow_clients} slow clients \
             saw the server hang up; server evicted {slow_evicted}"
        );
    }
    EventLoopRun {
        connections,
        connected,
        slow_clients,
        open_during_run,
        requests,
        tally,
        wall_ns,
        slow_evicted,
    }
}

/// Replays `requests` round-robin requests over `targets` at
/// `concurrency`, using one persistent connection per worker
/// (keep-alive) or one connection per request (close).
fn run_mode(
    mode: Mode,
    addr: SocketAddr,
    targets: &[(String, Vec<u8>)],
    requests: usize,
    concurrency: usize,
) -> ModeRun {
    let indices: Vec<usize> = (0..requests).collect();
    let t0 = Instant::now();
    let samples = run_indexed_with(
        concurrency,
        &indices,
        // Per-worker state: the persistent connection (keep-alive mode
        // only). `None` between requests in close mode, and after an
        // error in keep-alive mode (the next request reconnects).
        || None::<ClientConn>,
        |conn, _, &i| {
            let (target, body) = &targets[i % targets.len()];
            let start = Instant::now();
            let response = match mode {
                Mode::Close => http::request(addr, "POST", target, body, TIMEOUT),
                Mode::KeepAlive => {
                    if conn.is_none() {
                        *conn = ClientConn::connect(addr, TIMEOUT).ok();
                    }
                    match conn.as_mut() {
                        Some(c) => {
                            let resp = c.send("POST", target, body);
                            match &resp {
                                // A spent or failed socket must not poison
                                // the rest of this worker's run.
                                Ok(r) if !r.keep_alive() => *conn = None,
                                Err(_) => *conn = None,
                                Ok(_) => {}
                            }
                            resp
                        }
                        None => Err(std::io::Error::other("connect failed")),
                    }
                }
            };
            let latency_ns = start.elapsed().as_nanos();
            match response {
                Ok(resp) => Sample {
                    latency_ns,
                    ok: resp.status == 200,
                    outcome: classify_outcome(resp.header("x-oneqd-cache")),
                },
                Err(_) => Sample {
                    latency_ns,
                    ok: false,
                    outcome: "error",
                },
            }
        },
    );
    ModeRun::new(mode, samples, t0.elapsed().as_nanos())
}

fn mode_json(run: &ModeRun) -> String {
    let latencies = &run.sorted_latency_ns;
    let mean_ns = latencies.iter().sum::<u128>() as f64 / latencies.len().max(1) as f64;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"mode\": \"{}\", \"requests\": {}, \"ok\": {}, \"errors\": {}, \
         \"cache\": {{\"memory\": {}, \"disk\": {}, \"miss\": {}, \"coalesced\": {}, \
         \"bypass\": {}}}, \
         \"wall_ns\": {}, \"throughput_rps\": {}, \
         \"latency_ns\": {{\"min\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
         \"max\": {}, \"mean\": {}}}}}",
        run.mode.label(),
        run.samples.len(),
        run.ok(),
        run.errors(),
        run.outcome_count(OUTCOME_MEMORY),
        run.outcome_count(OUTCOME_DISK),
        run.outcome_count(OUTCOME_MISS),
        run.outcome_count(OUTCOME_COALESCED),
        run.outcome_count(OUTCOME_BYPASS),
        run.wall_ns,
        json::fmt_f64(run.throughput_rps()),
        latencies.first().copied().unwrap_or(0),
        percentile(latencies, 50.0),
        percentile(latencies, 90.0),
        percentile(latencies, 99.0),
        latencies.last().copied().unwrap_or(0),
        json::fmt_f64(mean_ns),
    );
    out
}

fn main() {
    let opt = parse_args();
    let files = corpus_files(&opt.corpus);
    if files.is_empty() {
        eprintln!(
            "loadgen: no .qasm files found under {}",
            opt.corpus.display()
        );
        std::process::exit(3);
    }
    // Pre-render each corpus file as its request target + body, through
    // the same CompileRequest the server parses back out of the query.
    let targets: Vec<(String, Vec<u8>)> = files
        .iter()
        .map(|path| {
            let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("loadgen: cannot read {}: {e}", path.display());
                std::process::exit(3);
            });
            let request = opt.template.with_source(path.display().to_string(), source);
            (
                request.query_target("/v1/compile"),
                request.source.into_bytes(),
            )
        })
        .collect();

    // Self-host unless an external daemon was given. The handle must
    // outlive the run; dropping it shuts the server down.
    let mut self_hosted: Option<ServerHandle> = None;
    let addr: SocketAddr = match &opt.addr {
        // `to_socket_addrs` resolves hostnames too (`localhost:7878`),
        // matching oneqd's own `--addr` handling.
        Some(addr) => addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut addrs| addrs.next())
            .unwrap_or_else(|| {
                eprintln!("loadgen: cannot resolve --addr `{addr}` (expected HOST:PORT)");
                usage();
            }),
        None => {
            let mut config = ServerConfig::default();
            if let Some(n) = opt.connections {
                // Headroom for the fleet plus the harness's own one-shot
                // stats/warmup requests; a long idle budget so held-open
                // sockets survive the run; a short io budget so the
                // slow-loris eviction is observable within the run.
                config.max_connections = n + 64;
                config.idle_timeout = Duration::from_secs(120);
                config.io_timeout = Duration::from_secs(3);
            }
            let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral loopback port");
            let handle = server.spawn().expect("spawn in-process oneqd");
            let addr = handle.addr();
            self_hosted = Some(handle);
            addr
        }
    };
    println!(
        "loadgen: {} requests/mode over {} file(s) at concurrency {} -> {} ({})",
        opt.requests,
        targets.len(),
        opt.concurrency,
        addr,
        if self_hosted.is_some() {
            "self-hosted"
        } else {
            "external"
        }
    );

    // First `/v1/metrics` scrape: the baseline the end-of-run scrape is
    // diffed against, so the embedded server-side percentiles cover
    // exactly this harness run (warmup compiles included — that is where
    // the compile-stage samples come from) even against a long-lived
    // external daemon.
    let metrics_before = fetch_metrics(addr);

    // Warm the cache once per file before measuring, so every mode sees
    // the same steady state and the keep-alive/close comparison isolates
    // the connection discipline instead of who paid the cold compiles.
    // (With --timings or --bypass nothing is cacheable; the pass is then
    // just a harmless preflight.) Adversarial runs also capture each
    // response body here as the byte-identity reference.
    let mut expected: Vec<Vec<u8>> = Vec::new();
    for (target, body) in &targets {
        let response = http::request(addr, "POST", target, body, TIMEOUT);
        if opt.connections.is_some() {
            expected.push(response.map(|r| r.body).unwrap_or_default());
        }
    }

    let mut runs = Vec::new();
    for &mode in &opt.modes {
        let run = run_mode(mode, addr, &targets, opt.requests, opt.concurrency);
        let latencies = &run.sorted_latency_ns;
        println!(
            "loadgen[{}]: {}/{} ok, cache memory={} disk={} miss={} coalesced={} \
             bypass={}, {:.1} req/s, p50 {:.2} ms, p99 {:.2} ms",
            mode.label(),
            run.ok(),
            run.samples.len(),
            run.outcome_count(OUTCOME_MEMORY),
            run.outcome_count(OUTCOME_DISK),
            run.outcome_count(OUTCOME_MISS),
            run.outcome_count(OUTCOME_COALESCED),
            run.outcome_count(OUTCOME_BYPASS),
            run.throughput_rps(),
            percentile(latencies, 50.0) as f64 / 1e6,
            percentile(latencies, 99.0) as f64 / 1e6,
        );
        runs.push(run);
    }

    // The adversarial event-loop run, after the mode comparison so the
    // held-open fleet cannot distort those measurements.
    let event_loop = opt.connections.map(|connections| {
        println!(
            "loadgen[event-loop]: opening {connections} concurrent keep-alive \
             connection(s), {} slow client(s)",
            opt.slow_clients
        );
        let run = run_event_loop(addr, &targets, &expected, connections, &opt);
        println!(
            "loadgen[event-loop]: {}/{} connected, server held {} open, \
             {}/{} ok ({} errors: {} timeouts, {} resets), {} reconnects, \
             {:.1} req/s",
            run.connected,
            run.connections,
            run.open_during_run,
            run.tally.ok,
            run.requests,
            run.tally.errors,
            run.tally.timeouts,
            run.tally.resets,
            run.tally.reconnects,
            run.throughput_rps(),
        );
        run
    });

    // Closing scrapes: the second `/v1/metrics` capture (diffed against
    // the baseline for `"server_metrics"`) and one /v1/stats snapshot,
    // embedded verbatim (it is already JSON).
    let server_metrics = match (&metrics_before, fetch_metrics(addr)) {
        (Some(before), Some(after)) => Some(server_metrics_json(before, &after)),
        _ => None,
    };
    let server_stats = http::request(addr, "GET", "/v1/stats", b"", TIMEOUT)
        .ok()
        .filter(|r| r.status == 200)
        .map(|r| String::from_utf8_lossy(&r.body).trim().to_string());
    if let Some(handle) = self_hosted {
        let _ = handle.shutdown();
    }

    let speedup = {
        let rps = |m: Mode| {
            runs.iter()
                .find(|r| r.mode == m)
                .map(ModeRun::throughput_rps)
        };
        match (rps(Mode::KeepAlive), rps(Mode::Close)) {
            (Some(ka), Some(close)) if close > 0.0 => Some(ka / close),
            _ => None,
        }
    };
    if let Some(speedup) = speedup {
        println!("loadgen: keep-alive / close throughput = {speedup:.2}x");
    }

    // Cold-start vs warm-restart: how the persistent spill tier answers
    // the same corpus across a process restart (self-hosted runs only).
    let warm_restart = run_warm_restart(&opt, &targets);

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"oneq-bench-service/v5\",");
    let _ = writeln!(
        out,
        "  \"corpus\": \"{}\",",
        json::escape(&opt.corpus.display().to_string())
    );
    let _ = writeln!(out, "  \"files\": {},", targets.len());
    let _ = writeln!(out, "  \"requests_per_mode\": {},", opt.requests);
    let _ = writeln!(out, "  \"concurrency\": {},", opt.concurrency);
    let _ = writeln!(out, "  \"self_hosted\": {},", opt.addr.is_none());
    let _ = writeln!(
        out,
        "  \"config\": \"{}\",",
        json::escape(&opt.template.config.fingerprint())
    );
    out.push_str("  \"modes\": {\n");
    for (i, run) in runs.iter().enumerate() {
        let _ = write!(out, "    \"{}\": {}", run.mode.json_key(), mode_json(run));
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  },\n");
    match speedup {
        Some(speedup) => {
            let _ = writeln!(out, "  \"keep_alive_speedup\": {},", json::fmt_f64(speedup));
        }
        None => {
            let _ = writeln!(out, "  \"keep_alive_speedup\": null,");
        }
    }
    match &event_loop {
        Some(run) => {
            let _ = writeln!(out, "  \"event_loop\": {},", run.json());
        }
        None => {
            let _ = writeln!(out, "  \"event_loop\": null,");
        }
    }
    match &warm_restart {
        Some(block) => {
            let _ = writeln!(out, "  \"warm_restart\": {block},");
        }
        None => {
            let _ = writeln!(out, "  \"warm_restart\": null,");
        }
    }
    match &server_metrics {
        Some(block) => {
            let _ = writeln!(out, "  \"server_metrics\": {block},");
        }
        None => {
            let _ = writeln!(out, "  \"server_metrics\": null,");
        }
    }
    match &server_stats {
        Some(stats) => {
            let _ = writeln!(out, "  \"server_stats\": {stats}");
        }
        None => {
            let _ = writeln!(out, "  \"server_stats\": null");
        }
    }
    out.push_str("}\n");

    std::fs::write(&opt.out, &out).unwrap_or_else(|e| {
        eprintln!("loadgen: cannot write {}: {e}", opt.out.display());
        std::process::exit(2);
    });
    println!("loadgen: wrote {}", opt.out.display());
    let adversarial_failed = event_loop
        .as_ref()
        .is_some_and(|run| run.tally.errors > 0 || run.connected < run.connections);
    if runs.iter().any(|r| r.errors() > 0) || adversarial_failed {
        std::process::exit(1);
    }
}
