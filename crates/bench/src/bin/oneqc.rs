//! `oneqc`: the batch compiler driver.
//!
//! Compiles one `.qasm` file — or every `.qasm` file under a directory —
//! through the full OneQ pipeline and emits one JSON object per circuit
//! (JSON lines). Files are distributed over a std-thread worker pool, but
//! the output order is always the sorted input order, and with timings
//! disabled (the default) the output is byte-for-byte deterministic across
//! runs — CI compiles the fixture corpus twice and diffs.
//!
//! Usage:
//!
//! ```text
//! oneqc [OPTIONS] PATH...
//!
//!   PATH                 a .qasm file, or a directory scanned recursively
//!   --side N             square layer side (default: auto per circuit from
//!                        the baseline's physical-area protocol)
//!   --rows R --cols C    explicit rectangular layer (overrides --side)
//!   --extension N        extended-layer factor (default 1)
//!   --resource KIND      line3|line4|star4|ring4 (default line3)
//!   --jobs N             worker threads (default: available parallelism)
//!   --out PATH           write JSONL to a file instead of stdout
//!   --timings            include per-stage wall-clock timings (breaks
//!                        run-to-run byte determinism)
//! ```
//!
//! Exit code: 0 when every file compiled, 1 when any file failed (failed
//! files still get a `"status":"error"` record), 2 on usage errors.
//!
//! JSONL schema (`oneqc/v1`): every record carries `file` and `status`.
//! `ok` records add `qubits`, `gates`, `two_qubit_gates`, `rows`, `cols`,
//! `extension_factor`, `resource`, `depth`, `fusions`, `partitions`,
//! `fusion_graph_nodes`, `graph_state_nodes`, and (with `--timings`)
//! `timings_ns{parse,translate,partition,fusion_graph,mapping,shuffle,wall}`.
//! `error` records add `error` (a `file:line:col: message` one-liner).

use oneq::{Compiler, CompilerOptions};
use oneq_hardware::{LayerGeometry, ResourceKind};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

#[derive(Clone, Copy)]
enum GeometryChoice {
    /// Square layer sized per circuit by the baseline's physical-area
    /// protocol (the Table 2 / determinism-gate geometry).
    Auto,
    Square(usize),
    Rect(usize, usize),
}

#[derive(Clone)]
struct Options {
    geometry: GeometryChoice,
    extension: usize,
    resource: ResourceKind,
    resource_label: String,
    jobs: usize,
    out: Option<PathBuf>,
    timings: bool,
    paths: Vec<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: oneqc [--side N | --rows R --cols C] [--extension N] \
         [--resource line3|line4|star4|ring4] [--jobs N] [--out PATH] [--timings] PATH..."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut side = None;
    let mut rows = None;
    let mut cols = None;
    let mut extension = 1usize;
    let mut resource_label = "line3".to_string();
    let mut jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = None;
    let mut timings = false;
    let mut paths = Vec::new();

    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("oneqc: {flag} needs a value");
            usage();
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--side" => side = Some(parse_num(&value(&mut i, "--side"), "--side")),
            "--rows" => rows = Some(parse_num(&value(&mut i, "--rows"), "--rows")),
            "--cols" => cols = Some(parse_num(&value(&mut i, "--cols"), "--cols")),
            "--extension" => extension = parse_num(&value(&mut i, "--extension"), "--extension"),
            "--resource" => resource_label = value(&mut i, "--resource"),
            "--jobs" => jobs = parse_num(&value(&mut i, "--jobs"), "--jobs"),
            "--out" => out = Some(PathBuf::from(value(&mut i, "--out"))),
            "--timings" => timings = true,
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("oneqc: unknown flag {flag}");
                usage();
            }
            path => paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!("oneqc: no input paths");
        usage();
    }
    let geometry = match (side, rows, cols) {
        (None, None, None) => GeometryChoice::Auto,
        (Some(s), None, None) => GeometryChoice::Square(s),
        (None, Some(r), Some(c)) => GeometryChoice::Rect(r, c),
        _ => {
            eprintln!("oneqc: use either --side or both --rows and --cols");
            usage();
        }
    };
    // Reject zero dimensions here (usage error, exit 2) rather than letting
    // LayerGeometry's assert panic inside a worker thread.
    if matches!(
        geometry,
        GeometryChoice::Square(0) | GeometryChoice::Rect(0, _) | GeometryChoice::Rect(_, 0)
    ) {
        eprintln!("oneqc: layer dimensions must be >= 1");
        usage();
    }
    let resource = match resource_label.as_str() {
        "line3" => ResourceKind::LINE3,
        "line4" => ResourceKind::LINE4,
        "star4" => ResourceKind::STAR4,
        "ring4" => ResourceKind::RING4,
        other => {
            eprintln!("oneqc: unknown resource kind `{other}`");
            usage();
        }
    };
    if extension == 0 {
        eprintln!("oneqc: --extension must be >= 1");
        usage();
    }
    Options {
        geometry,
        extension,
        resource,
        resource_label,
        jobs: jobs.max(1),
        out,
        timings,
        paths,
    }
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("oneqc: {flag} expects a number, got `{s}`");
        usage();
    })
}

/// Expands the input paths into a sorted, deduplicated `.qasm` file list.
fn collect_files(paths: &[PathBuf]) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            walk(path, &mut files);
        } else if path.exists() {
            files.push(path.clone());
        } else {
            eprintln!("oneqc: no such file or directory: {}", path.display());
            std::process::exit(2);
        }
    }
    files.sort();
    files.dedup();
    files
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        eprintln!("oneqc: cannot read directory {}", dir.display());
        std::process::exit(2);
    };
    for entry in entries.flatten() {
        let path = entry.path();
        // `entry.file_type()` does not follow symlinks, so a symlink loop
        // cannot recurse; symlinked .qasm *files* are still accepted below.
        let is_real_dir = entry.file_type().is_ok_and(|t| t.is_dir());
        if is_real_dir {
            walk(&path, files);
        } else if path.extension().is_some_and(|e| e == "qasm") && path.is_file() {
            files.push(path);
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Compiles one file into its JSONL record. Never panics on bad input:
/// parse errors become `"status":"error"` records.
fn run_one(path: &Path, opt: &Options) -> (String, bool) {
    let display = path.display().to_string();
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            return (
                format!(
                    "{{\"file\": \"{}\", \"status\": \"error\", \"error\": \"{}\"}}",
                    json_escape(&display),
                    json_escape(&format!("read failed: {e}"))
                ),
                false,
            );
        }
    };
    let t0 = Instant::now();
    let circuit = match oneq_frontend::parse_circuit(&source) {
        Ok(c) => c,
        Err(e) => {
            let e = e.with_file(&display);
            return (
                format!(
                    "{{\"file\": \"{}\", \"status\": \"error\", \"error\": \"{}\"}}",
                    json_escape(&display),
                    json_escape(&e.to_line())
                ),
                false,
            );
        }
    };
    let parse_ns = t0.elapsed().as_nanos();

    let geometry = match opt.geometry {
        GeometryChoice::Auto => LayerGeometry::square(oneq_baseline::physical_side(
            circuit.n_qubits(),
            opt.resource,
        )),
        GeometryChoice::Square(s) => LayerGeometry::square(s),
        GeometryChoice::Rect(r, c) => LayerGeometry::new(r, c),
    };
    let options = CompilerOptions::new(geometry)
        .with_resource_kind(opt.resource)
        .with_extension(opt.extension);
    let t1 = Instant::now();
    let program = Compiler::new(options).compile(&circuit);
    let wall_ns = parse_ns + t1.elapsed().as_nanos();

    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"file\": \"{}\", \"status\": \"ok\", \"qubits\": {}, \"gates\": {}, \
         \"two_qubit_gates\": {}, \"rows\": {}, \"cols\": {}, \"extension_factor\": {}, \
         \"resource\": \"{}\", \"depth\": {}, \"fusions\": {}, \"partitions\": {}, \
         \"fusion_graph_nodes\": {}, \"graph_state_nodes\": {}",
        json_escape(&display),
        circuit.n_qubits(),
        circuit.gate_count(),
        circuit.two_qubit_count(),
        geometry.rows(),
        geometry.cols(),
        opt.extension,
        opt.resource_label,
        program.depth,
        program.fusions,
        program.stats.partitions,
        program.stats.fusion_graph_nodes,
        program.stats.graph_state_nodes,
    );
    if opt.timings {
        let t = &program.timings;
        let _ = write!(
            line,
            ", \"timings_ns\": {{\"parse\": {parse_ns}, \"translate\": {}, \
             \"partition\": {}, \"fusion_graph\": {}, \"mapping\": {}, \"shuffle\": {}, \
             \"wall\": {wall_ns}}}",
            t.translate_ns, t.partition_ns, t.fusion_graph_ns, t.mapping_ns, t.shuffle_ns,
        );
    }
    line.push('}');
    (line, true)
}

fn main() {
    let opt = parse_args();
    let files = collect_files(&opt.paths);
    if files.is_empty() {
        eprintln!("oneqc: no .qasm files found");
        std::process::exit(2);
    }

    // Worker pool: a shared cursor hands out file indices; each record
    // lands in its slot, so the output order is the sorted input order no
    // matter which thread finishes first.
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<(String, bool)>>> = Mutex::new(vec![None; files.len()]);
    let workers = opt.jobs.min(files.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= files.len() {
                    break;
                }
                let record = run_one(&files[i], &opt);
                slots.lock().expect("result mutex poisoned")[i] = Some(record);
            });
        }
    });

    let records = slots.into_inner().expect("result mutex poisoned");
    let mut output = String::new();
    let mut failures = 0usize;
    for record in records {
        let (line, ok) = record.expect("every slot filled by the pool");
        output.push_str(&line);
        output.push('\n');
        if !ok {
            failures += 1;
        }
    }
    match &opt.out {
        Some(path) => {
            std::fs::write(path, &output).unwrap_or_else(|e| {
                eprintln!("oneqc: cannot write {}: {e}", path.display());
                std::process::exit(2);
            });
            eprintln!(
                "oneqc: {} file(s) compiled, {failures} failed -> {}",
                records_len(&output),
                path.display()
            );
        }
        None => print!("{output}"),
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

fn records_len(output: &str) -> usize {
    output.lines().count()
}
