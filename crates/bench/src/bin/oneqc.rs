//! `oneqc`: the batch compiler driver.
//!
//! Compiles one `.qasm` file — or every `.qasm` file under a directory —
//! through the full OneQ pipeline and emits one JSON object per circuit
//! (JSON lines). Files are distributed over a std-thread worker pool, but
//! the output order is always the sorted input order, and with timings
//! disabled (the default) the output is byte-for-byte deterministic across
//! runs — CI compiles the fixture corpus twice and diffs.
//!
//! The compile → record path and the worker pool live in `oneq-service`
//! (`oneq_service::compile`, `oneq_service::pool`) and are shared with the
//! `oneqd` daemon, whose `POST /compile` responses are byte-identical to
//! these records for the same source and config.
//!
//! Usage:
//!
//! ```text
//! oneqc [OPTIONS] PATH...
//!
//!   PATH                 a .qasm file, or a directory scanned recursively
//!   --side N             square layer side (default: auto per circuit from
//!                        the baseline's physical-area protocol)
//!   --rows R --cols C    explicit rectangular layer (overrides --side)
//!   --extension N        extended-layer factor (default 1)
//!   --resource KIND      line3|line4|star4|ring4 (default line3)
//!   --jobs N             worker threads (default: available parallelism)
//!   --out PATH           write JSONL to a file instead of stdout
//!   --timings            include per-stage wall-clock timings (breaks
//!                        run-to-run byte determinism)
//! ```
//!
//! Exit code: 0 when every file compiled, 1 when any file failed (failed
//! files still get a `"status":"error"` record), 2 on usage errors, 3 when
//! an input path does not exist or no `.qasm` files were found under the
//! given paths.
//!
//! JSONL schema (`oneqc/v1`): every record carries `file` and `status`.
//! `ok` records add `qubits`, `gates`, `two_qubit_gates`, `rows`, `cols`,
//! `extension_factor`, `resource`, `depth`, `fusions`, `partitions`,
//! `fusion_graph_nodes`, `graph_state_nodes`, and (with `--timings`)
//! `timings_ns{parse,translate,partition,fusion_graph,mapping,shuffle,wall}`.
//! `error` records add `error` (a `file:line:col: message` one-liner).

use oneq_service::compile::error_record;
use oneq_service::pool::run_indexed;
use oneq_service::request::CompileRequest;
use std::path::{Path, PathBuf};

/// Exit code for input-path problems: a path that does not exist, an
/// unreadable directory, or a scan that found zero `.qasm` files.
/// Distinct from 1 (compile failures) and 2 (usage errors) so callers can
/// tell "bad invocation" from "bad corpus" from "bad circuit".
const EXIT_NO_INPUT: i32 = 3;

struct Options {
    /// Template request carrying the shared compile config; per-file
    /// requests are stamped from it with `with_source`.
    template: CompileRequest,
    jobs: usize,
    out: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: oneqc [--side N | --rows R --cols C] [--extension N] \
         [--resource line3|line4|star4|ring4] [--jobs N] [--out PATH] [--timings] PATH..."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The shared compile knobs (--side/--rows/--cols/--extension/
    // --resource/--timings) are parsed — and validated, with zero
    // dimensions rejected here rather than panicking a worker thread —
    // by the one knob table every entrypoint uses; only oneqc's own
    // flags remain below.
    let (template, rest) = CompileRequest::from_args(&args).unwrap_or_else(|msg| {
        eprintln!("oneqc: {msg}");
        usage();
    });
    // --bypass is a daemon/loadgen knob (cache opt-out); oneqc has no
    // cache, and an accepted-but-dead flag is a usage error, not a
    // silent no-op.
    if template.bypass {
        eprintln!("oneqc: --bypass only applies to the cached entrypoints (oneqd, loadgen)");
        usage();
    }
    let mut jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = None;
    let mut paths = Vec::new();

    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        rest.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("oneqc: {flag} needs a value");
            usage();
        })
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--jobs" => jobs = parse_num(&value(&mut i, "--jobs"), "--jobs"),
            "--out" => out = Some(PathBuf::from(value(&mut i, "--out"))),
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("oneqc: unknown flag {flag}");
                usage();
            }
            path => paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if paths.is_empty() {
        eprintln!("oneqc: no input paths");
        usage();
    }
    Options {
        template,
        jobs: jobs.max(1),
        out,
        paths,
    }
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("oneqc: {flag} expects a number, got `{s}`");
        usage();
    })
}

/// Expands the input paths into a sorted, deduplicated `.qasm` file list.
/// A nonexistent path is an input error (exit [`EXIT_NO_INPUT`]), not a
/// usage error: the command line was well-formed, the filesystem just
/// doesn't match it.
fn collect_files(paths: &[PathBuf]) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            walk(path, &mut files);
        } else if path.exists() {
            files.push(path.clone());
        } else {
            eprintln!("oneqc: no such file or directory: {}", path.display());
            std::process::exit(EXIT_NO_INPUT);
        }
    }
    files.sort();
    files.dedup();
    files
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        eprintln!("oneqc: cannot read directory {}", dir.display());
        std::process::exit(EXIT_NO_INPUT);
    };
    for entry in entries.flatten() {
        let path = entry.path();
        // `entry.file_type()` does not follow symlinks, so a symlink loop
        // cannot recurse; symlinked .qasm *files* are still accepted below.
        let is_real_dir = entry.file_type().is_ok_and(|t| t.is_dir());
        if is_real_dir {
            walk(&path, files);
        } else if path.extension().is_some_and(|e| e == "qasm") && path.is_file() {
            files.push(path);
        }
    }
}

/// Compiles one file into its JSONL record. Never panics on bad input:
/// read and parse errors become `"status":"error"` records.
fn run_one(path: &Path, template: &CompileRequest) -> (String, bool) {
    let display = path.display().to_string();
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            return (error_record(&display, &format!("read failed: {e}")), false);
        }
    };
    template.with_source(display, source).record()
}

fn main() {
    let opt = parse_args();
    let files = collect_files(&opt.paths);
    if files.is_empty() {
        eprintln!(
            "oneqc: no .qasm files found under: {}",
            opt.paths
                .iter()
                .map(|p| p.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(EXIT_NO_INPUT);
    }

    // Worker pool (shared with oneqd): a cursor hands out file indices and
    // each record lands in its slot, so the output order is the sorted
    // input order no matter which thread finishes first.
    let records = run_indexed(opt.jobs, &files, |_, path| run_one(path, &opt.template));

    let mut output = String::new();
    let mut failures = 0usize;
    for (line, ok) in &records {
        output.push_str(line);
        output.push('\n');
        if !ok {
            failures += 1;
        }
    }
    match &opt.out {
        Some(path) => {
            std::fs::write(path, &output).unwrap_or_else(|e| {
                eprintln!("oneqc: cannot write {}: {e}", path.display());
                std::process::exit(2);
            });
            eprintln!(
                "oneqc: {} file(s) compiled, {failures} failed -> {}",
                records.len(),
                path.display()
            );
        }
        None => print!("{output}"),
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
