//! Regenerates **Figure 13**: normalized physical depth (a) and fusion
//! count (b) of 16-qubit benchmarks on rectangular physical layers with
//! length/width ratios 1, 1.5, 2.1 and 2.6 (area ≈ 256), normalized by
//! the square-layer results.

use oneq::{Compiler, CompilerOptions};
use oneq_bench::{format_table, BenchKind, SEED};
use oneq_hardware::LayerGeometry;

fn main() {
    let ratios = [1.0, 1.5, 2.1, 2.6];
    let area = 256; // the baseline physical area for 16 qubits

    let mut depth_rows = Vec::new();
    let mut fusion_rows = Vec::new();
    for bench in BenchKind::ALL {
        let circuit = bench.circuit(16, SEED);
        let mut depths = Vec::new();
        let mut fusions = Vec::new();
        for &ratio in &ratios {
            let geometry = LayerGeometry::from_area_and_ratio(area, ratio);
            let program = Compiler::new(CompilerOptions::new(geometry)).compile(&circuit);
            depths.push(program.depth as f64);
            fusions.push(program.fusions as f64);
        }
        let norm =
            |v: &[f64]| -> Vec<String> { v.iter().map(|x| format!("{:.2}", x / v[0])).collect() };
        let mut dr = vec![bench.name().to_string()];
        dr.extend(norm(&depths));
        depth_rows.push(dr);
        let mut fr = vec![bench.name().to_string()];
        fr.extend(norm(&fusions));
        fusion_rows.push(fr);
    }

    let headers = ["bench", "ratio 1", "ratio 1.5", "ratio 2.1", "ratio 2.6"];
    println!("Figure 13(a): normalized physical depth vs layer aspect ratio");
    println!("{}", format_table(&headers, &depth_rows));
    println!("Figure 13(b): normalized #fusions vs layer aspect ratio");
    println!("{}", format_table(&headers, &fusion_rows));
}
