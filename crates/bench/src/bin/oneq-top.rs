//! `oneq-top`: a live terminal cockpit over a running `oneqd`.
//!
//! Polls `/v1/metrics` and `/v1/stats` on one keep-alive connection,
//! diffs consecutive scrapes, and renders the daemon's health as text
//! tables: per-route request rates with windowed p50/p99, per-stage
//! compile latencies, per-tier cache traffic, connection states, and
//! the current slowest requests with their request ids — the ids paste
//! straight into `GET /v1/traces/{id}` for the full span tree.
//!
//! Percentiles are nearest-rank over the server's log-linear histogram
//! buckets (≤ 12.5% relative error). In live mode they cover the last
//! poll window; the first frame — and every `--once` run — shows
//! lifetime values instead, labelled accordingly.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin oneq-top [-- OPTIONS]
//!
//!   --addr HOST:PORT   the daemon to watch (default 127.0.0.1:7878)
//!   --interval-ms N    poll cadence in live mode (default 1000)
//!   --once             print a single plain-text snapshot and exit
//! ```
//!
//! Exit code: 0 on success (`--once`) or interrupt, 2 on usage errors,
//! 1 when the daemon cannot be reached.

use oneq_bench::format_table;
use oneq_bench::scrape::{
    bucket_percentile, diff_cumulative, parse_bucket_series, stats_str, stats_u64,
};
use oneq_service::http::ClientConn;
use std::collections::BTreeMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(10);

/// Route-class label order for the requests table.
const ROUTES: [&str; 3] = ["compile", "batch", "inline"];
/// Stage label order (the pipeline's own order, then wall).
const STAGES: [&str; 7] = [
    "parse",
    "translate",
    "partition",
    "fusion_graph",
    "mapping",
    "shuffle",
    "wall",
];
/// Cache tier label order.
const TIERS: [&str; 5] = ["memory", "disk", "miss", "coalesced", "bypass"];

struct Options {
    addr: String,
    interval: Duration,
    once: bool,
}

fn usage() -> ! {
    eprintln!("usage: oneq-top [--addr HOST:PORT] [--interval-ms N] [--once]");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut options = Options {
        addr: "127.0.0.1:7878".to_string(),
        interval: Duration::from_millis(1000),
        once: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => options.addr = args.next().unwrap_or_else(|| usage()),
            "--interval-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                options.interval = Duration::from_millis(ms.max(100));
            }
            "--once" => options.once = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    options
}

/// One paired capture of both observability surfaces.
struct Scrape {
    metrics: String,
    stats: String,
    at: Instant,
}

/// The cockpit's connection: one keep-alive session, re-dialed
/// transparently when the server closes it (request-cap or idle).
struct Poller {
    addr: SocketAddr,
    conn: Option<ClientConn>,
}

impl Poller {
    fn new(addr: SocketAddr) -> Poller {
        Poller { addr, conn: None }
    }

    fn get(&mut self, path: &str) -> Option<String> {
        for _ in 0..2 {
            if self.conn.is_none() {
                self.conn = ClientConn::connect(self.addr, TIMEOUT).ok();
            }
            let conn = self.conn.as_mut()?;
            match conn.send("GET", path, b"") {
                Ok(resp) if resp.status == 200 => {
                    let body = String::from_utf8_lossy(&resp.body).into_owned();
                    if !resp.keep_alive() {
                        self.conn = None;
                    }
                    return Some(body);
                }
                _ => self.conn = None, // re-dial once, then give up
            }
        }
        None
    }

    fn scrape(&mut self) -> Option<Scrape> {
        let metrics = self.get("/v1/metrics")?;
        let stats = self.get("/v1/stats")?;
        Some(Scrape {
            metrics,
            stats,
            at: Instant::now(),
        })
    }
}

/// Nanoseconds as a fixed-point milliseconds cell.
fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// The daemon's version, read off the `oneqd_build_info{version="..."}`
/// gauge in the metrics exposition.
fn build_version(metrics: &str) -> &str {
    let pat = "oneqd_build_info{version=\"";
    metrics
        .find(pat)
        .and_then(|at| {
            let rest = &metrics[at + pat.len()..];
            rest.find('"').map(|end| &rest[..end])
        })
        .unwrap_or("?")
}

/// One histogram-family table: label, count (and per-second rate in
/// windowed mode), p50, p99. `before` selects the window — `Some` diffs
/// against the previous scrape, `None` reports lifetime values.
fn hist_rows(
    family: &str,
    label_key: &str,
    order: &[&str],
    before: Option<&Scrape>,
    now: &Scrape,
) -> Vec<Vec<String>> {
    let after = parse_bucket_series(&now.metrics, family, label_key);
    let prior: BTreeMap<String, Vec<(u64, u64)>> = match before {
        Some(b) => parse_bucket_series(&b.metrics, family, label_key),
        None => BTreeMap::new(),
    };
    let window_secs = before.map(|b| now.at.duration_since(b.at).as_secs_f64());
    let mut rows = Vec::new();
    for key in order {
        let Some(after_buckets) = after.get(*key) else {
            continue;
        };
        let diffed = diff_cumulative(prior.get(*key).map(Vec::as_slice), after_buckets);
        let total = diffed.last().map_or(0, |&(_, cum)| cum);
        let rate = match window_secs {
            Some(secs) if secs > 0.0 => format!("{:.1}", total as f64 / secs),
            _ => "-".to_string(),
        };
        rows.push(vec![
            key.to_string(),
            total.to_string(),
            rate,
            fmt_ms(bucket_percentile(&diffed, total, 50.0)),
            fmt_ms(bucket_percentile(&diffed, total, 99.0)),
        ]);
    }
    rows
}

/// The stats `slowest` array as table rows: id, route, status, outcome,
/// total ms. String-scanned (the ids and labels are identifier-shaped).
fn slowest_rows(stats: &str) -> Vec<Vec<String>> {
    let Some(at) = stats.find("\"slowest\": [") else {
        return Vec::new();
    };
    let block = &stats[at..];
    let end = block.find(']').unwrap_or(block.len());
    let mut rows = Vec::new();
    for entry in block[..end].split("{\"request_id\"").skip(1) {
        let entry = format!("{{\"request_id\"{entry}");
        rows.push(vec![
            stats_str(&entry, "request_id").unwrap_or("?").to_string(),
            stats_str(&entry, "route").unwrap_or("?").to_string(),
            stats_u64(&entry, "status").to_string(),
            stats_str(&entry, "outcome").unwrap_or("?").to_string(),
            fmt_ms(stats_u64(&entry, "total_ns")),
        ]);
    }
    rows
}

/// Renders one full frame. `before` is the previous scrape in live mode
/// (windowed percentiles), `None` for lifetime values.
fn render(addr: SocketAddr, before: Option<&Scrape>, now: &Scrape) -> String {
    let mut out = String::new();
    let version = build_version(&now.metrics);
    let uptime_ms = stats_u64(&now.stats, "uptime_ms");
    let requests = stats_u64(&now.stats, "requests");
    let window = match before {
        Some(b) => format!(
            "window {:.1}s",
            now.at.duration_since(b.at).as_secs_f64().max(0.001)
        ),
        None => "lifetime".to_string(),
    };
    out.push_str(&format!(
        "oneq-top — {addr} — oneqd {version} — up {:.0}s — {requests} requests — {window}\n",
        uptime_ms as f64 / 1000.0
    ));
    out.push_str(&format!(
        "workers {}  queue depth {}  executions {}  coalesced {}  traces {}\n\n",
        stats_u64(&now.stats, "workers"),
        stats_u64(&now.stats, "queue_depth"),
        stats_u64(&now.stats, "compile_executions"),
        stats_u64(&now.stats, "coalesced"),
        stats_u64(&now.stats, "traces_recorded"),
    ));

    let headers = ["", "count", "req/s", "p50 ms", "p99 ms"];
    let routes = hist_rows("oneqd_request_seconds", "route", &ROUTES, before, now);
    if !routes.is_empty() {
        out.push_str("ROUTES (end-to-end)\n");
        out.push_str(&format_table(&headers, &routes));
        out.push('\n');
    }
    let stages = hist_rows("oneqd_compile_stage_seconds", "stage", &STAGES, before, now);
    if !stages.is_empty() {
        out.push_str("COMPILE STAGES (executed compiles)\n");
        out.push_str(&format_table(&headers, &stages));
        out.push('\n');
    }
    let tiers = hist_rows("oneqd_cache_lookup_seconds", "tier", &TIERS, before, now);
    if !tiers.is_empty() {
        out.push_str("CACHE TIERS (lookup-to-result)\n");
        out.push_str(&format_table(&headers, &tiers));
        out.push('\n');
    }

    out.push_str(&format!(
        "CONNS  open {}  reading {}  dispatched {}  writing {}  draining {}  idle {}\n\n",
        stats_u64(&now.stats, "open"),
        stats_u64(&now.stats, "reading"),
        stats_u64(&now.stats, "dispatched"),
        stats_u64(&now.stats, "writing"),
        stats_u64(&now.stats, "draining"),
        stats_u64(&now.stats, "idle_keep_alive"),
    ));

    let slowest = slowest_rows(&now.stats);
    if slowest.is_empty() {
        out.push_str("SLOWEST  (no closed traces yet)\n");
    } else {
        out.push_str("SLOWEST (GET /v1/traces/{id} for the span tree)\n");
        out.push_str(&format_table(
            &["request id", "route", "status", "outcome", "total ms"],
            &slowest,
        ));
    }
    out
}

fn main() {
    let options = parse_args();
    let addr: SocketAddr = match options
        .addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
    {
        Some(addr) => addr,
        None => {
            eprintln!("oneq-top: cannot resolve {:?}", options.addr);
            std::process::exit(2);
        }
    };
    let mut poller = Poller::new(addr);
    let Some(mut last) = poller.scrape() else {
        eprintln!("oneq-top: no oneqd answering at {addr}");
        std::process::exit(1);
    };
    if options.once {
        print!("{}", render(addr, None, &last));
        return;
    }
    // First frame immediately (lifetime values), then windowed frames at
    // the poll cadence. ANSI clear-and-home keeps it flicker-light.
    print!("\x1b[2J\x1b[H{}", render(addr, None, &last));
    loop {
        std::thread::sleep(options.interval);
        match poller.scrape() {
            Some(now) => {
                print!("\x1b[2J\x1b[H{}", render(addr, Some(&last), &now));
                last = now;
            }
            None => {
                println!("\x1b[2J\x1b[Honeq-top: lost contact with {addr}, retrying...");
            }
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }
}
