//! Regenerates **Table 2**: baseline vs OneQ physical depth and fusion
//! count (3-qubit resource states), with improvement factors and the
//! geomean summary the paper quotes (§7.2).

use oneq_bench::{compare, format_table, geomean, BenchKind, SEED};
use oneq_hardware::ResourceKind;

fn main() {
    let mut rows = Vec::new();
    let mut depth_improvements = Vec::new();
    let mut fusion_improvements = Vec::new();

    for kind in BenchKind::ALL {
        for &n in kind.paper_sizes() {
            let cmp = compare(kind, n, SEED, ResourceKind::LINE3);
            depth_improvements.push(cmp.depth_improvement());
            fusion_improvements.push(cmp.fusion_improvement());
            rows.push(vec![
                cmp.label.clone(),
                cmp.baseline.depth.to_string(),
                cmp.depth.to_string(),
                format!("{:.0}", cmp.depth_improvement()),
                cmp.baseline.fusions.to_string(),
                cmp.fusions.to_string(),
                format!("{:.0}", cmp.fusion_improvement()),
            ]);
        }
    }

    println!("Table 2: OneQ vs the cluster-state interpreter baseline");
    println!(
        "{}",
        format_table(
            &[
                "name-#qubits",
                "base depth",
                "our depth",
                "improv",
                "base #fusions",
                "our #fusions",
                "improv",
            ],
            &rows
        )
    );
    println!(
        "geomean improvement: depth {:.1}x, #fusions {:.1}x",
        geomean(&depth_improvements),
        geomean(&fusion_improvements)
    );
}
