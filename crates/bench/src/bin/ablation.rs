//! Ablation study over the design choices DESIGN.md calls out:
//!
//! * **planarity enforcement** on/off (paper §4 graph planarization),
//! * **cycle-prioritized** vs plain BFS edge order (paper §6),
//! * **in-layer routing** on/off (paper §6 routing triggers),
//! * **extended physical layers** ×1 vs ×3 (paper §3.1 / Fig. 14).

use oneq::{Compiler, CompilerOptions};
use oneq_bench::{format_table, BenchKind, SEED};
use oneq_hardware::LayerGeometry;

fn main() {
    let geometry = LayerGeometry::square(16);
    let base = CompilerOptions::new(geometry);

    let variants: Vec<(&str, CompilerOptions)> = vec![
        ("default", base),
        ("no planarity", {
            let mut o = base;
            o.enforce_planarity = false;
            o
        }),
        ("plain BFS order", {
            let mut o = base;
            o.mapping.cycle_priority = false;
            o
        }),
        ("no routing", {
            let mut o = base;
            o.mapping.allow_routing = false;
            o
        }),
        ("extended x3", base.with_extension(3)),
    ];

    let mut rows = Vec::new();
    for bench in BenchKind::ALL {
        let circuit = bench.circuit(16, SEED);
        for (name, options) in &variants {
            let program = Compiler::new(*options).compile(&circuit);
            rows.push(vec![
                format!("{}-16", bench.name()),
                name.to_string(),
                program.depth.to_string(),
                program.fusions.to_string(),
                program.stats.partitions.to_string(),
                program.stats.shuffle_fusions.to_string(),
            ]);
        }
    }

    println!("Ablations on 16-qubit benchmarks (16x16 layers):");
    println!(
        "{}",
        format_table(
            &[
                "bench",
                "variant",
                "depth",
                "#fusions",
                "partitions",
                "shuffle fusions"
            ],
            &rows
        )
    );
}
