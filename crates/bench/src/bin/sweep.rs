//! `sweep`: the perf-trajectory harness.
//!
//! Compiles the full paper benchmark suite (Table 2 sizes) across layer
//! geometries and extension factors and writes a machine-readable
//! `BENCH_pipeline.json` with per-stage wall time plus the paper's two
//! metrics (physical depth, #fusions) for every configuration. CI uploads
//! the file as an artifact, so the repo accumulates a measured perf
//! trajectory from PR 2 onward.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin sweep [-- [--quick] [--out PATH] [--resource KIND]]
//! ```
//!
//! `--quick` restricts the sweep to the smallest size per benchmark with
//! no geometry variants (the CI smoke configuration); `--out` overrides
//! the output path (default `BENCH_pipeline.json` in the working
//! directory). `--resource` (line3|line4|star4|ring4, default line3)
//! selects the resource-state kind the whole sweep compiles with; it is
//! parsed by the same `CompileRequest::from_args` knob table as `oneqc`,
//! `loadgen`, and the daemon's query strings.

use oneq::{Compiler, CompilerOptions};
use oneq_bench::{BenchKind, SEED};
use oneq_hardware::{LayerGeometry, ResourceKind};
use oneq_service::compile::GeometryChoice;
use oneq_service::json;
use oneq_service::request::CompileRequest;
use std::fmt::Write as _;
use std::time::Instant;

/// One compile configuration of the sweep.
struct RunConfig {
    kind: BenchKind,
    qubits: usize,
    geometry: LayerGeometry,
    geometry_label: &'static str,
    extension_factor: usize,
}

/// One measured compile.
struct RunRecord {
    config: RunConfig,
    depth: usize,
    fusions: usize,
    partitions: usize,
    fusion_graph_nodes: usize,
    translate_ns: u128,
    partition_ns: u128,
    fusion_graph_ns: u128,
    mapping_ns: u128,
    shuffle_ns: u128,
    wall_ns: u128,
}

fn configs(quick: bool, resource: ResourceKind) -> Vec<RunConfig> {
    let mut out = Vec::new();
    for kind in BenchKind::ALL {
        let sizes: &[usize] = if quick {
            &kind.paper_sizes()[..1]
        } else {
            kind.paper_sizes()
        };
        for &n in sizes {
            let side = oneq_baseline::physical_side(n, resource);
            let square = LayerGeometry::square(side);
            // The paper's square array, plus (full mode) the 1.5-ratio
            // rectangle of Fig. 13 and the x2 extended layer of Fig. 14.
            out.push(RunConfig {
                kind,
                qubits: n,
                geometry: square,
                geometry_label: "square",
                extension_factor: 1,
            });
            if !quick {
                out.push(RunConfig {
                    kind,
                    qubits: n,
                    geometry: LayerGeometry::from_area_and_ratio(side * side, 1.5),
                    geometry_label: "ratio1.5",
                    extension_factor: 1,
                });
                out.push(RunConfig {
                    kind,
                    qubits: n,
                    geometry: square,
                    geometry_label: "square",
                    extension_factor: 2,
                });
            }
        }
    }
    out
}

fn run_one(config: RunConfig, resource: ResourceKind) -> RunRecord {
    let circuit = config.kind.circuit(config.qubits, SEED);
    let options = CompilerOptions::new(config.geometry)
        .with_resource_kind(resource)
        .with_extension(config.extension_factor);
    let t0 = Instant::now();
    let program = Compiler::new(options).compile(&circuit);
    let wall_ns = t0.elapsed().as_nanos();
    RunRecord {
        config,
        depth: program.depth,
        fusions: program.fusions,
        partitions: program.stats.partitions,
        fusion_graph_nodes: program.stats.fusion_graph_nodes,
        translate_ns: program.timings.translate_ns,
        partition_ns: program.timings.partition_ns,
        fusion_graph_ns: program.timings.fusion_graph_ns,
        mapping_ns: program.timings.mapping_ns,
        shuffle_ns: program.timings.shuffle_ns,
        wall_ns,
    }
}

/// Renders the records as JSON. String values go through the shared
/// `oneq_service::json` escaper (the same helper behind `oneqc` records
/// and `oneqd` responses), so the labels stay safe even if a future
/// benchmark name stops being plain ASCII.
fn to_json(records: &[RunRecord], quick: bool, resource: ResourceKind) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"oneq-bench-pipeline/v1\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(
        out,
        "  \"resource\": \"{}\",",
        json::escape(oneq_service::compile::resource_label(resource))
    );
    out.push_str("  \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        let c = &r.config;
        out.push_str("    {");
        let _ = write!(
            out,
            "\"bench\": \"{}\", \"qubits\": {}, \"rows\": {}, \"cols\": {}, \
             \"geometry\": \"{}\", \"extension_factor\": {}, \
             \"depth\": {}, \"fusions\": {}, \"partitions\": {}, \
             \"fusion_graph_nodes\": {}, \
             \"timings_ns\": {{\"translate\": {}, \"partition\": {}, \
             \"fusion_graph\": {}, \"mapping\": {}, \"shuffle\": {}, \
             \"wall\": {}}}",
            json::escape(c.kind.name()),
            c.qubits,
            c.geometry.rows(),
            c.geometry.cols(),
            json::escape(c.geometry_label),
            c.extension_factor,
            r.depth,
            r.fusions,
            r.partitions,
            r.fusion_graph_nodes,
            r.translate_ns,
            r.partition_ns,
            r.fusion_graph_ns,
            r.mapping_ns,
            r.shuffle_ns,
            r.wall_ns,
        );
        out.push('}');
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    let total_wall: u128 = records.iter().map(|r| r.wall_ns).sum();
    let total_mapping: u128 = records.iter().map(|r| r.mapping_ns).sum();
    let _ = writeln!(
        out,
        "  \"totals\": {{\"wall_ns\": {total_wall}, \"mapping_ns\": {total_mapping}}}"
    );
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The shared compile knobs come from the one knob table; sweep's own
    // flags are picked off the rest. Only --resource applies here — the
    // sweep owns its geometry/extension axes — and a knob that would be
    // accepted-but-dead is a usage error, not a silent no-op.
    let (template, rest) = CompileRequest::from_args(&args).unwrap_or_else(|msg| {
        eprintln!("sweep: {msg}");
        std::process::exit(2);
    });
    if template.config.geometry != GeometryChoice::Auto
        || template.config.extension != 1
        || template.config.timings
        || template.bypass
    {
        eprintln!(
            "sweep: only --resource applies; the sweep sets geometry, extension, \
             and timings itself"
        );
        std::process::exit(2);
    }
    let resource = template.config.resource;
    let quick = rest.iter().any(|a| a == "--quick");
    let out_path = rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| rest.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());

    let configs = configs(quick, resource);
    println!(
        "sweep: {} configurations ({})",
        configs.len(),
        if quick { "quick" } else { "full" }
    );

    let mut records = Vec::with_capacity(configs.len());
    for config in configs {
        let record = run_one(config, resource);
        println!(
            "  {}-{} {}x{} ext{}: depth {}, fusions {}, mapping {:.2} ms, wall {:.2} ms",
            record.config.kind.name(),
            record.config.qubits,
            record.config.geometry.rows(),
            record.config.geometry.cols(),
            record.config.extension_factor,
            record.depth,
            record.fusions,
            record.mapping_ns as f64 / 1e6,
            record.wall_ns as f64 / 1e6,
        );
        records.push(record);
    }

    let total_mapping: u128 = records.iter().map(|r| r.mapping_ns).sum();
    let total_wall: u128 = records.iter().map(|r| r.wall_ns).sum();
    println!(
        "total: mapping {:.2} ms, wall {:.2} ms",
        total_mapping as f64 / 1e6,
        total_wall as f64 / 1e6
    );

    let json = to_json(&records, quick, resource);
    std::fs::write(&out_path, json).expect("write BENCH_pipeline.json");
    println!("wrote {out_path}");
}
