//! Regenerates **Figure 12**: improvement factors of physical depth (a)
//! and fusion count (b) for 16-qubit benchmarks across resource-state
//! types (3-line, 4-line, 4-star, 4-ring).

use oneq_bench::{compare, format_table, BenchKind, SEED};
use oneq_hardware::ResourceKind;

fn main() {
    let kinds = [
        ResourceKind::LINE3,
        ResourceKind::LINE4,
        ResourceKind::STAR4,
        ResourceKind::RING4,
    ];

    for (metric, pick) in [
        (
            "depth improvement",
            (|c: &oneq_bench::Comparison| c.depth_improvement())
                as fn(&oneq_bench::Comparison) -> f64,
        ),
        ("#fusion improvement", |c: &oneq_bench::Comparison| {
            c.fusion_improvement()
        }),
    ] {
        let mut rows = Vec::new();
        for bench in BenchKind::ALL {
            let mut row = vec![bench.name().to_string()];
            for kind in kinds {
                let cmp = compare(bench, 16, SEED, kind);
                row.push(format!("{:.0}", pick(&cmp)));
            }
            rows.push(row);
        }
        println!("Figure 12 ({metric}), 16-qubit benchmarks:");
        println!(
            "{}",
            format_table(&["bench", "3-line", "4-line", "4-star", "4-ring"], &rows)
        );
    }
}
