//! Regenerates **Figure 15**: normalized physical depth (a) and fusion
//! count (b) of 16-qubit benchmarks as the physical area sweeps
//! 200..1000 RSGs, normalized by the area the baseline requires (256).
//! Expected shape: depth falls then plateaus; fusions grow.

use oneq::{Compiler, CompilerOptions};
use oneq_bench::{format_table, BenchKind, SEED};
use oneq_hardware::LayerGeometry;

fn main() {
    let areas = [200usize, 400, 600, 800, 1000];
    let reference_area = 256;

    let mut depth_rows = Vec::new();
    let mut fusion_rows = Vec::new();
    for bench in BenchKind::ALL {
        let circuit = bench.circuit(16, SEED);
        let run = |area: usize| {
            let side = (area as f64).sqrt().round() as usize;
            let geometry = LayerGeometry::new(side, area.div_ceil(side));
            let program = Compiler::new(CompilerOptions::new(geometry)).compile(&circuit);
            (program.depth as f64, program.fusions as f64)
        };
        let (d0, f0) = run(reference_area);
        let mut dr = vec![bench.name().to_string()];
        let mut fr = vec![bench.name().to_string()];
        for &area in &areas {
            let (d, f) = run(area);
            dr.push(format!("{:.2}", d / d0));
            fr.push(format!("{:.2}", f / f0));
        }
        depth_rows.push(dr);
        fusion_rows.push(fr);
    }

    let headers = ["bench", "200", "400", "600", "800", "1000"];
    println!("Figure 15(a): normalized depth vs physical area (ref = 256)");
    println!("{}", format_table(&headers, &depth_rows));
    println!("Figure 15(b): normalized #fusions vs physical area (ref = 256)");
    println!("{}", format_table(&headers, &fusion_rows));
}
