//! Extension experiment (paper §7.2, closing remark): OneQ's modules have
//! no hard dependency on the orthogonal grid, so the compiler also targets
//! **triangular** (6-neighbour) and **hexagonal** (3-neighbour) RSG
//! couplings. This sweep compares the three topologies on the 16-qubit
//! benchmarks at the baseline's physical area.

use oneq::{Compiler, CompilerOptions};
use oneq_bench::{format_table, BenchKind, SEED};
use oneq_hardware::{LayerGeometry, Topology};

fn main() {
    let topologies = [
        ("orthogonal", Topology::Orthogonal),
        ("triangular", Topology::Triangular),
        ("hexagonal", Topology::Hexagonal),
    ];

    let mut rows = Vec::new();
    for bench in BenchKind::ALL {
        let circuit = bench.circuit(16, SEED);
        for (name, topo) in topologies {
            let geometry = LayerGeometry::square(16).with_topology(topo);
            let program = Compiler::new(CompilerOptions::new(geometry)).compile(&circuit);
            rows.push(vec![
                format!("{}-16", bench.name()),
                name.to_string(),
                program.depth.to_string(),
                program.fusions.to_string(),
            ]);
        }
    }

    println!("RSG coupling topologies, 16-qubit benchmarks (16x16 layers):");
    println!(
        "{}",
        format_table(&["bench", "topology", "depth", "#fusions"], &rows)
    );
    println!("expectation: triangular (6 couplings/site) <= orthogonal <= hexagonal (3/site)");
}
