//! # oneq-bench
//!
//! Benchmark harness regenerating every table and figure of the OneQ
//! paper's evaluation (§7). Each artifact has a dedicated binary:
//!
//! | Artifact | Binary | What it prints |
//! |---|---|---|
//! | Table 1 | `table1` | benchmark sizes, cluster area, physical area |
//! | Table 2 | `table2` | baseline vs OneQ depth/#fusions + improvement factors |
//! | Fig. 12 | `fig12`  | improvement factors per resource-state type |
//! | Fig. 13 | `fig13`  | normalized metrics vs layer aspect ratio |
//! | Fig. 15 | `fig15`  | normalized metrics vs physical area |
//! | §4/§6 ablations | `ablation` | planarity / edge-order / routing / extension |
//! | §7.2 extension | `topology` | orthogonal vs triangular vs hexagonal coupling |
//!
//! (Figs. 11 and 14 are layout visualizations; see `examples/mapping_viz`
//! and `examples/extended_layer`.)
//!
//! Beyond the paper artifacts, `oneqc` batch-compiles arbitrary OpenQASM
//! 2.0 files (via `oneq-frontend`) to JSONL metrics, `sweep` records the
//! perf trajectory, `loadgen` replays the fixture corpus against the
//! `oneqd` compile service and records throughput/latency/cache-hit rate
//! (`BENCH_service.json`), `oneq-top` is a live terminal cockpit over a
//! running daemon's `/v1/metrics` and `/v1/stats` (see [`scrape`]), and
//! `gen_qasm_fixtures` keeps the `.qasm` fixture corpus under
//! `tests/fixtures/qasm/` in sync with the constructors.
//!
//! Criterion benches under `benches/` measure compiler performance per
//! stage and end to end.

#![warn(missing_docs)]

pub mod scrape;

use oneq::{Compiler, CompilerOptions};
use oneq_baseline::BaselineResult;
use oneq_circuit::{benchmarks, Circuit};
use oneq_hardware::{LayerGeometry, ResourceKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's four benchmark programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchKind {
    /// Quantum Fourier Transform.
    Qft,
    /// QAOA maxcut on a random half-dense graph.
    Qaoa,
    /// Cuccaro ripple-carry adder.
    Rca,
    /// Bernstein–Vazirani with a random half-ones secret.
    Bv,
}

impl BenchKind {
    /// All benchmarks, in the paper's table order.
    pub const ALL: [BenchKind; 4] = [
        BenchKind::Qft,
        BenchKind::Qaoa,
        BenchKind::Rca,
        BenchKind::Bv,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BenchKind::Qft => "QFT",
            BenchKind::Qaoa => "QAOA",
            BenchKind::Rca => "RCA",
            BenchKind::Bv => "BV",
        }
    }

    /// The qubit sizes the paper evaluates for this benchmark (Table 2).
    pub fn paper_sizes(&self) -> &'static [usize] {
        match self {
            BenchKind::Bv => &[16, 25, 100],
            _ => &[16, 25, 36],
        }
    }

    /// Builds the `n`-qubit instance with a fixed seed (the random
    /// families — QAOA graphs, BV secrets — are deterministic per seed).
    pub fn circuit(&self, n: usize, seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            BenchKind::Qft => benchmarks::qft(n),
            BenchKind::Qaoa => benchmarks::qaoa_maxcut_random(n, &mut rng),
            BenchKind::Rca => benchmarks::rca(n),
            // BV-n means n qubits total: n-1 secret bits + ancilla.
            BenchKind::Bv => benchmarks::bv_random(n - 1, &mut rng),
        }
    }
}

/// One baseline-vs-OneQ comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Label, e.g. `QFT-16`.
    pub label: String,
    /// Baseline metrics.
    pub baseline: BaselineResult,
    /// OneQ depth (physical layers).
    pub depth: usize,
    /// OneQ fusion count.
    pub fusions: usize,
}

impl Comparison {
    /// Baseline depth / OneQ depth.
    pub fn depth_improvement(&self) -> f64 {
        self.baseline.depth as f64 / self.depth.max(1) as f64
    }

    /// Baseline fusions / OneQ fusions.
    pub fn fusion_improvement(&self) -> f64 {
        self.baseline.fusions as f64 / self.fusions.max(1) as f64
    }
}

/// Runs baseline and OneQ on the same physical area (the paper's Table 2
/// protocol) for one benchmark instance.
pub fn compare(kind: BenchKind, n: usize, seed: u64, resource: ResourceKind) -> Comparison {
    let circuit = kind.circuit(n, seed);
    let baseline = oneq_baseline::evaluate(&circuit, resource);
    let geometry = LayerGeometry::square(baseline.physical_side);
    let options = CompilerOptions::new(geometry).with_resource_kind(resource);
    let program = Compiler::new(options).compile(&circuit);
    Comparison {
        label: format!("{}-{}", kind.name(), n),
        baseline,
        depth: program.depth,
        fusions: program.fusions,
    }
}

/// Geometric mean helper (the paper reports geomean improvements).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Renders rows as a fixed-width text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Default RNG seed used by all experiment binaries (reproducibility).
pub const SEED: u64 = 2023;

/// The `.qasm` fixture corpus: file stem and the built-in constructor it
/// was exported from. The `gen_qasm_fixtures` bin writes these under
/// [`qasm_fixture_dir`]; the `frontend_fixtures` integration test asserts
/// the files on disk match these constructors bit for bit, so the corpus
/// can never drift from the code.
pub fn qasm_fixtures() -> Vec<(&'static str, Circuit)> {
    vec![
        ("bv-16", BenchKind::Bv.circuit(16, SEED)),
        ("bv-25", BenchKind::Bv.circuit(25, SEED)),
        ("bv-100", BenchKind::Bv.circuit(100, SEED)),
        ("qaoa-16", BenchKind::Qaoa.circuit(16, SEED)),
        ("qft-16", benchmarks::qft(16)),
        ("qft_no_swaps-16", benchmarks::qft_no_swaps(16)),
        ("rca-16", BenchKind::Rca.circuit(16, SEED)),
    ]
}

/// Where the `.qasm` fixtures live: `tests/fixtures/qasm/` at the
/// workspace root.
pub fn qasm_fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/qasm")
}

/// Renders one fixture file: a provenance header plus the QASM export.
pub fn render_qasm_fixture(name: &str, circuit: &Circuit) -> String {
    format!(
        "// {name}: exported from the built-in paper-benchmark constructor (seed {SEED}).\n\
         // Generated by `cargo run -p oneq-bench --bin gen_qasm_fixtures` -- do not edit.\n\
         {}",
        circuit.to_qasm()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_at_paper_sizes() {
        for kind in BenchKind::ALL {
            for &n in kind.paper_sizes() {
                let c = kind.circuit(n, SEED);
                assert_eq!(c.n_qubits(), n, "{}-{n}", kind.name());
            }
        }
    }

    #[test]
    fn comparison_improvements_are_positive() {
        let cmp = compare(BenchKind::Bv, 16, SEED, ResourceKind::LINE3);
        assert!(cmp.depth_improvement() >= 1.0);
        assert!(cmp.fusion_improvement() >= 1.0);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
    }
}
