//! # oneq-graph
//!
//! Graph substrate for the OneQ compiler (ISCA'23 reproduction).
//!
//! The OneQ compilation pipeline is graph manipulation end to end: quantum
//! programs become *graph states*, fusion strategies become *fusion graphs*,
//! and the photonic hardware is a *coupling graph*. This crate provides the
//! undirected-graph data structure and the graph algorithms those stages
//! rely on, implemented from scratch so the workspace has no external graph
//! dependency:
//!
//! * [`Graph`] — a simple undirected graph with O(1) edge queries,
//! * traversal utilities (BFS/DFS orders, connected components, shortest
//!   paths) in [`traversal`],
//! * biconnectivity analysis (bridges, articulation points, biconnected
//!   components) in [`biconnected`] — used for the cycle-prioritized edge
//!   ordering of the fusion mapper (paper §6),
//! * planarity testing with embedding extraction (Demoucron's face-insertion
//!   algorithm) in [`planarity`] — used by graph planarization (paper §4)
//!   and planarity-aware search (paper §6),
//! * combinatorial embeddings (rotation systems) and face traversal in
//!   [`embedding`] — used by fusion-graph generation (paper §5),
//! * maximal planar subgraph extraction in [`mps`] — used when a single
//!   dependency layer is non-planar (paper §4),
//! * deterministic and random graph generators in [`generators`].
//!
//! # Example
//!
//! ```
//! use oneq_graph::{Graph, planarity};
//!
//! // K4 is planar, K5 is not.
//! let k4 = oneq_graph::generators::complete(4);
//! let k5 = oneq_graph::generators::complete(5);
//! assert!(planarity::is_planar(&k4));
//! assert!(!planarity::is_planar(&k5));
//! ```

#![warn(missing_docs)]

pub mod biconnected;
pub mod embedding;
pub mod generators;
mod graph;
pub mod matching;
pub mod mps;
pub mod planarity;
pub mod traversal;

pub use embedding::{Embedding, Face};
pub use graph::{Edge, Graph, GraphError, NodeId};
