//! Greedy pairing utilities for inter-layer shuffling.
//!
//! The shuffling stage (paper §6) "first pairs up the incomplete nodes,
//! sorts the node pairs according to their distances, and then finds the
//! shortest routing paths ... in ascending order of the distances". This
//! module provides the distance-greedy pairing used when incomplete nodes
//! must be matched many-to-many (cross-partition edge bundles).

use crate::NodeId;

/// Greedily pairs items by ascending cost.
///
/// `cost(a, b)` gives the pairing cost of two items; each item is used at
/// most once; leftover items (odd counts) are returned unpaired.
///
/// # Example
///
/// ```
/// use oneq_graph::matching::greedy_pairing;
///
/// let items = vec![0usize, 10, 11, 1];
/// let (pairs, rest) = greedy_pairing(&items, |a, b| a.abs_diff(*b));
/// assert_eq!(pairs, vec![(0, 1), (10, 11)]);
/// assert!(rest.is_empty());
/// ```
pub fn greedy_pairing<T: Copy + Ord, F: Fn(&T, &T) -> usize>(
    items: &[T],
    cost: F,
) -> (Vec<(T, T)>, Vec<T>) {
    let mut candidates: Vec<(usize, T, T)> = Vec::new();
    for (i, &a) in items.iter().enumerate() {
        for &b in &items[i + 1..] {
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            candidates.push((cost(&x, &y), x, y));
        }
    }
    candidates.sort();
    let mut used = std::collections::BTreeSet::new();
    let mut pairs = Vec::new();
    for (_, a, b) in candidates {
        if !used.contains(&a) && !used.contains(&b) {
            used.insert(a);
            used.insert(b);
            pairs.push((a, b));
        }
    }
    let rest: Vec<T> = items
        .iter()
        .copied()
        .filter(|x| !used.contains(x))
        .collect();
    (pairs, rest)
}

/// Distance-greedy pairing of graph nodes using an arbitrary metric.
pub fn pair_nodes<F: Fn(NodeId, NodeId) -> usize>(
    nodes: &[NodeId],
    metric: F,
) -> (Vec<(NodeId, NodeId)>, Vec<NodeId>) {
    greedy_pairing(nodes, |a, b| metric(*a, *b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_minimize_greedy_cost() {
        let items = vec![1usize, 2, 100, 101];
        let (pairs, rest) = greedy_pairing(&items, |a, b| a.abs_diff(*b));
        assert_eq!(pairs, vec![(1, 2), (100, 101)]);
        assert!(rest.is_empty());
    }

    #[test]
    fn odd_counts_leave_one_unpaired() {
        let items = vec![5usize, 6, 50];
        let (pairs, rest) = greedy_pairing(&items, |a, b| a.abs_diff(*b));
        assert_eq!(pairs, vec![(5, 6)]);
        assert_eq!(rest, vec![50]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let (pairs, rest) = greedy_pairing::<usize, _>(&[], |_, _| 0);
        assert!(pairs.is_empty() && rest.is_empty());
        let (pairs, rest) = greedy_pairing(&[7usize], |a, b| a.abs_diff(*b));
        assert!(pairs.is_empty());
        assert_eq!(rest, vec![7]);
    }

    #[test]
    fn node_pairing_uses_metric() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let (pairs, rest) = pair_nodes(&nodes, |a, b| a.index().abs_diff(b.index()));
        assert_eq!(pairs.len(), 2);
        assert!(rest.is_empty());
    }
}
