//! Planarity testing with embedding extraction.
//!
//! OneQ needs planarity in three places: graph planarization during
//! partitioning (paper §4), planarity preservation in fusion-graph
//! generation (paper §5) and the planarity-aware in-layer search (paper §6).
//! All three need not just a yes/no answer but a *planar embedding*
//! (clockwise edge orders), so we implement **Demoucron's face-insertion
//! algorithm**: start from a cycle, repeatedly pick a fragment of the
//! remaining graph, and embed one of its paths into a face containing all of
//! the fragment's attachment points. If some fragment has no such face the
//! graph is non-planar. The algorithm is O(n·m) per biconnected component,
//! which is ample for the partition-sized graphs the compiler tests.
//!
//! General graphs are handled by decomposing into biconnected components
//! (a graph is planar iff all its biconnected components are) and merging
//! the per-component rotations at the cut vertices.

use crate::biconnected;
use crate::{Edge, Embedding, Graph, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Result of [`check_planarity`].
#[derive(Debug, Clone)]
pub enum PlanarityResult {
    /// The graph is planar; a planar embedding (rotation system) is attached.
    Planar(Embedding),
    /// The graph is not planar.
    NonPlanar,
}

impl PlanarityResult {
    /// Returns `true` for the planar case.
    pub fn is_planar(&self) -> bool {
        matches!(self, PlanarityResult::Planar(_))
    }

    /// Extracts the embedding, if planar.
    pub fn into_embedding(self) -> Option<Embedding> {
        match self {
            PlanarityResult::Planar(e) => Some(e),
            PlanarityResult::NonPlanar => None,
        }
    }
}

/// Returns `true` if `graph` is planar.
///
/// # Example
///
/// ```
/// use oneq_graph::{generators, planarity};
///
/// assert!(planarity::is_planar(&generators::grid(4, 4)));
/// assert!(!planarity::is_planar(&generators::complete(5)));
/// assert!(!planarity::is_planar(&generators::complete_bipartite(3, 3)));
/// ```
pub fn is_planar(graph: &Graph) -> bool {
    check_planarity(graph).is_planar()
}

/// Computes a planar embedding, or `None` when the graph is non-planar.
pub fn planar_embedding(graph: &Graph) -> Option<Embedding> {
    check_planarity(graph).into_embedding()
}

/// Tests planarity and extracts an embedding in one call.
///
/// The embedding merges per-biconnected-component embeddings; at a cut
/// vertex the rotations of the incident components are concatenated, which
/// preserves planarity.
pub fn check_planarity(graph: &Graph) -> PlanarityResult {
    let n = graph.node_count();
    // Quick Euler-bound rejection for simple graphs.
    if n >= 3 && graph.edge_count() > 3 * n - 6 {
        return PlanarityResult::NonPlanar;
    }

    // Rotation under construction: per node, a list of blocks (one per
    // biconnected component touching the node) concatenated at the end.
    let mut rotation: Vec<Vec<NodeId>> = vec![Vec::new(); n];

    let bic = biconnected::analyze(graph);
    for comp_edges in &bic.components {
        if comp_edges.len() == 1 {
            // A bridge: both endpoints just get each other appended.
            let e = comp_edges[0];
            rotation[e.a().index()].push(e.b());
            rotation[e.b().index()].push(e.a());
            continue;
        }
        // Build the induced subgraph of this biconnected component.
        let mut nodes: Vec<NodeId> = comp_edges
            .iter()
            .flat_map(|e| [e.a(), e.b()])
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        nodes.sort();
        let to_local: HashMap<NodeId, NodeId> = nodes
            .iter()
            .enumerate()
            .map(|(i, &old)| (old, NodeId::new(i)))
            .collect();
        let mut sub = Graph::with_nodes(nodes.len());
        for e in comp_edges {
            sub.add_edge(to_local[&e.a()], to_local[&e.b()])
                .expect("component edges are valid");
        }
        if sub.node_count() >= 3 && sub.edge_count() > 3 * sub.node_count() - 6 {
            return PlanarityResult::NonPlanar;
        }
        match demoucron(&sub) {
            Some(local_rot) => {
                for (local_idx, rot) in local_rot.into_iter().enumerate() {
                    let global = nodes[local_idx];
                    rotation[global.index()].extend(rot.into_iter().map(|ln| nodes[ln.index()]));
                }
            }
            None => return PlanarityResult::NonPlanar,
        }
    }

    PlanarityResult::Planar(Embedding::from_rotations(rotation))
}

/// A fragment of the not-yet-embedded part of the graph relative to the
/// embedded subgraph H: either a single chord between embedded nodes, or a
/// connected component of unembedded nodes together with its attachment
/// edges.
#[derive(Debug)]
struct Fragment {
    /// Embedded nodes the fragment is attached to.
    attachments: Vec<NodeId>,
    /// Unembedded nodes inside the fragment (empty for a chord).
    inner: Vec<NodeId>,
    /// For chords: the single edge.
    chord: Option<Edge>,
}

/// Runs Demoucron's algorithm on a biconnected graph with >= 3 nodes.
/// Returns the rotation system, or `None` when non-planar.
fn demoucron(g: &Graph) -> Option<Vec<Vec<NodeId>>> {
    debug_assert!(g.node_count() >= 3);
    let cycle = find_cycle(g).expect("a biconnected graph with >=3 nodes has a cycle");

    let mut embedded_node = vec![false; g.node_count()];
    for &v in &cycle {
        embedded_node[v.index()] = true;
    }
    let mut embedded_edges: HashSet<Edge> = HashSet::new();
    for i in 0..cycle.len() {
        embedded_edges.insert(Edge::new(cycle[i], cycle[(i + 1) % cycle.len()]));
    }

    // Faces as directed node cycles: the cycle and its mirror.
    let mut faces: Vec<Vec<NodeId>> = vec![cycle.clone(), {
        let mut rev = cycle.clone();
        rev.reverse();
        rev
    }];

    while embedded_edges.len() < g.edge_count() {
        let fragments = compute_fragments(g, &embedded_node, &embedded_edges);
        debug_assert!(!fragments.is_empty());

        // Admissible faces per fragment.
        let mut choice: Option<(usize, usize)> = None; // (fragment idx, face idx)
        let mut fallback: Option<(usize, usize)> = None;
        for (fi, frag) in fragments.iter().enumerate() {
            let admissible: Vec<usize> = faces
                .iter()
                .enumerate()
                .filter(|(_, face)| frag.attachments.iter().all(|a| face.contains(a)))
                .map(|(i, _)| i)
                .collect();
            match admissible.len() {
                0 => return None, // non-planar
                1 => {
                    choice = Some((fi, admissible[0]));
                    break;
                }
                _ => {
                    if fallback.is_none() {
                        fallback = Some((fi, admissible[0]));
                    }
                }
            }
        }
        let (fi, face_idx) = choice.or(fallback).expect("at least one fragment exists");
        let frag = &fragments[fi];

        // An alpha-path through the fragment between two attachments.
        let path = fragment_path(g, frag, &embedded_node);
        debug_assert!(path.len() >= 2);

        // Record the path as embedded.
        for w in path.windows(2) {
            embedded_edges.insert(Edge::new(w[0], w[1]));
        }
        for &v in &path[1..path.len() - 1] {
            embedded_node[v.index()] = true;
        }

        split_face(&mut faces, face_idx, &path);
    }

    Some(rotation_from_faces(g, &faces))
}

/// Finds any cycle in `g` via DFS, returned as a node sequence.
fn find_cycle(g: &Graph) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack path, 2 done
    for root in g.nodes() {
        if state[root.index()] != 0 {
            continue;
        }
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        state[root.index()] = 1;
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            let neigh = g.neighbors(u);
            if *i < neigh.len() {
                let v = neigh[*i];
                *i += 1;
                if Some(v) == parent[u.index()] {
                    continue;
                }
                if state[v.index()] == 1 {
                    // Found a cycle: walk u back to v.
                    let mut cyc = vec![u];
                    let mut cur = u;
                    while cur != v {
                        cur = parent[cur.index()].expect("path to ancestor exists");
                        cyc.push(cur);
                    }
                    return Some(cyc);
                }
                if state[v.index()] == 0 {
                    parent[v.index()] = Some(u);
                    state[v.index()] = 1;
                    stack.push((v, 0));
                }
            } else {
                state[u.index()] = 2;
                stack.pop();
            }
        }
    }
    None
}

/// Computes the fragments of `g` relative to the embedded subgraph.
fn compute_fragments(
    g: &Graph,
    embedded_node: &[bool],
    embedded_edges: &HashSet<Edge>,
) -> Vec<Fragment> {
    let mut fragments = Vec::new();

    // Chords: unembedded edges between embedded nodes.
    for e in g.sorted_edges() {
        if !embedded_edges.contains(&e)
            && embedded_node[e.a().index()]
            && embedded_node[e.b().index()]
        {
            fragments.push(Fragment {
                attachments: vec![e.a(), e.b()],
                inner: Vec::new(),
                chord: Some(e),
            });
        }
    }

    // Components of unembedded nodes.
    let mut seen = vec![false; g.node_count()];
    for s in g.nodes() {
        if embedded_node[s.index()] || seen[s.index()] {
            continue;
        }
        let mut comp = Vec::new();
        let mut attach: HashSet<NodeId> = HashSet::new();
        let mut queue = VecDeque::from([s]);
        seen[s.index()] = true;
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for &v in g.neighbors(u) {
                if embedded_node[v.index()] {
                    attach.insert(v);
                } else if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        let mut attachments: Vec<NodeId> = attach.into_iter().collect();
        attachments.sort();
        fragments.push(Fragment {
            attachments,
            inner: comp,
            chord: None,
        });
    }

    fragments
}

/// Finds a path through the fragment connecting two distinct attachments.
fn fragment_path(g: &Graph, frag: &Fragment, embedded_node: &[bool]) -> Vec<NodeId> {
    if let Some(chord) = frag.chord {
        return vec![chord.a(), chord.b()];
    }
    debug_assert!(
        frag.attachments.len() >= 2,
        "fragments of a biconnected graph have >= 2 attachments"
    );
    let start = frag.attachments[0];
    let inner: HashSet<NodeId> = frag.inner.iter().copied().collect();

    // BFS from `start` through inner nodes until another attachment is hit.
    let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
    let mut queue = VecDeque::new();
    for &v in g.neighbors(start) {
        if inner.contains(&v) && !prev.contains_key(&v) {
            prev.insert(v, start);
            queue.push_back(v);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if embedded_node[v.index()] && v != start {
                // Reached another attachment: reconstruct.
                let mut path = vec![v, u];
                let mut cur = u;
                while let Some(&p) = prev.get(&cur) {
                    path.push(p);
                    cur = p;
                    if p == start {
                        break;
                    }
                }
                path.reverse();
                return path;
            }
            if inner.contains(&v) && !prev.contains_key(&v) {
                prev.insert(v, u);
                queue.push_back(v);
            }
        }
    }
    unreachable!("biconnected graphs always yield a second attachment");
}

/// Splits `faces[face_idx]` along `path` (whose endpoints lie on the face).
fn split_face(faces: &mut Vec<Vec<NodeId>>, face_idx: usize, path: &[NodeId]) {
    let face = faces.swap_remove(face_idx);
    let a = path[0];
    let b = *path.last().expect("paths are non-empty");
    let pa = face
        .iter()
        .position(|&x| x == a)
        .expect("path endpoint lies on the face");
    let pb = face
        .iter()
        .position(|&x| x == b)
        .expect("path endpoint lies on the face");
    let k = face.len();
    let interior = &path[1..path.len() - 1];

    // Walk from a to b along the face (forward direction).
    let mut seg_ab = Vec::new();
    let mut i = pa;
    loop {
        seg_ab.push(face[i]);
        if i == pb {
            break;
        }
        i = (i + 1) % k;
    }
    // Walk from b to a along the face (forward direction).
    let mut seg_ba = Vec::new();
    let mut i = pb;
    loop {
        seg_ba.push(face[i]);
        if i == pa {
            break;
        }
        i = (i + 1) % k;
    }

    // Face 1: a ->(face)-> b ->(reversed path)-> a.
    let mut f1 = seg_ab;
    f1.extend(interior.iter().rev().copied());
    // Face 2: b ->(face)-> a ->(forward path)-> b.
    let mut f2 = seg_ba;
    f2.extend(interior.iter().copied());

    faces.push(f1);
    faces.push(f2);
}

/// Reconstructs the rotation system from consistently oriented face walks.
fn rotation_from_faces(g: &Graph, faces: &[Vec<NodeId>]) -> Vec<Vec<NodeId>> {
    // succ[v][u] = w  where some face contains the corner u -> v -> w.
    let mut succ: Vec<HashMap<NodeId, NodeId>> = vec![HashMap::new(); g.node_count()];
    for face in faces {
        let k = face.len();
        for i in 0..k {
            let u = face[(i + k - 1) % k];
            let v = face[i];
            let w = face[(i + 1) % k];
            let old = succ[v.index()].insert(u, w);
            debug_assert!(old.is_none(), "each directed edge lies on one face");
        }
    }
    let mut rotation = Vec::with_capacity(g.node_count());
    for v in g.nodes() {
        let map = &succ[v.index()];
        let mut rot = Vec::with_capacity(g.degree(v));
        if let Some(&start) = g.neighbors(v).first() {
            let mut cur = start;
            loop {
                rot.push(cur);
                cur = *map
                    .get(&cur)
                    .expect("corner successor exists for every neighbor");
                if cur == start {
                    break;
                }
                debug_assert!(rot.len() <= g.degree(v), "rotation must be a single cycle");
            }
        }
        debug_assert_eq!(rot.len(), g.degree(v));
        rotation.push(rot);
    }
    rotation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_planar_with_valid_embedding(g: &Graph) {
        match check_planarity(g) {
            PlanarityResult::Planar(emb) => {
                assert!(emb.verify(g), "embedding must satisfy Euler's formula");
            }
            PlanarityResult::NonPlanar => panic!("graph should be planar: {g}"),
        }
    }

    #[test]
    fn trivial_graphs_are_planar() {
        assert_planar_with_valid_embedding(&Graph::new());
        assert_planar_with_valid_embedding(&Graph::with_nodes(5));
        assert_planar_with_valid_embedding(&generators::path(2));
    }

    #[test]
    fn trees_are_planar() {
        assert_planar_with_valid_embedding(&generators::path(10));
        assert_planar_with_valid_embedding(&generators::star(10));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_planar_with_valid_embedding(&generators::random_tree(30, &mut rng));
        }
    }

    #[test]
    fn cycles_and_grids_are_planar() {
        assert_planar_with_valid_embedding(&generators::cycle(3));
        assert_planar_with_valid_embedding(&generators::cycle(12));
        assert_planar_with_valid_embedding(&generators::grid(4, 4));
        assert_planar_with_valid_embedding(&generators::grid(7, 3));
    }

    #[test]
    fn small_complete_graphs() {
        assert_planar_with_valid_embedding(&generators::complete(3));
        assert_planar_with_valid_embedding(&generators::complete(4));
        assert!(!is_planar(&generators::complete(5)));
        assert!(!is_planar(&generators::complete(6)));
    }

    #[test]
    fn k33_is_non_planar() {
        assert!(!is_planar(&generators::complete_bipartite(3, 3)));
        assert!(is_planar(&generators::complete_bipartite(2, 3)));
        assert!(is_planar(&generators::complete_bipartite(2, 10)));
    }

    #[test]
    fn k5_subdivision_is_non_planar() {
        // Subdivide every edge of K5 with one extra node: still non-planar,
        // but passes the Euler bound check, exercising Demoucron proper.
        let k5 = generators::complete(5);
        let mut g = Graph::with_nodes(5);
        for e in k5.sorted_edges() {
            let mid = g.add_node();
            g.add_edge(e.a(), mid).unwrap();
            g.add_edge(mid, e.b()).unwrap();
        }
        assert_eq!(g.node_count(), 15);
        assert!(!is_planar(&g));
    }

    #[test]
    fn k4_with_pendant_trees_is_planar() {
        let mut g = generators::complete(4);
        let t = g.add_node();
        g.add_edge(NodeId::new(0), t).unwrap();
        let t2 = g.add_node();
        g.add_edge(t, t2).unwrap();
        assert_planar_with_valid_embedding(&g);
    }

    #[test]
    fn two_blocks_sharing_a_cut_vertex() {
        // Two K4s glued at node 0.
        let mut g = generators::complete(4);
        let extra: Vec<NodeId> = (0..3).map(|_| g.add_node()).collect();
        let mut block2 = vec![NodeId::new(0)];
        block2.extend(extra);
        for i in 0..4 {
            for j in (i + 1)..4 {
                let _ = g.add_edge(block2[i], block2[j]);
            }
        }
        assert_planar_with_valid_embedding(&g);
    }

    #[test]
    fn wheel_graphs_are_planar() {
        // Wheel = cycle + hub connected to everything.
        for k in 3..8 {
            let mut g = generators::cycle(k);
            let hub = g.add_node();
            for i in 0..k {
                g.add_edge(hub, NodeId::new(i)).unwrap();
            }
            assert_planar_with_valid_embedding(&g);
        }
    }

    #[test]
    fn maximal_planar_triangulation_accepted_and_plus_one_edge_rejected() {
        // Octahedron: 6 nodes, 12 edges, 3n-6 = 12, planar and maximal.
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 1),
                (5, 1),
                (5, 2),
                (5, 3),
                (5, 4),
            ],
        );
        assert_planar_with_valid_embedding(&g);
        let mut g2 = g.clone();
        g2.add_edge(NodeId::new(0), NodeId::new(5)).unwrap();
        assert!(!is_planar(&g2)); // now 13 > 3n-6
    }

    #[test]
    fn petersen_graph_is_non_planar() {
        let g = Graph::from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0),
                (0, 5),
                (1, 6),
                (2, 7),
                (3, 8),
                (4, 9),
                (5, 7),
                (7, 9),
                (9, 6),
                (6, 8),
                (8, 5),
            ],
        );
        assert!(!is_planar(&g));
    }

    #[test]
    fn random_subgraphs_of_grids_are_planar() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..20 {
            let full = generators::grid(5, 5);
            let mut g = Graph::with_nodes(25);
            for e in full.sorted_edges() {
                if rng.gen_bool(0.7) {
                    g.add_edge(e.a(), e.b()).unwrap();
                }
            }
            match check_planarity(&g) {
                PlanarityResult::Planar(emb) => {
                    assert!(emb.verify(&g), "trial {trial}: embedding must verify")
                }
                PlanarityResult::NonPlanar => {
                    panic!("trial {trial}: grid subgraph must be planar")
                }
            }
        }
    }

    #[test]
    fn disconnected_mixture() {
        let mut g = generators::complete(4);
        g.disjoint_union(&generators::cycle(5));
        g.disjoint_union(&generators::star(4));
        assert_planar_with_valid_embedding(&g);
        g.disjoint_union(&generators::complete(5));
        assert!(!is_planar(&g));
    }

    #[test]
    fn dense_planar_plus_random_nonplanar_edges() {
        // Nested triangles (prism-like), planar.
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (0, 3),
                (1, 4),
                (2, 5),
            ],
        );
        assert_planar_with_valid_embedding(&g);
    }
}
