//! Traversal utilities: BFS/DFS orders, connected components, shortest paths.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Breadth-first order of the nodes reachable from `start`.
///
/// # Example
///
/// ```
/// use oneq_graph::{Graph, NodeId, traversal};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 3)]);
/// let order = traversal::bfs_order(&g, NodeId::new(0));
/// assert_eq!(order[0], NodeId::new(0));
/// assert_eq!(order.len(), 4);
/// ```
pub fn bfs_order(graph: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in graph.neighbors(u) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Depth-first (preorder) order of the nodes reachable from `start`.
pub fn dfs_order(graph: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if visited[u.index()] {
            continue;
        }
        visited[u.index()] = true;
        order.push(u);
        // Push in reverse so neighbors are visited in adjacency order.
        for &v in graph.neighbors(u).iter().rev() {
            if !visited[v.index()] {
                stack.push(v);
            }
        }
    }
    order
}

/// Connected components; each component lists its nodes in BFS order, and
/// components appear in order of their smallest node id.
pub fn connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let mut visited = vec![false; graph.node_count()];
    let mut components = Vec::new();
    for s in graph.nodes() {
        if visited[s.index()] {
            continue;
        }
        let comp = bfs_order(graph, s);
        for &n in &comp {
            visited[n.index()] = true;
        }
        components.push(comp);
    }
    components
}

/// Returns `true` when the graph has a single connected component (an empty
/// graph counts as connected).
pub fn is_connected(graph: &Graph) -> bool {
    connected_components(graph).len() <= 1
}

/// BFS distances from `start`; unreachable nodes get `None`.
pub fn bfs_distances(graph: &Graph, start: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &v in graph.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Shortest path between `from` and `to` as a node sequence including both
/// endpoints, or `None` when unreachable.
pub fn shortest_path(graph: &Graph, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; graph.node_count()];
    let mut visited = vec![false; graph.node_count()];
    let mut queue = VecDeque::new();
    visited[from.index()] = true;
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                prev[v.index()] = Some(u);
                if v == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while let Some(p) = prev[cur.index()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// Returns `true` if the graph contains at least one cycle.
pub fn has_cycle(graph: &Graph) -> bool {
    // A forest has exactly n - c edges where c is the number of components.
    let c = connected_components(graph).len();
    graph.edge_count() > graph.node_count().saturating_sub(c)
}

/// Returns `true` if the graph is bipartite (2-colorable).
pub fn is_bipartite(graph: &Graph) -> bool {
    let mut color: Vec<Option<bool>> = vec![None; graph.node_count()];
    for s in graph.nodes() {
        if color[s.index()].is_some() {
            continue;
        }
        color[s.index()] = Some(false);
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            let cu = color[u.index()].expect("queued nodes are colored");
            for &v in graph.neighbors(u) {
                match color[v.index()] {
                    None => {
                        color[v.index()] = Some(!cu);
                        queue.push_back(v);
                    }
                    Some(cv) if cv == cu => return false,
                    Some(_) => {}
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_visits_all_reachable_nodes() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let order = bfs_order(&g, NodeId::new(0));
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], NodeId::new(0));
    }

    #[test]
    fn dfs_visits_all_reachable_nodes() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        let order = dfs_order(&g, NodeId::new(0));
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], NodeId::new(0));
        // Preorder with adjacency order: 0, 1, 3, 4, 2.
        assert_eq!(
            order,
            vec![0, 1, 3, 4, 2]
                .into_iter()
                .map(NodeId::new)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn components_are_split_correctly() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].len(), 2);
        assert_eq!(comps[1].len(), 2);
        assert_eq!(comps[2], vec![NodeId::new(4)]);
        assert!(!is_connected(&g));
        assert!(is_connected(&generators::path(4)));
    }

    #[test]
    fn distances_grow_along_a_path() {
        let g = generators::path(5);
        let dist = bfs_distances(&g, NodeId::new(0));
        assert_eq!(dist, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn unreachable_distance_is_none() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let dist = bfs_distances(&g, NodeId::new(0));
        assert_eq!(dist[2], None);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = generators::cycle(6);
        let p = shortest_path(&g, NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(p.len(), 4); // 0-1-2-3 or 0-5-4-3
        assert_eq!(p[0], NodeId::new(0));
        assert_eq!(p[3], NodeId::new(3));
    }

    #[test]
    fn shortest_path_same_node_is_trivial() {
        let g = generators::path(3);
        assert_eq!(
            shortest_path(&g, NodeId::new(1), NodeId::new(1)),
            Some(vec![NodeId::new(1)])
        );
    }

    #[test]
    fn shortest_path_disconnected_is_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(shortest_path(&g, NodeId::new(0), NodeId::new(3)), None);
    }

    #[test]
    fn cycle_detection() {
        assert!(!has_cycle(&generators::path(5)));
        assert!(has_cycle(&generators::cycle(3)));
        let mut forest = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!has_cycle(&forest));
        forest.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
        forest.add_edge(NodeId::new(3), NodeId::new(0)).unwrap();
        assert!(has_cycle(&forest));
    }

    #[test]
    fn bipartite_detection() {
        assert!(is_bipartite(&generators::path(5)));
        assert!(is_bipartite(&generators::cycle(4)));
        assert!(!is_bipartite(&generators::cycle(5)));
        assert!(!is_bipartite(&generators::complete(3)));
        assert!(is_bipartite(&generators::grid(3, 4)));
    }
}
