//! Maximal planar subgraph extraction.
//!
//! When a single dependency layer of a graph state is non-planar, OneQ's
//! partitioner (paper §4) decomposes it "by repeatedly finding the maximal
//! planar subgraph from its remaining graph", where *maximal* means that
//! adding any remaining edge would break planarity. We implement the
//! standard greedy construction: seed with a spanning forest (always
//! planar), then try the remaining edges one by one and keep each edge that
//! preserves planarity.

use crate::{planarity, Edge, Graph, NodeId};

/// A maximal planar subgraph together with the edges left out.
#[derive(Debug, Clone)]
pub struct MaximalPlanarSubgraph {
    /// The planar subgraph, over the same node ids as the input.
    pub subgraph: Graph,
    /// Input edges that could not be added without breaking planarity.
    pub removed_edges: Vec<Edge>,
}

/// Extracts a maximal planar subgraph of `graph` (same node set).
///
/// The result is *maximal* (no removed edge can be re-added while staying
/// planar) but not necessarily *maximum* (finding the planar subgraph with
/// the most edges is NP-hard, which the paper acknowledges by using the
/// greedy repeated-extraction scheme).
///
/// # Example
///
/// ```
/// use oneq_graph::{generators, mps, planarity};
///
/// let k5 = generators::complete(5);
/// let result = mps::maximal_planar_subgraph(&k5);
/// assert!(planarity::is_planar(&result.subgraph));
/// assert_eq!(result.removed_edges.len(), 1); // K5 minus one edge is planar
/// ```
pub fn maximal_planar_subgraph(graph: &Graph) -> MaximalPlanarSubgraph {
    let n = graph.node_count();
    let mut sub = Graph::with_nodes(n);
    let mut removed = Vec::new();

    // Seed with a spanning forest: forests are always planar.
    let mut visited = vec![false; n];
    let mut deferred: Vec<Edge> = Vec::new();
    for root in graph.nodes() {
        if visited[root.index()] {
            continue;
        }
        visited[root.index()] = true;
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            for &v in graph.neighbors(u) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    sub.add_edge(u, v).expect("forest edges are valid");
                    stack.push(v);
                }
            }
        }
    }
    for e in graph.sorted_edges() {
        if !sub.has_edge(e.a(), e.b()) {
            deferred.push(e);
        }
    }

    // Greedily add the remaining edges.
    for e in deferred {
        sub.add_edge(e.a(), e.b()).expect("edge endpoints valid");
        if !planarity::is_planar(&sub) {
            sub.remove_edge(e.a(), e.b());
            removed.push(e);
        }
    }

    MaximalPlanarSubgraph {
        subgraph: sub,
        removed_edges: removed,
    }
}

/// Decomposes `graph` into a sequence of planar subgraphs that together
/// cover every edge, by repeatedly extracting a maximal planar subgraph
/// from the remaining edges (paper §4, "Graph Planarization").
pub fn planar_decomposition(graph: &Graph) -> Vec<Graph> {
    let mut remaining = graph.clone();
    let mut parts = Vec::new();
    while remaining.edge_count() > 0 {
        let step = maximal_planar_subgraph(&remaining);
        for e in step.subgraph.sorted_edges() {
            remaining.remove_edge(e.a(), e.b());
        }
        parts.push(step.subgraph);
    }
    if parts.is_empty() {
        // Edgeless input: a single trivial part preserves the node set.
        parts.push(Graph::with_nodes(graph.node_count()));
    }
    parts
}

/// Convenience predicate: can `edge` be added to `graph` while keeping it
/// planar? (`graph` itself is assumed planar.)
pub fn edge_addition_keeps_planar(graph: &Graph, a: NodeId, b: NodeId) -> bool {
    let mut g = graph.clone();
    match g.add_edge(a, b) {
        Ok(true) => planarity::is_planar(&g),
        Ok(false) => true, // already present, nothing changes
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planar_input_is_returned_whole() {
        let g = generators::grid(4, 4);
        let r = maximal_planar_subgraph(&g);
        assert_eq!(r.subgraph.edge_count(), g.edge_count());
        assert!(r.removed_edges.is_empty());
    }

    #[test]
    fn k5_loses_exactly_one_edge() {
        let r = maximal_planar_subgraph(&generators::complete(5));
        assert_eq!(r.removed_edges.len(), 1);
        assert!(planarity::is_planar(&r.subgraph));
    }

    #[test]
    fn k33_loses_exactly_one_edge() {
        let r = maximal_planar_subgraph(&generators::complete_bipartite(3, 3));
        assert_eq!(r.removed_edges.len(), 1);
        assert!(planarity::is_planar(&r.subgraph));
    }

    #[test]
    fn result_is_maximal() {
        let g = generators::complete(6);
        let r = maximal_planar_subgraph(&g);
        assert!(planarity::is_planar(&r.subgraph));
        for e in &r.removed_edges {
            assert!(
                !edge_addition_keeps_planar(&r.subgraph, e.a(), e.b()),
                "removed edge {e} could be re-added: not maximal"
            );
        }
    }

    #[test]
    fn k6_keeps_euler_bound_edges() {
        // K6 has 15 edges; a maximal planar subgraph on 6 nodes has at most
        // 3*6-6 = 12 edges, and the greedy always reaches a triangulation
        // from a complete graph.
        let r = maximal_planar_subgraph(&generators::complete(6));
        assert_eq!(r.subgraph.edge_count(), 12);
        assert_eq!(r.removed_edges.len(), 3);
    }

    #[test]
    fn decomposition_covers_all_edges() {
        let g = generators::complete(7);
        let parts = planar_decomposition(&g);
        assert!(parts.len() >= 2);
        let total: usize = parts.iter().map(Graph::edge_count).sum();
        assert_eq!(total, g.edge_count());
        for p in &parts {
            assert!(planarity::is_planar(p));
            assert_eq!(p.node_count(), g.node_count());
        }
    }

    #[test]
    fn decomposition_of_planar_graph_is_single_part() {
        let g = generators::grid(3, 5);
        let parts = planar_decomposition(&g);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].edge_count(), g.edge_count());
    }

    #[test]
    fn decomposition_of_edgeless_graph() {
        let g = Graph::with_nodes(4);
        let parts = planar_decomposition(&g);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].node_count(), 4);
    }

    #[test]
    fn random_dense_graphs_decompose_validly() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::gnm(12, 40, &mut rng);
        let parts = planar_decomposition(&g);
        let total: usize = parts.iter().map(Graph::edge_count).sum();
        assert_eq!(total, g.edge_count());
        for p in &parts {
            assert!(planarity::is_planar(p));
        }
    }
}
