//! Biconnectivity analysis: bridges, articulation points and biconnected
//! components (Hopcroft–Tarjan lowlink algorithm, iterative form).
//!
//! The fusion mapper (paper §6) traverses edges in a *cycle-prioritized*
//! breadth-first order: edges that participate in cycles are mapped before
//! tree edges. An edge lies on a cycle exactly when it is **not** a bridge,
//! so the mapper consumes [`bridges`] / [`cycle_edges`] from this module.

use crate::{Edge, Graph, NodeId};
use std::collections::HashSet;

/// The result of a single biconnectivity sweep over a graph.
#[derive(Debug, Clone)]
pub struct Biconnectivity {
    /// Edges whose removal disconnects their component.
    pub bridges: HashSet<Edge>,
    /// Nodes whose removal disconnects their component.
    pub articulation_points: HashSet<NodeId>,
    /// Edge sets of the biconnected components (bridges form singleton
    /// components).
    pub components: Vec<Vec<Edge>>,
}

/// Runs the Hopcroft–Tarjan algorithm and returns bridges, articulation
/// points and biconnected components in one pass.
///
/// # Example
///
/// ```
/// use oneq_graph::{Graph, biconnected};
///
/// // Two triangles sharing node 2: node 2 is an articulation point,
/// // there are no bridges, and there are two biconnected components.
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
/// let b = biconnected::analyze(&g);
/// assert!(b.bridges.is_empty());
/// assert_eq!(b.articulation_points.len(), 1);
/// assert_eq!(b.components.len(), 2);
/// ```
pub fn analyze(graph: &Graph) -> Biconnectivity {
    let n = graph.node_count();
    let mut disc = vec![usize::MAX; n]; // discovery time
    let mut low = vec![usize::MAX; n]; // lowlink
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut timer = 0usize;
    let mut bridges = HashSet::new();
    let mut articulation = HashSet::new();
    let mut components: Vec<Vec<Edge>> = Vec::new();
    let mut edge_stack: Vec<Edge> = Vec::new();

    // Iterative DFS frame: (node, index into neighbor list).
    for root in graph.nodes() {
        if disc[root.index()] != usize::MAX {
            continue;
        }
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        disc[root.index()] = timer;
        low[root.index()] = timer;
        timer += 1;
        let mut root_children = 0usize;

        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            let neighbors = graph.neighbors(u);
            if *i < neighbors.len() {
                let v = neighbors[*i];
                *i += 1;
                if disc[v.index()] == usize::MAX {
                    // Tree edge.
                    parent[v.index()] = Some(u);
                    edge_stack.push(Edge::new(u, v));
                    if u == root {
                        root_children += 1;
                    }
                    disc[v.index()] = timer;
                    low[v.index()] = timer;
                    timer += 1;
                    stack.push((v, 0));
                } else if Some(v) != parent[u.index()] && disc[v.index()] < disc[u.index()] {
                    // Back edge (counted once, toward the ancestor).
                    edge_stack.push(Edge::new(u, v));
                    low[u.index()] = low[u.index()].min(disc[v.index()]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p.index()] = low[p.index()].min(low[u.index()]);
                    if low[u.index()] >= disc[p.index()] {
                        // p separates u's subtree: pop one biconnected
                        // component ending with edge (p, u).
                        if p != root || root_children > 1 || low[u.index()] > disc[p.index()] {
                            // Articulation unless p is a root with one child
                            // (bridge case still recorded below).
                        }
                        let mut comp = Vec::new();
                        let sep = Edge::new(p, u);
                        while let Some(e) = edge_stack.pop() {
                            comp.push(e);
                            if e == sep {
                                break;
                            }
                        }
                        if !comp.is_empty() {
                            if comp.len() == 1 {
                                bridges.insert(comp[0]);
                            }
                            components.push(comp);
                        }
                        if p != root {
                            articulation.insert(p);
                        }
                    }
                    if low[u.index()] > disc[p.index()] {
                        bridges.insert(Edge::new(p, u));
                    }
                }
            }
        }
        if root_children > 1 {
            articulation.insert(root);
        }
    }

    Biconnectivity {
        bridges,
        articulation_points: articulation,
        components,
    }
}

/// Edges whose removal disconnects their component.
pub fn bridges(graph: &Graph) -> HashSet<Edge> {
    analyze(graph).bridges
}

/// Edges that participate in at least one cycle (the non-bridge edges).
pub fn cycle_edges(graph: &Graph) -> HashSet<Edge> {
    let b = bridges(graph);
    graph.edges().filter(|e| !b.contains(e)).collect()
}

/// Node sets of the biconnected components (derived from the edge sets;
/// isolated nodes are not listed).
pub fn biconnected_node_sets(graph: &Graph) -> Vec<Vec<NodeId>> {
    analyze(graph)
        .components
        .iter()
        .map(|comp| {
            let mut nodes: Vec<NodeId> = comp
                .iter()
                .flat_map(|e| [e.a(), e.b()])
                .collect::<HashSet<_>>()
                .into_iter()
                .collect();
            nodes.sort();
            nodes
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn tree_edges_are_all_bridges() {
        let g = generators::path(6);
        let b = analyze(&g);
        assert_eq!(b.bridges.len(), 5);
        assert_eq!(b.components.len(), 5);
        // All interior nodes are articulation points.
        assert_eq!(b.articulation_points.len(), 4);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = generators::cycle(7);
        let b = analyze(&g);
        assert!(b.bridges.is_empty());
        assert!(b.articulation_points.is_empty());
        assert_eq!(b.components.len(), 1);
        assert_eq!(b.components[0].len(), 7);
    }

    #[test]
    fn lollipop_has_one_bridge() {
        // Triangle 0-1-2 plus a tail 2-3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let b = analyze(&g);
        assert_eq!(b.bridges.len(), 1);
        assert!(b
            .bridges
            .contains(&Edge::new(NodeId::new(2), NodeId::new(3))));
        assert_eq!(b.articulation_points.len(), 1);
        assert!(b.articulation_points.contains(&NodeId::new(2)));
        assert_eq!(b.components.len(), 2);
    }

    #[test]
    fn two_triangles_sharing_a_node() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let b = analyze(&g);
        assert!(b.bridges.is_empty());
        assert_eq!(b.articulation_points, HashSet::from([NodeId::new(2)]));
        assert_eq!(b.components.len(), 2);
        for comp in &b.components {
            assert_eq!(comp.len(), 3);
        }
    }

    #[test]
    fn cycle_edges_excludes_tail() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let ce = cycle_edges(&g);
        assert_eq!(ce.len(), 3);
        assert!(!ce.contains(&Edge::new(NodeId::new(2), NodeId::new(3))));
    }

    #[test]
    fn disconnected_graph_is_analyzed_per_component() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]);
        let b = analyze(&g);
        assert_eq!(b.bridges.len(), 2);
        assert_eq!(b.components.len(), 3);
    }

    #[test]
    fn complete_graph_is_one_component() {
        let g = generators::complete(5);
        let b = analyze(&g);
        assert!(b.bridges.is_empty());
        assert!(b.articulation_points.is_empty());
        assert_eq!(b.components.len(), 1);
        assert_eq!(b.components[0].len(), 10);
    }

    #[test]
    fn node_sets_cover_components() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let sets = biconnected_node_sets(&g);
        assert_eq!(sets.len(), 2);
        for s in sets {
            assert_eq!(s.len(), 3);
            assert!(s.contains(&NodeId::new(2)));
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let b = analyze(&Graph::new());
        assert!(b.components.is_empty());
        let b = analyze(&Graph::with_nodes(3));
        assert!(b.components.is_empty());
        assert!(b.bridges.is_empty());
    }

    #[test]
    fn grid_has_no_bridges() {
        let g = generators::grid(3, 3);
        assert!(bridges(&g).is_empty());
        assert_eq!(cycle_edges(&g).len(), g.edge_count());
    }
}
