//! Combinatorial planar embeddings (rotation systems) and face traversal.
//!
//! A *rotation system* assigns to every node a cyclic order of its incident
//! edges. A rotation system is a **planar** embedding exactly when the number
//! of faces it induces satisfies Euler's formula `n - m + f = 1 + c`.
//! OneQ's fusion-graph generation (paper §5) consumes the clockwise edge
//! orders stored here to keep fusion graphs planar, and the planarity-aware
//! mapper (paper §6) follows them when reserving grid positions.

use crate::{Graph, NodeId};
use std::collections::HashMap;

/// A face of an embedded graph, stored as a directed closed walk.
///
/// The walk lists each node once per visit; the edge from the last node back
/// to the first is implicit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Face {
    nodes: Vec<NodeId>,
}

impl Face {
    /// Creates a face from a directed node walk.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        Face { nodes }
    }

    /// The nodes of the walk in traversal order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of edge traversals on the boundary (walk length).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for a degenerate empty walk.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` if `n` lies on this face's boundary.
    pub fn contains(&self, n: NodeId) -> bool {
        self.nodes.contains(&n)
    }
}

/// A rotation system: for each node, the cyclic order of its neighbors.
///
/// # Example
///
/// ```
/// use oneq_graph::{Embedding, Graph, NodeId};
///
/// // A triangle has one valid embedding (up to reflection): 2 faces.
/// let g = oneq_graph::generators::cycle(3);
/// let emb = Embedding::from_rotations(vec![
///     vec![NodeId::new(1), NodeId::new(2)],
///     vec![NodeId::new(2), NodeId::new(0)],
///     vec![NodeId::new(0), NodeId::new(1)],
/// ]);
/// assert_eq!(emb.faces(&g).len(), 2);
/// assert!(emb.verify(&g));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Embedding {
    order: Vec<Vec<NodeId>>,
}

impl Embedding {
    /// Builds an embedding from explicit per-node neighbor orders.
    pub fn from_rotations(order: Vec<Vec<NodeId>>) -> Self {
        Embedding { order }
    }

    /// The default embedding that uses each node's adjacency-list order.
    ///
    /// This is *not* necessarily planar; it is the starting point for
    /// algorithms and a valid embedding for forests, paths and cycles.
    pub fn from_adjacency(graph: &Graph) -> Self {
        Embedding {
            order: graph.nodes().map(|n| graph.neighbors(n).to_vec()).collect(),
        }
    }

    /// Number of nodes covered by this embedding.
    pub fn node_count(&self) -> usize {
        self.order.len()
    }

    /// Cyclic neighbor order around `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn rotation(&self, n: NodeId) -> &[NodeId] {
        &self.order[n.index()]
    }

    /// The neighbor that follows `prev` in the cyclic order around `n`, or
    /// `None` if `prev` is not a neighbor of `n`.
    pub fn next_after(&self, n: NodeId, prev: NodeId) -> Option<NodeId> {
        let rot = &self.order[n.index()];
        let pos = rot.iter().position(|&x| x == prev)?;
        Some(rot[(pos + 1) % rot.len()])
    }

    /// The neighbor that precedes `next` in the cyclic order around `n`, or
    /// `None` if `next` is not a neighbor of `n`.
    pub fn prev_before(&self, n: NodeId, next: NodeId) -> Option<NodeId> {
        let rot = &self.order[n.index()];
        let pos = rot.iter().position(|&x| x == next)?;
        Some(rot[(pos + rot.len() - 1) % rot.len()])
    }

    /// Traces all faces induced by this rotation system.
    ///
    /// Faces are the orbits of the next-edge map
    /// `(u, v) -> (v, rotation_v.next_after(u))` over directed edges.
    ///
    /// # Panics
    ///
    /// Panics if the embedding does not cover every node of `graph` or the
    /// rotations are not permutations of the neighbor sets.
    pub fn faces(&self, graph: &Graph) -> Vec<Face> {
        assert_eq!(
            self.order.len(),
            graph.node_count(),
            "embedding must cover every node"
        );
        let mut visited: HashMap<(NodeId, NodeId), bool> = HashMap::new();
        for e in graph.edges() {
            visited.insert((e.a(), e.b()), false);
            visited.insert((e.b(), e.a()), false);
        }
        let mut darts: Vec<(NodeId, NodeId)> = visited.keys().copied().collect();
        darts.sort();
        let mut faces = Vec::new();
        for start in darts {
            if visited[&start] {
                continue;
            }
            let mut walk = Vec::new();
            let (mut u, mut v) = start;
            loop {
                *visited
                    .get_mut(&(u, v))
                    .expect("dart exists by construction") = true;
                walk.push(u);
                let w = self
                    .next_after(v, u)
                    .expect("rotation must contain every neighbor");
                u = v;
                v = w;
                if (u, v) == start {
                    break;
                }
            }
            faces.push(Face::new(walk));
        }
        faces
    }

    /// Checks that this embedding is a *planar* embedding of `graph`:
    /// every rotation is a permutation of the node's neighbor set and the
    /// face-orbit count satisfies Euler's formula per component, i.e.
    /// `n - m + f = 2c` (each component's outer face is its own orbit).
    pub fn verify(&self, graph: &Graph) -> bool {
        if self.order.len() != graph.node_count() {
            return false;
        }
        for n in graph.nodes() {
            let mut rot: Vec<NodeId> = self.order[n.index()].clone();
            let mut adj: Vec<NodeId> = graph.neighbors(n).to_vec();
            rot.sort();
            adj.sort();
            if rot != adj {
                return false;
            }
        }
        let c = crate::traversal::connected_components(graph).len();
        let f = self.faces(graph).len();
        let isolated = graph.nodes().filter(|&n| graph.degree(n) == 0).count();
        // Isolated nodes induce no face orbit; they sit inside some face.
        let n = graph.node_count() - isolated;
        let c_eff = c - isolated;
        let m = graph.edge_count();
        if n == 0 {
            return m == 0;
        }
        n + f == m + 2 * c_eff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_default_embedding_has_one_face() {
        let g = generators::path(5);
        let emb = Embedding::from_adjacency(&g);
        assert_eq!(emb.faces(&g).len(), 1);
        assert!(emb.verify(&g));
    }

    #[test]
    fn cycle_default_embedding_has_two_faces() {
        let g = generators::cycle(6);
        let emb = Embedding::from_adjacency(&g);
        assert_eq!(emb.faces(&g).len(), 2);
        assert!(emb.verify(&g));
    }

    #[test]
    fn tree_any_rotation_is_planar() {
        let g = generators::star(6);
        let mut order: Vec<Vec<NodeId>> = g.nodes().map(|n| g.neighbors(n).to_vec()).collect();
        order[0].reverse(); // any hub rotation works for a tree
        let emb = Embedding::from_rotations(order);
        assert_eq!(emb.faces(&g).len(), 1);
        assert!(emb.verify(&g));
    }

    #[test]
    fn k4_planar_rotation_verifies() {
        // K4 embedding: outer triangle 0-1-2 with 3 in the center.
        let g = generators::complete(4);
        let n = |i| NodeId::new(i);
        let emb = Embedding::from_rotations(vec![
            vec![n(1), n(3), n(2)],
            vec![n(2), n(3), n(0)],
            vec![n(0), n(3), n(1)],
            vec![n(0), n(1), n(2)],
        ]);
        assert_eq!(emb.faces(&g).len(), 4);
        assert!(emb.verify(&g));
    }

    #[test]
    fn k4_bad_rotation_fails_euler() {
        // Swapping one rotation makes the system toroidal (fewer faces).
        let g = generators::complete(4);
        let n = |i| NodeId::new(i);
        let emb = Embedding::from_rotations(vec![
            vec![n(1), n(2), n(3)],
            vec![n(2), n(3), n(0)],
            vec![n(0), n(3), n(1)],
            vec![n(0), n(1), n(2)],
        ]);
        assert!(!emb.verify(&g));
    }

    #[test]
    fn rotation_mismatching_neighbors_fails_verify() {
        let g = generators::path(3);
        let emb = Embedding::from_rotations(vec![
            vec![NodeId::new(1)],
            vec![NodeId::new(0)], // missing neighbor 2
            vec![NodeId::new(1)],
        ]);
        assert!(!emb.verify(&g));
    }

    #[test]
    fn next_after_and_prev_before_are_inverse() {
        let g = generators::star(5);
        let emb = Embedding::from_adjacency(&g);
        let hub = NodeId::new(0);
        for &u in g.neighbors(hub) {
            let w = emb
                .next_after(hub, u)
                .expect("adjacency-derived rotation must contain every hub neighbor");
            assert_eq!(emb.prev_before(hub, w), Some(u));
        }
        assert_eq!(emb.next_after(hub, NodeId::new(99)), None);
    }

    #[test]
    fn isolated_nodes_are_tolerated() {
        let mut g = generators::path(3);
        g.add_node();
        let emb = Embedding::from_adjacency(&g);
        assert!(emb.verify(&g));
    }

    #[test]
    fn face_contains_and_len() {
        let g = generators::cycle(4);
        let emb = Embedding::from_adjacency(&g);
        let faces = emb.faces(&g);
        for f in &faces {
            assert_eq!(f.len(), 4);
            assert!(f.contains(NodeId::new(0)));
            assert!(!f.is_empty());
        }
    }

    #[test]
    fn two_by_two_grid_is_a_quadrilateral() {
        // A 2x2 grid is a 4-cycle; all nodes have degree 2, so the
        // adjacency-order rotation is the unique embedding.
        let g = generators::grid(2, 2);
        let emb = Embedding::from_adjacency(&g);
        assert!(emb.verify(&g));
        assert_eq!(emb.faces(&g).len(), 2);
    }
}
