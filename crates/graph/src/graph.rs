//! Core undirected graph type.

use std::collections::HashSet;
use std::fmt;

/// Identifier of a node inside a [`Graph`].
///
/// Node ids are dense indices assigned in insertion order; they are only
/// meaningful relative to the graph that created them.
///
/// # Example
///
/// ```
/// use oneq_graph::Graph;
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// assert_eq!(a.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// This does not validate that the index exists in any particular graph;
    /// use [`Graph::contains_node`] for that.
    pub fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the raw index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

/// An undirected edge between two nodes.
///
/// Edges are stored in normalized form: `a <= b`. Two `Edge` values compare
/// equal regardless of the endpoint order they were built with.
///
/// # Example
///
/// ```
/// use oneq_graph::{Edge, NodeId};
///
/// let e1 = Edge::new(NodeId::new(3), NodeId::new(1));
/// let e2 = Edge::new(NodeId::new(1), NodeId::new(3));
/// assert_eq!(e1, e2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    a: NodeId,
    b: NodeId,
}

impl Edge {
    /// Creates a normalized edge between `a` and `b`.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        if a <= b {
            Edge { a, b }
        } else {
            Edge { a: b, b: a }
        }
    }

    /// The smaller endpoint.
    pub fn a(self) -> NodeId {
        self.a
    }

    /// The larger endpoint.
    pub fn b(self) -> NodeId {
        self.b
    }

    /// Returns the endpoint opposite to `n`, or `None` when `n` is not an
    /// endpoint of this edge.
    pub fn other(self, n: NodeId) -> Option<NodeId> {
        if n == self.a {
            Some(self.b)
        } else if n == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Returns both endpoints as a tuple `(a, b)` with `a <= b`.
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.a, self.b)
    }
}

/// Errors returned by graph mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// An operation referenced a node id not present in the graph.
    InvalidNode(NodeId),
    /// An edge insertion would create a self-loop, which simple graphs
    /// disallow.
    SelfLoop(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidNode(n) => write!(f, "node {n} does not exist in the graph"),
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A simple undirected graph (no self-loops, no parallel edges) with dense
/// node ids.
///
/// This is the workhorse structure of the compiler: graph states, fusion
/// graphs and coupling graphs are all `Graph`s (plus side tables owned by the
/// respective crates). Neighbor lists preserve insertion order, which the
/// embedding code relies on for deterministic output.
///
/// # Example
///
/// ```
/// use oneq_graph::Graph;
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b).unwrap();
/// g.add_edge(b, c).unwrap();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.degree(b), 2);
/// assert!(g.has_edge(a, b));
/// assert!(!g.has_edge(a, c));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edges: HashSet<Edge>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: HashSet::new(),
        }
    }

    /// Builds a graph from an edge list over nodes `0..n`.
    ///
    /// `n` must be at least one greater than the largest endpoint index.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node `>= n` or is a self-loop.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::with_nodes(n);
        for &(a, b) in edges {
            g.add_edge(NodeId::new(a), NodeId::new(b))
                .expect("edge endpoints must be < n and distinct");
        }
        g
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.adj.len());
        self.adj.push(Vec::new());
        id
    }

    /// Adds `k` new isolated nodes and returns their ids.
    pub fn add_nodes(&mut self, k: usize) -> Vec<NodeId> {
        (0..k).map(|_| self.add_node()).collect()
    }

    /// Returns `true` if `n` is a valid node of this graph.
    pub fn contains_node(&self, n: NodeId) -> bool {
        n.index() < self.adj.len()
    }

    /// Inserts the undirected edge `(a, b)`.
    ///
    /// Returns `Ok(true)` if the edge was newly inserted and `Ok(false)` if
    /// it was already present.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidNode`] when either endpoint does not
    /// exist and [`GraphError::SelfLoop`] when `a == b`.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool, GraphError> {
        if !self.contains_node(a) {
            return Err(GraphError::InvalidNode(a));
        }
        if !self.contains_node(b) {
            return Err(GraphError::InvalidNode(b));
        }
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        let edge = Edge::new(a, b);
        if !self.edges.insert(edge) {
            return Ok(false);
        }
        self.adj[a.index()].push(b);
        self.adj[b.index()].push(a);
        Ok(true)
    }

    /// Removes the undirected edge `(a, b)` if present; returns whether an
    /// edge was removed.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let edge = Edge::new(a, b);
        if !self.edges.remove(&edge) {
            return false;
        }
        self.adj[a.index()].retain(|&x| x != b);
        self.adj[b.index()].retain(|&x| x != a);
        true
    }

    /// Returns `true` if the edge `(a, b)` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.edges.contains(&Edge::new(a, b))
    }

    /// Neighbors of `n` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of this graph.
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.adj[n.index()]
    }

    /// Degree (number of incident edges) of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a node of this graph.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.index()].len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Iterator over all node ids, in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId::new)
    }

    /// Iterator over all edges in an unspecified but deterministic-per-build
    /// order. Use [`Graph::sorted_edges`] when a stable order is required.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// All edges sorted by endpoints; use for deterministic iteration.
    pub fn sorted_edges(&self) -> Vec<Edge> {
        let mut v: Vec<Edge> = self.edges.iter().copied().collect();
        v.sort();
        v
    }

    /// The maximum degree over all nodes, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Builds the subgraph induced by `nodes`.
    ///
    /// Returns the new graph together with the mapping from old node ids to
    /// new node ids (position `i` of `nodes` becomes node `i`).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains an invalid or duplicate id.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut map = vec![usize::MAX; self.node_count()];
        for (new, &old) in nodes.iter().enumerate() {
            assert!(self.contains_node(old), "invalid node {old}");
            assert!(map[old.index()] == usize::MAX, "duplicate node {old}");
            map[old.index()] = new;
        }
        let mut g = Graph::with_nodes(nodes.len());
        for edge in self.sorted_edges() {
            let (a, b) = edge.endpoints();
            let (na, nb) = (map[a.index()], map[b.index()]);
            if na != usize::MAX && nb != usize::MAX {
                g.add_edge(NodeId::new(na), NodeId::new(nb))
                    .expect("induced edge endpoints are valid by construction");
            }
        }
        (g, nodes.to_vec())
    }

    /// Merges `other` into `self` as a disjoint union.
    ///
    /// Returns the offset to add to `other`'s node indices to find them in
    /// `self`.
    pub fn disjoint_union(&mut self, other: &Graph) -> usize {
        let offset = self.node_count();
        for _ in 0..other.node_count() {
            self.add_node();
        }
        for edge in other.sorted_edges() {
            let (a, b) = edge.endpoints();
            self.add_edge(
                NodeId::new(a.index() + offset),
                NodeId::new(b.index() + offset),
            )
            .expect("offset edge endpoints are valid by construction");
        }
        offset
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.node_count(), self.edge_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_nodes_or_edges() {
        let g = Graph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
    }

    #[test]
    fn add_node_assigns_dense_ids() {
        let mut g = Graph::new();
        assert_eq!(g.add_node().index(), 0);
        assert_eq!(g.add_node().index(), 1);
        assert_eq!(g.add_node().index(), 2);
    }

    #[test]
    fn add_edge_is_undirected_and_idempotent() {
        let mut g = Graph::with_nodes(2);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        assert_eq!(g.add_edge(a, b), Ok(true));
        assert_eq!(g.add_edge(b, a), Ok(false));
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, a));
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut g = Graph::with_nodes(1);
        let a = NodeId::new(0);
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn invalid_node_is_rejected() {
        let mut g = Graph::with_nodes(1);
        let bad = NodeId::new(7);
        assert_eq!(
            g.add_edge(NodeId::new(0), bad),
            Err(GraphError::InvalidNode(bad))
        );
    }

    #[test]
    fn remove_edge_updates_adjacency() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(g.remove_edge(NodeId::new(1), NodeId::new(0)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert_eq!(g.degree(NodeId::new(1)), 1);
        assert!(!g.remove_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn edge_normalizes_endpoints() {
        let e = Edge::new(NodeId::new(5), NodeId::new(2));
        assert_eq!(e.a().index(), 2);
        assert_eq!(e.b().index(), 5);
        assert_eq!(e.other(NodeId::new(2)), Some(NodeId::new(5)));
        assert_eq!(e.other(NodeId::new(5)), Some(NodeId::new(2)));
        assert_eq!(e.other(NodeId::new(9)), None);
    }

    #[test]
    fn degree_counts_incident_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(NodeId::new(0)), 3);
        assert_eq!(g.degree(NodeId::new(1)), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (sub, map) = g.induced_subgraph(&[NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2); // 0-1, 1-2; edge 4-0 dropped
        assert_eq!(map.len(), 3);
        assert!(sub.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(sub.has_edge(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn disjoint_union_offsets_ids() {
        let mut g = Graph::from_edges(2, &[(0, 1)]);
        let h = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let offset = g.disjoint_union(&h);
        assert_eq!(offset, 2);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId::new(2), NodeId::new(3)));
        assert!(g.has_edge(NodeId::new(3), NodeId::new(4)));
    }

    #[test]
    fn sorted_edges_is_deterministic() {
        let g = Graph::from_edges(4, &[(2, 3), (0, 1), (1, 2)]);
        let e: Vec<(usize, usize)> = g
            .sorted_edges()
            .iter()
            .map(|e| (e.a().index(), e.b().index()))
            .collect();
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn display_formats() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        assert_eq!(format!("{g}"), "Graph(n=2, m=1)");
        assert_eq!(format!("{}", NodeId::new(3)), "n3");
        assert_eq!(
            format!("{}", Edge::new(NodeId::new(1), NodeId::new(0))),
            "(n0-n1)"
        );
    }
}
