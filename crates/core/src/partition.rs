//! Graph partition & scheduling (paper §4).
//!
//! The graph state is too large for one batch of physical layers, so the
//! partitioner groups the causal-flow *dependency layers* (Lemma 1) into
//! *partitions*, each later scheduled onto a dynamically allocated run of
//! physical layers. Grouping is coarse-grained: a partition may span
//! several dependency layers (delay lines tolerate the mismatch), which
//! preserves local geometry and improves layout compactness. For small
//! resource states a planarity check gates the grouping, and a
//! single non-planar layer is reduced to its maximal planar subgraph with
//! the leftover edges deferred to inter-layer shuffling.

use oneq_graph::{mps, planarity, Graph, NodeId};
use oneq_hardware::ResourceKind;
use oneq_mbqc::{flow, Pattern};

/// Tuning knobs for the partitioner.
#[derive(Debug, Clone, Copy)]
pub struct PartitionOptions {
    /// Maximum consecutive dependency layers per partition (bounded by the
    /// delay-line reach; paper §4).
    pub max_dependency_layers: usize,
    /// Soft budget of fusion-graph nodes per partition; `None` disables
    /// the capacity check. Usually set to a fraction of the layer area.
    pub capacity_hint: Option<usize>,
    /// Enforce that every partition's subgraph is planar (required for
    /// small resource states; paper §4 "Graph Planarization").
    pub enforce_planarity: bool,
    /// Resource state used to estimate synthesis cost.
    pub resource_kind: ResourceKind,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            max_dependency_layers: 8,
            capacity_hint: None,
            enforce_planarity: true,
            resource_kind: ResourceKind::LINE3,
        }
    }
}

/// One partition: a set of graph-state nodes scheduled together.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Pattern node ids in this partition (local index `i` of
    /// [`Partition::subgraph`] is `global_nodes[i]`).
    pub global_nodes: Vec<NodeId>,
    /// Induced subgraph over the partition's nodes (possibly missing edges
    /// removed by planarization — those are deferred to cross edges).
    pub subgraph: Graph,
    /// Degree of each local node in the **full** graph state: node
    /// synthesis must provision fusion slots for cross-partition edges too.
    pub full_degree: Vec<usize>,
}

impl Partition {
    /// Estimated fusion-graph node count for this partition.
    pub fn synthesis_cost(&self, kind: ResourceKind) -> usize {
        self.full_degree.iter().map(|&d| kind.chain_nodes(d)).sum()
    }
}

/// Output of the partitioning stage.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// Partitions in executability order.
    pub partitions: Vec<Partition>,
    /// Graph-state edges not contained in any partition subgraph: edges
    /// between partitions plus edges dropped by planarization. They are
    /// realized later by inter-layer shuffling (paper §6).
    pub cross_edges: Vec<(NodeId, NodeId)>,
}

impl PartitionResult {
    /// Total nodes across partitions (equals the pattern's node count).
    pub fn node_count(&self) -> usize {
        self.partitions.iter().map(|p| p.global_nodes.len()).sum()
    }
}

/// Partitions `pattern`'s graph state.
///
/// Dependency layers are computed per Lemma 1 (outputs form a final
/// pseudo-layer so they are scheduled too), then grouped greedily in
/// executability order subject to the layer-count limit, the capacity
/// hint, and (optionally) planarity of the accumulated subgraph.
///
/// # Example
///
/// ```
/// use oneq_circuit::benchmarks;
/// use oneq_mbqc::translate;
/// use oneq::partition::{partition, PartitionOptions};
///
/// let pattern = translate::from_circuit(&benchmarks::qft(4));
/// let result = partition(&pattern, &PartitionOptions::default());
/// assert!(!result.partitions.is_empty());
/// assert_eq!(result.node_count(), pattern.node_count());
/// ```
pub fn partition(pattern: &Pattern, options: &PartitionOptions) -> PartitionResult {
    // Scheduled layers: executability order with measurements postponed to
    // keep wires layer-monotone (see `oneq_mbqc::flow::scheduled_layers`).
    let mut layers = flow::scheduled_layers(pattern);
    let outputs: Vec<NodeId> = pattern.outputs().to_vec();
    if !outputs.is_empty() {
        layers.push(outputs);
    }
    if layers.is_empty() {
        return PartitionResult {
            partitions: Vec::new(),
            cross_edges: Vec::new(),
        };
    }

    let full_graph = pattern.graph();
    let mut partitions: Vec<Partition> = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();
    let mut current_layers = 0usize;

    let flush = |current: &mut Vec<NodeId>, partitions: &mut Vec<Partition>| {
        if current.is_empty() {
            return;
        }
        partitions.push(build_partition(pattern, current, options.enforce_planarity));
        current.clear();
    };

    for layer in layers {
        let fits = |acc: &[NodeId], extra: &[NodeId]| -> bool {
            let mut nodes: Vec<NodeId> = acc.to_vec();
            nodes.extend_from_slice(extra);
            if let Some(cap) = options.capacity_hint {
                let cost: usize = nodes
                    .iter()
                    .map(|&n| options.resource_kind.chain_nodes(full_graph.degree(n)))
                    .sum();
                if cost > cap {
                    return false;
                }
            }
            if options.enforce_planarity {
                let (sub, _) = full_graph.induced_subgraph(&nodes);
                if !planarity::is_planar(&sub) {
                    return false;
                }
            }
            true
        };

        let layer_ok = current_layers < options.max_dependency_layers
            && !current.is_empty()
            && fits(&current, &layer);
        if layer_ok {
            current.extend_from_slice(&layer);
            current_layers += 1;
            continue;
        }
        // Close the running partition and start fresh with this layer.
        // A single layer that is itself non-planar keeps all of its nodes
        // but only a maximal planar subgraph of its edges — the trimming
        // happens inside build_partition (paper §4, graph planarization).
        flush(&mut current, &mut partitions);
        current = layer;
        current_layers = 1;
    }
    flush(&mut current, &mut partitions);

    // Cross edges: every full-graph edge not inside some partition. The
    // in-partition edge set is a sorted vector probed by binary search —
    // deterministic by construction (no hashed containers on this path)
    // and cache-friendly.
    let mut cross_edges = Vec::new();
    let mut in_partition_edges: Vec<(usize, usize)> = Vec::new();
    for p in &partitions {
        for e in p.subgraph.sorted_edges() {
            let (a, b) = (p.global_nodes[e.a().index()], p.global_nodes[e.b().index()]);
            let key = if a <= b {
                (a.index(), b.index())
            } else {
                (b.index(), a.index())
            };
            in_partition_edges.push(key);
        }
    }
    in_partition_edges.sort_unstable();
    for e in full_graph.sorted_edges() {
        let key = (e.a().index(), e.b().index());
        if in_partition_edges.binary_search(&key).is_err() {
            cross_edges.push((e.a(), e.b()));
        }
    }

    PartitionResult {
        partitions,
        cross_edges,
    }
}

fn build_partition(pattern: &Pattern, nodes: &[NodeId], enforce_planarity: bool) -> Partition {
    let full_graph = pattern.graph();
    let (mut subgraph, global_nodes) = full_graph.induced_subgraph(nodes);
    // Planarity safety net (small resource states only): if the induced
    // subgraph is non-planar — possible for a single oversized/non-planar
    // dependency layer — keep a maximal planar subgraph.
    if enforce_planarity && !planarity::is_planar(&subgraph) {
        let reduced = mps::maximal_planar_subgraph(&subgraph);
        subgraph = reduced.subgraph;
    }
    let full_degree = global_nodes.iter().map(|&g| full_graph.degree(g)).collect();
    Partition {
        global_nodes,
        subgraph,
        full_degree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneq_circuit::{benchmarks, Circuit};
    use oneq_mbqc::translate;
    use std::collections::HashSet;

    fn total_edges(result: &PartitionResult) -> usize {
        result
            .partitions
            .iter()
            .map(|p| p.subgraph.edge_count())
            .sum::<usize>()
            + result.cross_edges.len()
    }

    #[test]
    fn nodes_are_partitioned_exactly_once() {
        let pattern = translate::from_circuit(&benchmarks::qft(5));
        let result = partition(&pattern, &PartitionOptions::default());
        let mut seen = HashSet::new();
        for p in &result.partitions {
            for &n in &p.global_nodes {
                assert!(seen.insert(n), "node {n} in two partitions");
            }
        }
        assert_eq!(seen.len(), pattern.node_count());
    }

    #[test]
    fn every_edge_is_accounted_for() {
        let pattern = translate::from_circuit(&benchmarks::qft(5));
        let result = partition(&pattern, &PartitionOptions::default());
        assert_eq!(total_edges(&result), pattern.edge_count());
    }

    #[test]
    fn clifford_circuit_collapses_to_few_partitions() {
        let pattern = translate::from_circuit(&benchmarks::bv(&[true; 8]));
        let result = partition(&pattern, &PartitionOptions::default());
        // One measured layer + the output pseudo-layer, planar: 1 partition.
        assert_eq!(result.partitions.len(), 1);
        assert!(result.cross_edges.is_empty());
    }

    #[test]
    fn partitions_respect_layer_limit() {
        let mut c = Circuit::new(1);
        for _ in 0..12 {
            c.j(0, 0.3); // 12 chained adaptive layers
        }
        let pattern = translate::from_circuit(&c);
        let opts = PartitionOptions {
            max_dependency_layers: 3,
            ..PartitionOptions::default()
        };
        let result = partition(&pattern, &opts);
        assert!(
            result.partitions.len() >= 4,
            "expected >= 4 partitions, got {}",
            result.partitions.len()
        );
    }

    #[test]
    fn capacity_hint_limits_partition_size() {
        let pattern = translate::from_circuit(&benchmarks::qft(5));
        let small = partition(
            &pattern,
            &PartitionOptions {
                capacity_hint: Some(20),
                ..PartitionOptions::default()
            },
        );
        let big = partition(
            &pattern,
            &PartitionOptions {
                capacity_hint: None,
                ..PartitionOptions::default()
            },
        );
        assert!(small.partitions.len() > big.partitions.len());
        for p in &small.partitions {
            // Single layers can exceed the hint, but multi-layer unions
            // only form while under it.
            if p.global_nodes.len() > 1 {
                // No hard guarantee per layer; sanity-check the typical case.
            }
        }
    }

    #[test]
    fn planarity_enforced_partitions_are_planar() {
        use oneq_graph::planarity::is_planar;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let pattern = translate::from_circuit(&benchmarks::qaoa_maxcut_random(8, &mut rng));
        let result = partition(&pattern, &PartitionOptions::default());
        for p in &result.partitions {
            assert!(is_planar(&p.subgraph));
        }
        assert_eq!(total_edges(&result), pattern.edge_count());
    }

    #[test]
    fn full_degree_counts_cross_partition_edges() {
        let pattern = translate::from_circuit(&benchmarks::qft(4));
        let opts = PartitionOptions {
            max_dependency_layers: 1,
            ..PartitionOptions::default()
        };
        let result = partition(&pattern, &opts);
        for p in &result.partitions {
            for (i, &g) in p.global_nodes.iter().enumerate() {
                assert_eq!(p.full_degree[i], pattern.graph().degree(g));
                assert!(p.full_degree[i] >= p.subgraph.degree(oneq_graph::NodeId::new(i)));
            }
        }
    }

    #[test]
    fn empty_pattern_yields_no_partitions() {
        let pattern = oneq_mbqc::Pattern::new();
        let result = partition(&pattern, &PartitionOptions::default());
        assert!(result.partitions.is_empty());
        assert!(result.cross_edges.is_empty());
    }

    #[test]
    fn synthesis_cost_uses_chain_rule() {
        let pattern = translate::from_circuit(&benchmarks::qft(4));
        let result = partition(&pattern, &PartitionOptions::default());
        for p in &result.partitions {
            let expected: usize = p
                .full_degree
                .iter()
                .map(|&d| ResourceKind::LINE3.chain_nodes(d))
                .sum();
            assert_eq!(p.synthesis_cost(ResourceKind::LINE3), expected);
        }
    }
}
