//! ASCII rendering of layer layouts (paper Figs. 11 and 14).
//!
//! Blue/green dots of the paper become `o` (complete fusion node) and `x`
//! (incomplete node — some edges unmapped); pink auxiliary routing states
//! become `+`; free RSG sites are `.`.

use crate::mapping::{CellUse, LayerLayout, MappingResult};
use crate::pipeline::CompiledProgram;
use oneq_graph::NodeId;
use oneq_hardware::Position;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders one layout as a character grid.
///
/// `incomplete` marks fusion nodes whose edges were deferred to shuffling
/// (rendered `x`, the paper's green dots).
///
/// # Example
///
/// ```
/// use oneq::mapping::{map_graph, MappingOptions};
/// use oneq::viz;
/// use oneq_graph::generators;
/// use oneq_hardware::LayerGeometry;
///
/// let r = map_graph(&generators::cycle(4), LayerGeometry::new(4, 4), &MappingOptions::default());
/// let art = viz::render_layout(&r.layouts[0], &Default::default());
/// assert_eq!(art.lines().count(), 4);
/// ```
pub fn render_layout(layout: &LayerLayout, incomplete: &HashSet<NodeId>) -> String {
    let geom = layout.geometry();
    let mut out = String::with_capacity((geom.cols() + 1) * geom.rows());
    for r in 0..geom.rows() {
        for c in 0..geom.cols() {
            let ch = match layout.cell(Position::new(r, c)) {
                Some(CellUse::Node(n)) => {
                    if incomplete.contains(&n) {
                        'x'
                    } else {
                        'o'
                    }
                }
                Some(CellUse::Routing(_)) => '+',
                None => '.',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// Renders every layout of a mapping, labeling layers and marking
/// incomplete nodes from the shuffle list.
pub fn render_mapping(result: &MappingResult) -> String {
    let incomplete: HashSet<NodeId> = result
        .shuffled
        .iter()
        .flat_map(|s| [s.edge.a(), s.edge.b()])
        .collect();
    let mut out = String::new();
    for (i, layout) in result.layouts.iter().enumerate() {
        let _ = writeln!(out, "layer {i}:");
        out.push_str(&render_layout(layout, &incomplete));
    }
    if result.shuffle_layers > 0 {
        let _ = writeln!(
            out,
            "(shuffle layers: {}, shuffle fusions: {})",
            result.shuffle_layers, result.shuffle_fusions
        );
    }
    out
}

/// Renders all layouts of a compiled program.
pub fn render_program(program: &CompiledProgram) -> String {
    let mut out = String::new();
    for (i, layout) in program.layouts.iter().enumerate() {
        let _ = writeln!(out, "layer {i}:");
        out.push_str(&render_layout(layout, &HashSet::new()));
    }
    let _ = writeln!(out, "depth={} fusions={}", program.depth, program.fusions);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{map_graph, MappingOptions};
    use oneq_graph::generators;
    use oneq_hardware::LayerGeometry;

    #[test]
    fn grid_dimensions_match_geometry() {
        let r = map_graph(
            &generators::path(4),
            LayerGeometry::new(5, 7),
            &MappingOptions::default(),
        );
        let art = render_layout(&r.layouts[0], &HashSet::new());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines.iter().all(|l| l.chars().count() == 7));
    }

    #[test]
    fn nodes_appear_in_rendering() {
        let r = map_graph(
            &generators::cycle(6),
            LayerGeometry::new(8, 8),
            &MappingOptions::default(),
        );
        let art = render_mapping(&r);
        assert_eq!(art.matches('o').count(), 6);
    }

    #[test]
    fn routing_cells_render_as_plus() {
        let r = map_graph(
            &generators::star(12),
            LayerGeometry::new(10, 10),
            &MappingOptions::default(),
        );
        let art = render_mapping(&r);
        let plus = art.matches('+').count();
        let expected: usize = r.layouts.iter().map(|l| l.routing_cells()).sum();
        assert_eq!(plus, expected);
    }

    #[test]
    fn program_rendering_includes_metrics() {
        use crate::{Compiler, CompilerOptions};
        let program = Compiler::new(CompilerOptions::new(LayerGeometry::new(8, 8)))
            .compile(&oneq_circuit::benchmarks::bv(&[true, false]));
        let art = render_program(&program);
        assert!(art.contains("depth="));
        assert!(art.contains("fusions="));
    }
}
