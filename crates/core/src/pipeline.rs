//! End-to-end compilation pipeline (paper Fig. 1).

use crate::fusion_graph;
use crate::mapping::{self, LayerLayout, MappingOptions};
use crate::partition::{self, PartitionOptions};
use oneq_circuit::Circuit;
use oneq_graph::NodeId;
use oneq_hardware::{ExtendedLayer, LayerGeometry, Position, ResourceKind};
use oneq_mbqc::{translate, Pattern};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Compiler configuration.
#[derive(Debug, Clone, Copy)]
pub struct CompilerOptions {
    /// Per-cycle RSG array geometry.
    pub geometry: LayerGeometry,
    /// Resource state emitted by each RSG.
    pub resource_kind: ResourceKind,
    /// Consecutive physical layers merged into one extended layer for
    /// mapping (1 = no extension; paper Fig. 5b/14).
    pub extension_factor: usize,
    /// Maximum dependency layers per partition (delay-line bound).
    pub max_dependency_layers: usize,
    /// Enforce partition planarity (required for small resource states).
    pub enforce_planarity: bool,
    /// Fraction of the (extended) layer area targeted by each partition's
    /// fusion-node budget, in percent.
    pub fill_percent: usize,
    /// Mapping heuristics.
    pub mapping: MappingOptions,
}

impl CompilerOptions {
    /// Defaults tuned for 3-qubit resource states on the given geometry.
    pub fn new(geometry: LayerGeometry) -> Self {
        CompilerOptions {
            geometry,
            resource_kind: ResourceKind::LINE3,
            extension_factor: 1,
            max_dependency_layers: 8,
            enforce_planarity: true,
            fill_percent: 50,
            mapping: MappingOptions::default(),
        }
    }

    /// Sets the resource-state kind.
    pub fn with_resource_kind(mut self, kind: ResourceKind) -> Self {
        self.resource_kind = kind;
        self
    }

    /// Sets the extended-layer factor.
    pub fn with_extension(mut self, factor: usize) -> Self {
        assert!(factor >= 1, "extension factor must be >= 1");
        self.extension_factor = factor;
        self
    }

    fn extended_geometry(&self) -> LayerGeometry {
        ExtendedLayer::new(self.geometry, self.extension_factor).geometry()
    }
}

/// Per-stage statistics of one compilation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Graph-state nodes after translation.
    pub graph_state_nodes: usize,
    /// Graph-state edges after translation.
    pub graph_state_edges: usize,
    /// Causal-flow dependency layers.
    pub dependency_layers: usize,
    /// Partitions scheduled.
    pub partitions: usize,
    /// Cross-partition edges resolved by shuffling.
    pub cross_edges: usize,
    /// Total fusion-graph nodes (resource states for synthesis).
    pub fusion_graph_nodes: usize,
    /// Fusions from fusion-graph edges mapped directly.
    pub direct_fusions: usize,
    /// Fusions from in-layer routing paths.
    pub routed_fusions: usize,
    /// Fusions from inter-layer shuffling.
    pub shuffle_fusions: usize,
}

/// Wall-clock time spent in each pipeline stage, in nanoseconds.
///
/// Timings are measurement artifacts, deliberately kept *outside*
/// [`StageStats`]: two compiles of the same circuit must produce identical
/// `StageStats` (the determinism guarantee) while their timings naturally
/// differ.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Circuit → measurement-pattern translation.
    pub translate_ns: u128,
    /// Dependency-layer grouping & scheduling (paper §4).
    pub partition_ns: u128,
    /// Fusion-graph generation across all partitions (paper §5).
    pub fusion_graph_ns: u128,
    /// In-layer mapping & routing across all partitions (paper §6).
    pub mapping_ns: u128,
    /// Cross-partition shuffle planning.
    pub shuffle_ns: u128,
}

impl StageTimings {
    /// Sum of all stage timings.
    pub fn total_ns(&self) -> u128 {
        self.translate_ns
            + self.partition_ns
            + self.fusion_graph_ns
            + self.mapping_ns
            + self.shuffle_ns
    }

    /// The stages as `(name, nanoseconds)` pairs, in pipeline order.
    ///
    /// The names are stable identifiers (`translate`, `partition`,
    /// `fusion_graph`, `mapping`, `shuffle`) shared by the JSONL
    /// `timings_ns` record field and the service's per-stage latency
    /// histograms, so consumers can iterate instead of naming each field.
    pub fn stages(&self) -> [(&'static str, u128); 5] {
        [
            ("translate", self.translate_ns),
            ("partition", self.partition_ns),
            ("fusion_graph", self.fusion_graph_ns),
            ("mapping", self.mapping_ns),
            ("shuffle", self.shuffle_ns),
        ]
    }
}

/// Per-partition compiler-internals profile: where one partition's fusion
/// graph and mapping spent their time and effort.
///
/// Like [`StageTimings`], profiles are measurement artifacts kept outside
/// [`StageStats`]: the timing fields differ between identical compiles
/// while every counter (nodes, BFS expansions, radii, occupancy) is
/// deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartitionProfile {
    /// Fusion-graph generation time for this partition.
    pub fusion_graph_ns: u128,
    /// Mapping & routing time for this partition.
    pub mapping_ns: u128,
    /// Fusion-graph nodes this partition contributed.
    pub nodes: usize,
    /// The mapper's effort and congestion counters.
    pub map: mapping::MapProfile,
}

/// Compiler-internals profile for one whole compilation: one entry per
/// partition, in schedule order. Rides out-of-band next to [`StageTimings`]
/// — record bytes and [`StageStats`] never include it.
#[derive(Debug, Clone, Default)]
pub struct CompileProfile {
    /// Per-partition profiles in the order partitions were compiled.
    pub partitions: Vec<PartitionProfile>,
}

impl CompileProfile {
    /// The mapper counters summed across partitions — the shape the
    /// service's `oneqd_compile_*` counter families want.
    pub fn totals(&self) -> mapping::MapProfile {
        let mut total = mapping::MapProfile::default();
        for p in &self.partitions {
            total.bfs_searches += p.map.bfs_searches;
            total.bfs_expansions += p.map.bfs_expansions;
            total.scratch_grows += p.map.scratch_grows;
            total.scratch_reuses += p.map.scratch_reuses;
            total.seed_scans += p.map.seed_scans;
            total.seed_scan_radius_max = total.seed_scan_radius_max.max(p.map.seed_scan_radius_max);
            total.occupancy_peak = total.occupancy_peak.max(p.map.occupancy_peak);
            total.routing_cells += p.map.routing_cells;
        }
        total
    }
}

/// The compiled program: the paper's two metrics plus the layouts.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Physical depth: total physical layers consumed (paper §3.2).
    pub depth: usize,
    /// Total fusion operations (paper §3.2).
    pub fusions: usize,
    /// Stage breakdown.
    pub stats: StageStats,
    /// In-layer layouts (extended layers), for inspection/visualization.
    pub layouts: Vec<LayerLayout>,
    /// Per-stage wall-clock timings of this compilation.
    pub timings: StageTimings,
    /// Per-partition compiler-internals profile.
    pub profile: CompileProfile,
}

impl CompiledProgram {
    /// Coarse program-fidelity estimate under `model`: every fusion
    /// applies the per-fusion fidelity, and each resource state is charged
    /// one delay-line cycle on average while it waits to be consumed.
    ///
    /// # Example
    ///
    /// ```
    /// use oneq::{Compiler, CompilerOptions};
    /// use oneq_hardware::{ErrorModel, LayerGeometry};
    ///
    /// let program = Compiler::new(CompilerOptions::new(LayerGeometry::new(8, 8)))
    ///     .compile(oneq_circuit::Circuit::new(2).h(0).cnot(0, 1));
    /// let f = program.estimated_fidelity(&ErrorModel::default());
    /// assert!(f > 0.0 && f <= 1.0);
    /// ```
    pub fn estimated_fidelity(&self, model: &oneq_hardware::ErrorModel) -> f64 {
        model.estimate_fidelity(self.fusions, self.stats.fusion_graph_nodes)
    }
}

impl fmt::Display for CompiledProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "depth={} layers, fusions={}, partitions={}",
            self.depth, self.fusions, self.stats.partitions
        )
    }
}

/// The OneQ compiler.
///
/// # Example
///
/// ```
/// use oneq::{Compiler, CompilerOptions};
/// use oneq_circuit::benchmarks;
/// use oneq_hardware::LayerGeometry;
///
/// let program = Compiler::new(CompilerOptions::new(LayerGeometry::new(8, 8)))
///     .compile(&benchmarks::qft(4));
/// assert!(program.fusions > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    options: CompilerOptions,
}

impl Compiler {
    /// Creates a compiler with the given options.
    pub fn new(options: CompilerOptions) -> Self {
        Compiler { options }
    }

    /// The active options.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Compiles a circuit end to end (translation → partition → fusion
    /// graph → mapping & routing).
    pub fn compile(&self, circuit: &Circuit) -> CompiledProgram {
        let t0 = Instant::now();
        let pattern = translate::from_circuit(circuit);
        let translate_ns = t0.elapsed().as_nanos();
        let mut program = self.compile_pattern(&pattern);
        program.timings.translate_ns = translate_ns;
        program
    }

    /// Compiles an already-translated measurement pattern.
    pub fn compile_pattern(&self, pattern: &Pattern) -> CompiledProgram {
        let opt = &self.options;
        let ext_geometry = opt.extended_geometry();
        // Partitions are bounded by the delay-line reach (dependency
        // layers) and planarity, not by area: the mapper allocates as many
        // physical layers per partition as the fusion graph needs (paper
        // §4, dynamic scheduling). A loose capacity cap keeps a single
        // partition from ballooning past what `fill_percent` says several
        // layers can absorb.
        let capacity = ext_geometry
            .area()
            .saturating_mul(opt.fill_percent)
            .saturating_mul(8)
            / 100;

        let mut timings = StageTimings::default();

        // Stage 1: partition & schedule.
        let part_opts = PartitionOptions {
            max_dependency_layers: opt.max_dependency_layers,
            capacity_hint: Some(capacity.max(64)),
            enforce_planarity: opt.enforce_planarity,
            resource_kind: opt.resource_kind,
        };
        let t_part = Instant::now();
        let parts = partition::partition(pattern, &part_opts);
        let dep_layers = oneq_mbqc::flow::dependency_layers(pattern).len();
        timings.partition_ns = t_part.elapsed().as_nanos();

        let mut stats = StageStats {
            graph_state_nodes: pattern.node_count(),
            graph_state_edges: pattern.edge_count(),
            dependency_layers: dep_layers,
            partitions: parts.partitions.len(),
            cross_edges: parts.cross_edges.len(),
            ..StageStats::default()
        };

        let mut depth = 0usize;
        let mut fusions = 0usize;
        let mut layouts = Vec::new();
        // Where each *global* graph-state node's representative fusion
        // node landed: (global layer index, position).
        let mut global_place: HashMap<NodeId, (usize, Position)> = HashMap::new();
        let mut global_layer_base = 0usize;

        let mut profile = CompileProfile::default();

        // Stages 2 & 3 per partition.
        for part in &parts.partitions {
            let t_fg = Instant::now();
            let fg = fusion_graph::generate(&part.subgraph, &part.full_degree, opt.resource_kind);
            let fg_ns = t_fg.elapsed().as_nanos();
            timings.fusion_graph_ns += fg_ns;
            stats.fusion_graph_nodes += fg.node_count();

            let t_map = Instant::now();
            let map = mapping::map_graph(fg.graph(), ext_geometry, &opt.mapping);
            let map_ns = t_map.elapsed().as_nanos();
            timings.mapping_ns += map_ns;
            stats.direct_fusions += map.direct_fusions;
            stats.routed_fusions += map.routed_fusions;
            stats.shuffle_fusions += map.shuffle_fusions;
            fusions += map.total_fusions();
            profile.partitions.push(PartitionProfile {
                fusion_graph_ns: fg_ns,
                mapping_ns: map_ns,
                nodes: fg.node_count(),
                map: map.profile,
            });

            // Record representative placements for cross-partition edges.
            for (local, &global) in part.global_nodes.iter().enumerate() {
                let rep = fg.representative(local);
                if let Some(&(layer_idx, pos)) = map.placement.get(&rep) {
                    global_place.insert(global, (global_layer_base + layer_idx, pos));
                }
            }

            let partition_layers = map.layouts.len() * opt.extension_factor + map.shuffle_layers;
            depth += partition_layers;
            global_layer_base += map.layouts.len();
            layouts.extend(map.layouts);
        }

        // Cross-partition edges: inter-layer shuffling between the
        // partitions' layouts (paper §4/§6).
        if !parts.cross_edges.is_empty() {
            let t_shuffle = Instant::now();
            let pairs: Vec<(Position, Position)> = parts
                .cross_edges
                .iter()
                .filter_map(
                    |&(u, v)| match (global_place.get(&u), global_place.get(&v)) {
                        (Some(&(_, pu)), Some(&(_, pv))) => Some((pu, pv)),
                        _ => None,
                    },
                )
                .collect();
            let (extra_layers, extra_fusions) =
                mapping::plan_position_shuffles(&pairs, ext_geometry);
            depth += extra_layers;
            fusions += extra_fusions;
            stats.shuffle_fusions += extra_fusions;
            timings.shuffle_ns = t_shuffle.elapsed().as_nanos();
        }

        CompiledProgram {
            depth: depth.max(1),
            fusions,
            stats,
            layouts,
            timings,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneq_circuit::benchmarks;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_compiler() -> Compiler {
        Compiler::new(CompilerOptions::new(LayerGeometry::new(8, 8)))
    }

    #[test]
    fn bv_compiles_to_shallow_depth() {
        let program = small_compiler().compile(&benchmarks::bv(&[true, false, true, true]));
        // BV is Clifford and planar: everything lands in very few layers.
        assert!(program.depth <= 3, "depth {}", program.depth);
        assert!(program.fusions > 0);
        assert_eq!(program.stats.dependency_layers, 1);
    }

    #[test]
    fn qft_compiles_with_all_nodes_synthesized() {
        let program = small_compiler().compile(&benchmarks::qft(4));
        assert!(program.stats.fusion_graph_nodes >= program.stats.graph_state_nodes);
        assert!(program.fusions >= program.stats.graph_state_edges);
        assert!(program.depth >= 1);
    }

    #[test]
    fn fusion_totals_are_consistent() {
        let program = small_compiler().compile(&benchmarks::qft(4));
        assert_eq!(
            program.fusions,
            program.stats.direct_fusions
                + program.stats.routed_fusions
                + program.stats.shuffle_fusions
        );
    }

    #[test]
    fn larger_area_never_hurts_depth() {
        let c = benchmarks::qft(5);
        let small = Compiler::new(CompilerOptions::new(LayerGeometry::new(6, 6))).compile(&c);
        let large = Compiler::new(CompilerOptions::new(LayerGeometry::new(16, 16))).compile(&c);
        assert!(
            large.depth <= small.depth,
            "larger area should not increase depth ({} vs {})",
            large.depth,
            small.depth
        );
    }

    #[test]
    fn resource_kinds_all_compile() {
        let c = benchmarks::qft(4);
        for kind in [
            ResourceKind::LINE3,
            ResourceKind::LINE4,
            ResourceKind::STAR4,
            ResourceKind::RING4,
        ] {
            let program = Compiler::new(
                CompilerOptions::new(LayerGeometry::new(8, 8)).with_resource_kind(kind),
            )
            .compile(&c);
            assert!(program.fusions > 0, "{kind} failed");
        }
    }

    #[test]
    fn extension_factor_scales_depth_units() {
        let c = benchmarks::qft(4);
        let base = CompilerOptions::new(LayerGeometry::new(6, 6));
        let p1 = Compiler::new(base).compile(&c);
        let p3 = Compiler::new(base.with_extension(3)).compile(&c);
        // Depth is measured in physical layers in both cases.
        assert!(p1.depth >= 1 && p3.depth >= 1);
    }

    #[test]
    fn qaoa_random_compiles_with_planarization() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = benchmarks::qaoa_maxcut_random(6, &mut rng);
        let program = small_compiler().compile(&c);
        assert!(program.fusions > 0);
        assert!(program.depth >= 1);
    }

    #[test]
    fn non_orthogonal_topologies_compile() {
        use oneq_hardware::Topology;
        let c = benchmarks::qft(4);
        let ortho = small_compiler().compile(&c);
        for topo in [Topology::Triangular, Topology::Hexagonal] {
            let geometry = LayerGeometry::new(8, 8).with_topology(topo);
            let program = Compiler::new(CompilerOptions::new(geometry)).compile(&c);
            assert!(program.fusions > 0, "{topo:?}");
            assert!(program.depth >= 1, "{topo:?}");
            if topo == Topology::Triangular {
                // Richer coupling never maps worse than the square grid.
                assert!(program.depth <= ortho.depth + 2, "{topo:?}");
            }
        }
    }

    #[test]
    fn fidelity_estimate_is_probability_like() {
        use oneq_hardware::ErrorModel;
        let program = small_compiler().compile(&benchmarks::bv(&[true, false]));
        let f = program.estimated_fidelity(&ErrorModel::default());
        assert!(f > 0.0 && f <= 1.0);
        // More fusions -> lower fidelity.
        let big = small_compiler().compile(&benchmarks::qft(5));
        assert!(big.estimated_fidelity(&ErrorModel::default()) < f);
    }

    #[test]
    fn display_mentions_depth() {
        let program = small_compiler().compile(&benchmarks::bv(&[true, true]));
        assert!(format!("{program}").contains("depth"));
    }
}
