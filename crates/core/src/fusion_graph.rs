//! Fusion graph generation (paper §5).
//!
//! Resource states contain only low-degree qubits, so a high-degree
//! graph-state node must be *synthesized* by fusing a chain of resource
//! states (degree-increment pattern, paper Fig. 7a/8), lines are built by
//! line extension (Fig. 7b), and structures are joined by graph connection
//! (Fig. 7c). The resulting strategy is *coupling-agnostic* and recorded as
//! a **fusion graph**: one node per resource state, one edge per fusion.
//!
//! Planarity preservation (paper Fig. 9): when the partition subgraph is
//! planar we take a planar embedding and attach each graph-state edge to
//! the chain in the embedding's rotation order, so the fusion graph stays
//! planar.

use oneq_graph::{planarity, Graph, NodeId};
use oneq_hardware::ResourceKind;
use std::collections::HashMap;

/// The fusion strategy for one partition.
///
/// Fusion-graph nodes (`⊗` in the paper's figures) are resource states;
/// edges are fusion operations. *Chain* edges synthesize one graph-state
/// node; *connection* edges realize graph-state edges.
#[derive(Debug, Clone)]
pub struct FusionGraph {
    graph: Graph,
    /// For each fusion node: the local graph-state node it helps
    /// synthesize, and its index along that node's chain.
    owner: Vec<(usize, usize)>,
    /// First fusion node of each graph-state node's chain.
    chain_start: Vec<NodeId>,
    /// Chain length per graph-state node.
    chain_len: Vec<usize>,
    /// Port table: `(gs_node, gs_neighbor) -> fusion node` hosting that
    /// graph-state edge. Cross-partition edges are not listed here; they
    /// attach to the chain head (see [`FusionGraph::representative`]).
    port: HashMap<(usize, usize), NodeId>,
    intra_edges: usize,
    inter_edges: usize,
}

impl FusionGraph {
    /// The fusion graph topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of resource states consumed by node synthesis.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Total fusions required by this strategy (one per edge).
    pub fn fusion_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Fusions used to synthesize nodes (chain edges).
    pub fn intra_node_fusions(&self) -> usize {
        self.intra_edges
    }

    /// Fusions realizing graph-state edges (connection edges).
    pub fn connection_fusions(&self) -> usize {
        self.inter_edges
    }

    /// The graph-state node a fusion node belongs to, with its chain index.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn owner_of(&self, n: NodeId) -> (usize, usize) {
        self.owner[n.index()]
    }

    /// Chain length used to synthesize local graph-state node `v`.
    pub fn chain_length(&self, v: usize) -> usize {
        self.chain_len[v]
    }

    /// The fusion node hosting the edge from local node `v` toward local
    /// neighbor `w`, if that edge is part of this partition.
    pub fn port(&self, v: usize, w: usize) -> Option<NodeId> {
        self.port.get(&(v, w)).copied()
    }

    /// The fusion node representing local graph-state node `v` (the head
    /// of its chain): used when cross-partition edges attach to `v`.
    pub fn representative(&self, v: usize) -> NodeId {
        self.chain_start[v]
    }
}

/// Generates the fusion graph of one partition subgraph.
///
/// `full_degree[v]` is the degree of local node `v` in the *full* graph
/// state (chains must provision slots for cross-partition edges too; the
/// partition subgraph only shows the internal ones). When the subgraph is
/// planar the chain ports follow a planar embedding's rotation order,
/// keeping the fusion graph planar (paper Fig. 9d).
///
/// # Panics
///
/// Panics if `full_degree` is shorter than the subgraph's node count or
/// any full degree is below the subgraph degree.
///
/// # Example
///
/// ```
/// use oneq::fusion_graph::generate;
/// use oneq_graph::generators;
/// use oneq_hardware::ResourceKind;
///
/// // A 4-star graph state: hub degree 4 needs a 3-node chain (Fig. 8).
/// let star = generators::star(5);
/// let degrees: Vec<usize> = star.nodes().map(|n| star.degree(n)).collect();
/// let fg = generate(&star, &degrees, ResourceKind::LINE3);
/// assert_eq!(fg.chain_length(0), 3);
/// // 4 leaves (1 state each) + hub chain of 3 = 7 resource states.
/// assert_eq!(fg.node_count(), 7);
/// // 2 chain fusions + 4 connection fusions.
/// assert_eq!(fg.fusion_count(), 6);
/// ```
pub fn generate(subgraph: &Graph, full_degree: &[usize], kind: ResourceKind) -> FusionGraph {
    assert!(
        full_degree.len() >= subgraph.node_count(),
        "full_degree must cover every subgraph node"
    );
    let embedding = planarity::planar_embedding(subgraph);

    let n = subgraph.node_count();
    let mut graph = Graph::new();
    let mut owner = Vec::new();
    let mut chain_start = Vec::with_capacity(n);
    let mut chain_len = Vec::with_capacity(n);

    // 1. Build a chain of resource states per graph-state node.
    for (v, &degree_in_full) in full_degree.iter().enumerate().take(n) {
        let d = degree_in_full.max(subgraph.degree(NodeId::new(v)));
        let k = feasible_chain_len(kind, d);
        let mut prev: Option<NodeId> = None;
        for i in 0..k {
            let fnode = graph.add_node();
            owner.push((v, i));
            if let Some(p) = prev {
                graph.add_edge(p, fnode).expect("fresh chain edge");
            } else {
                chain_start.push(fnode);
            }
            prev = Some(fnode);
        }
        chain_len.push(k);
    }
    let intra_edges = graph.edge_count();

    // 2. Assign ports: each incident graph-state edge of node v gets a
    //    slot on v's chain, walking the chain head-to-tail while the
    //    neighbor order follows the planar rotation when available.
    let mut port: HashMap<(usize, usize), NodeId> = HashMap::new();
    for v in 0..n {
        let vid = NodeId::new(v);
        let neighbors: Vec<NodeId> = match &embedding {
            Some(emb) => emb.rotation(vid).to_vec(),
            None => subgraph.neighbors(vid).to_vec(),
        };
        let k = chain_len[v];
        // Fill the chain head-to-tail up to each state's photon budget
        // (head/tail spend one photon on a chain link, interiors two),
        // attaching neighbors in rotation order — the paper's sequential
        // clockwise attachment (Fig. 9).
        let mut slots = chain_caps(kind, k);
        let mut chain_cursor = 0usize;
        for &w in &neighbors {
            while slots[chain_cursor] == 0 {
                chain_cursor += 1;
            }
            slots[chain_cursor] -= 1;
            let fnode = NodeId::new(chain_start[v].index() + chain_cursor);
            port.insert((v, w.index()), fnode);
        }
    }

    // 3. Connect ports across each graph-state edge (graph connection
    //    pattern, Fig. 7c).
    let mut inter_edges = 0usize;
    for e in subgraph.sorted_edges() {
        let (u, w) = (e.a().index(), e.b().index());
        let pu = port[&(u, w)];
        let pw = port[&(w, u)];
        if graph.add_edge(pu, pw).expect("ports are distinct chains") {
            inter_edges += 1;
        }
    }

    FusionGraph {
        graph,
        owner,
        chain_start,
        chain_len,
        port,
        intra_edges,
        inter_edges,
    }
}

/// Free-photon capacity of each state along a `k`-chain: every fusion
/// consumes one photon, chain links take one from each side.
fn chain_caps(kind: ResourceKind, k: usize) -> Vec<usize> {
    let q = kind.effective().qubit_count();
    if k == 1 {
        return vec![q];
    }
    (0..k)
        .map(|i| if i == 0 || i == k - 1 { q - 1 } else { q - 2 })
        .collect()
}

/// Chain length actually used: the paper's count
/// ([`ResourceKind::chain_nodes`]) bumped until the photon budget can host
/// all `d` ports.
fn feasible_chain_len(kind: ResourceKind, d: usize) -> usize {
    let mut k = kind.chain_nodes(d);
    while chain_caps(kind, k).iter().sum::<usize>() < d {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use oneq_graph::generators;

    fn degrees(g: &Graph) -> Vec<usize> {
        g.nodes().map(|n| g.degree(n)).collect()
    }

    #[test]
    fn line_graph_state_is_one_to_one() {
        // Low-degree nodes need exactly one resource state each.
        let line = generators::path(6);
        let fg = generate(&line, &degrees(&line), ResourceKind::LINE3);
        assert_eq!(fg.node_count(), 6);
        assert_eq!(fg.intra_node_fusions(), 0);
        assert_eq!(fg.connection_fusions(), 5);
        assert_eq!(fg.fusion_count(), 5);
    }

    #[test]
    fn high_degree_hub_grows_a_chain() {
        let star = generators::star(7); // hub degree 6
        let fg = generate(&star, &degrees(&star), ResourceKind::LINE3);
        assert_eq!(fg.chain_length(0), 5); // d - 1
        assert_eq!(fg.node_count(), 5 + 6);
        assert_eq!(fg.fusion_count(), 4 + 6);
    }

    #[test]
    fn star4_kind_uses_shorter_chains() {
        let star = generators::star(7);
        let fg3 = generate(&star, &degrees(&star), ResourceKind::LINE3);
        let fg4 = generate(&star, &degrees(&star), ResourceKind::STAR4);
        assert!(fg4.node_count() < fg3.node_count());
        assert!(fg4.fusion_count() < fg3.fusion_count());
    }

    #[test]
    fn planar_input_gives_planar_fusion_graph() {
        for g in [
            generators::grid(3, 4),
            generators::cycle(8),
            generators::star(9),
            generators::path(5),
        ] {
            let fg = generate(&g, &degrees(&g), ResourceKind::LINE3);
            assert!(
                planarity::is_planar(fg.graph()),
                "fusion graph of planar input must stay planar"
            );
        }
    }

    #[test]
    fn wheel_fusion_graph_stays_planar() {
        // Wheel graphs have a high-degree hub inside a cycle: the rotation
        // order matters for planarity (paper Fig. 9d vs 9e).
        for k in 4..9 {
            let mut g = generators::cycle(k);
            let hub = g.add_node();
            for i in 0..k {
                g.add_edge(hub, NodeId::new(i)).unwrap();
            }
            let fg = generate(&g, &degrees(&g), ResourceKind::LINE3);
            assert!(
                planarity::is_planar(fg.graph()),
                "wheel W{k} fusion graph must stay planar"
            );
        }
    }

    #[test]
    fn external_degree_reserves_chain_slots() {
        // A single node with subgraph degree 0 but full degree 5 still
        // builds a chain able to host 5 external edges.
        let g = Graph::with_nodes(1);
        let fg = generate(&g, &[5], ResourceKind::LINE3);
        assert_eq!(fg.chain_length(0), 4);
        assert_eq!(fg.fusion_count(), 3); // chain edges only
    }

    #[test]
    fn fusion_node_degree_respects_photon_budget() {
        // Every fusion node has at most `qubit_count` incident fusions:
        // each fusion consumes one photon of the resource state.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        for _ in 0..5 {
            let g = generators::random_tree(30, &mut rng);
            for kind in [
                ResourceKind::LINE3,
                ResourceKind::STAR4,
                ResourceKind::LINE4,
            ] {
                let fg = generate(&g, &degrees(&g), kind);
                let budget = kind.effective().qubit_count();
                for fnode in fg.graph().nodes() {
                    assert!(
                        fg.graph().degree(fnode) <= budget,
                        "fusion node exceeds {kind} photon budget"
                    );
                }
            }
        }
    }

    #[test]
    fn ports_cover_every_subgraph_edge() {
        let g = generators::grid(3, 3);
        let fg = generate(&g, &degrees(&g), ResourceKind::LINE3);
        for e in g.sorted_edges() {
            let (u, w) = (e.a().index(), e.b().index());
            let pu = fg.port(u, w).expect("port exists");
            let pw = fg.port(w, u).expect("port exists");
            assert!(fg.graph().has_edge(pu, pw));
            assert_eq!(fg.owner_of(pu).0, u);
            assert_eq!(fg.owner_of(pw).0, w);
        }
    }

    #[test]
    fn fusion_count_decomposes() {
        let g = generators::grid(4, 4);
        let fg = generate(&g, &degrees(&g), ResourceKind::LINE3);
        assert_eq!(
            fg.fusion_count(),
            fg.intra_node_fusions() + fg.connection_fusions()
        );
        assert_eq!(fg.connection_fusions(), g.edge_count());
    }

    #[test]
    fn representative_is_chain_head() {
        let star = generators::star(5);
        let fg = generate(&star, &degrees(&star), ResourceKind::LINE3);
        let rep = fg.representative(0);
        assert_eq!(fg.owner_of(rep), (0, 0));
    }

    #[test]
    fn empty_graph_produces_empty_fusion_graph() {
        let g = Graph::new();
        let fg = generate(&g, &[], ResourceKind::LINE3);
        assert_eq!(fg.node_count(), 0);
        assert_eq!(fg.fusion_count(), 0);
    }
}
