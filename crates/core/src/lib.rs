//! # oneq
//!
//! An optimizing compiler from quantum circuits to photonic one-way
//! (measurement-based) quantum computation — a from-scratch reproduction of
//! *"OneQ: A Compilation Framework for Photonic One-Way Quantum
//! Computation"* (ISCA 2023).
//!
//! The pipeline (paper Fig. 1) lowers a circuit to a graph state and then
//! runs three stages:
//!
//! 1. **Graph partition & scheduling** ([`partition`], paper §4) — order
//!    measurements into dependency layers via the causal flow and group
//!    consecutive layers into partitions sized to the hardware, enforcing
//!    planarity for small resource states.
//! 2. **Fusion graph generation** ([`fusion_graph`], paper §5) — synthesize
//!    high-degree graph-state nodes from chains of low-degree resource
//!    states; represent every required fusion as an edge of a *fusion
//!    graph*, preserving planar edge orders.
//! 3. **Fusion mapping & routing** ([`mapping`], paper §6) — embed the
//!    irregular fusion graph into the regular RSG grid with a
//!    boundary-aware heuristic search, route non-adjacent fusions through
//!    auxiliary resource states, and connect leftover *incomplete nodes*
//!    across layers with inter-layer shuffling.
//!
//! The end-to-end driver is [`Compiler`]; the output [`CompiledProgram`]
//! reports the paper's two metrics, *physical depth* and *number of
//! fusions*.
//!
//! # Example
//!
//! ```
//! use oneq::{Compiler, CompilerOptions};
//! use oneq_circuit::benchmarks;
//! use oneq_hardware::LayerGeometry;
//!
//! let circuit = benchmarks::bv(&[true, false, true, true]);
//! let options = CompilerOptions::new(LayerGeometry::new(8, 8));
//! let program = Compiler::new(options).compile(&circuit);
//! assert!(program.depth >= 1);
//! assert!(program.fusions > 0);
//! ```

#![warn(missing_docs)]

pub mod fusion_graph;
pub mod mapping;
pub mod partition;
mod pipeline;
pub mod viz;

pub use fusion_graph::FusionGraph;
pub use mapping::{CellUse, LayerLayout, MapProfile, MappingOptions, MappingResult};
pub use partition::{Partition, PartitionOptions, PartitionResult};
pub use pipeline::{
    CompileProfile, CompiledProgram, Compiler, CompilerOptions, PartitionProfile, StageStats,
    StageTimings,
};
